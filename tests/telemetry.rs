//! Integration tests for the unified telemetry layer: trace validity,
//! span nesting, exactly-once task coverage, CPU/GPU overlap, metrics
//! exposition, and the critical-path profiler.

use heteroflow::core::{SpanCat, TraceCollector, TraceSpan, Track};
use heteroflow::prelude::*;
use heteroflow::telemetry::{chrome_trace, critical_path, MetricsRegistry};
use std::sync::Arc;

/// Builds a two-lane hybrid pipeline; each lane is
/// fill -> pull -> kernel -> push with `n` elements.
fn pipeline(lanes: usize, n: usize) -> (Heteroflow, Vec<String>) {
    let g = Heteroflow::new("telemetry");
    let mut names = Vec::new();
    for lane in 0..lanes {
        let data: HostVec<f32> = HostVec::from_vec(vec![1.0; n]);
        let h = g.host(&format!("fill{lane}"), || {});
        let p = g.pull(&format!("pull{lane}"), &data);
        let k = g.kernel(&format!("mul{lane}"), &[&p], |cfg, args| {
            let v = args.slice_mut::<f32>(0).expect("arg");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] *= 2.0;
                }
            }
        });
        k.cover(n, 128);
        let s = g.push(&format!("push{lane}"), &p, &data);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        for prefix in ["fill", "pull", "mul", "push"] {
            names.push(format!("{prefix}{lane}"));
        }
    }
    (g, names)
}

/// Runs `g` under a stitched tracer and returns the settled spans.
fn traced_spans(g: &Heteroflow, workers: usize, gpus: u32) -> Vec<TraceSpan> {
    let trace = TraceCollector::shared();
    let ex = Executor::builder(workers, gpus)
        .tracer(Arc::clone(&trace))
        .build();
    ex.run(g).wait().expect("graph runs");
    // Join the workers so late worker-side span ends are flushed.
    drop(ex);
    trace.spans()
}

#[test]
fn chrome_trace_parses_and_covers_every_task_exactly_once() {
    let (g, names) = pipeline(3, 2048);
    let spans = traced_spans(&g, 4, 2);
    let json = chrome_trace(&spans);
    let doc = serde_json::from_str(&json).expect("valid trace JSON");
    let events = doc.as_array().expect("array");
    for name in &names {
        let task_events = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("name").and_then(|x| x.as_str()) == Some(name.as_str())
                    && e.get("args")
                        .and_then(|a| a.get("cat"))
                        .and_then(|c| c.as_str())
                        == Some("task")
            })
            .count();
        assert_eq!(task_events, 1, "{name} appears exactly once as a task");
    }
    // Metadata names both kinds of process.
    let meta: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .collect();
    assert!(meta.contains(&"cpu"));
    assert!(meta.iter().any(|n| n.starts_with("gpu")));
}

#[test]
fn per_worker_spans_do_not_overlap() {
    let (g, _) = pipeline(4, 1024);
    let spans = traced_spans(&g, 3, 1);
    // A worker is one thread: its spans (task bodies and dispatch
    // windows) must form a non-overlapping sequence.
    let workers: std::collections::BTreeSet<usize> = spans
        .iter()
        .filter_map(|s| s.worker())
        .collect();
    assert!(!workers.is_empty());
    for w in workers {
        let mut mine: Vec<&TraceSpan> = spans
            .iter()
            .filter(|s| s.worker() == Some(w))
            .collect();
        mine.sort_by_key(|s| s.start_us);
        for pair in mine.windows(2) {
            assert!(
                pair[0].end_us() <= pair[1].start_us,
                "worker {w} spans overlap: {} [{}..{}] vs {} [{}..{}]",
                pair[0].name,
                pair[0].start_us,
                pair[0].end_us(),
                pair[1].name,
                pair[1].start_us,
                pair[1].end_us()
            );
        }
    }
}

#[test]
fn device_spans_overlap_cpu_spans_on_a_two_stream_pipeline() {
    // One lane's kernel runs on the device while the host lane spins on
    // the CPU: with device-side stitching the trace must show the
    // overlap that dispatch-time spans (the old collector bug) could not.
    let g = Heteroflow::new("overlap");
    let n = 1 << 16;
    let data: HostVec<f32> = HostVec::from_vec(vec![1.0; n]);
    let p = g.pull("pull", &data);
    let k = g.kernel("kernel", &[&p], |cfg, args| {
        let v = args.slice_mut::<f32>(0).expect("arg");
        for t in cfg.threads() {
            if t < v.len() {
                // Enough work per element to give the span real width.
                v[t] = v[t].sin().mul_add(1.5, 0.25);
            }
        }
    });
    k.cover(n, 128);
    p.precede(&k);
    // Independent host task: busy-spins so it executes concurrently.
    g.host("spin", || {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(20) {
            std::hint::spin_loop();
        }
    });

    let spans = traced_spans(&g, 2, 1);
    let dev: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| matches!(s.track, Track::Device(_)) && s.cat == SpanCat::Task)
        .collect();
    let host = spans
        .iter()
        .find(|s| s.name == "spin")
        .expect("host span");
    assert!(!dev.is_empty());
    let overlaps = dev.iter().any(|d| {
        d.start_us < host.end_us() && host.start_us < d.end_us()
    });
    assert!(
        overlaps,
        "device spans {:?} must overlap host span [{}..{}]",
        dev.iter()
            .map(|d| (d.name.as_str(), d.start_us, d.end_us()))
            .collect::<Vec<_>>(),
        host.start_us,
        host.end_us()
    );
}

#[test]
fn disabled_tracing_is_default_off_for_plain_builders() {
    // An executor without a tracer must not label ops or pay for rings.
    let (g, _) = pipeline(1, 512);
    let ex = Executor::new(2, 1);
    ex.run(&g).wait().expect("runs");
    assert!(!ex.gpu_runtime().tracing_enabled());
}

#[test]
fn metrics_and_critical_path_from_one_run() {
    let (g, _) = pipeline(2, 4096);
    let info = g.info().expect("acyclic");
    let trace = TraceCollector::shared();
    let ex = Executor::builder(2, 1).tracer(Arc::clone(&trace)).build();
    ex.run(&g).wait().expect("runs");
    let stats = ex.stats().snapshot();
    let registry = MetricsRegistry::new();
    registry.collect_executor(&stats);
    registry.collect_gpu(ex.gpu_runtime());
    drop(ex);
    let spans = trace.spans();
    registry.collect_spans(&spans);

    let json = serde_json::from_str(&registry.to_json_string()).expect("metrics JSON");
    assert!(!json.as_array().unwrap().is_empty());
    assert!(registry.prometheus_text().contains("hf_gpu_kernels_total"));

    let report = critical_path(&info, &spans);
    // fill -> pull -> mul -> push: 4 steps, measured time nonzero.
    assert_eq!(report.steps.len(), 4);
    assert!(report.total_us > 0);
    assert_eq!(report.unmatched, 0);
    let attributed: u64 = report.by_kind.iter().map(|(_, us)| *us).sum();
    assert_eq!(attributed, report.total_us);
}
