//! Microbenchmark + A4 ablation: executor task throughput, adaptive
//! sleep vs always-spin thieves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_core::{AsTask, Executor, Heteroflow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn wide_graph(n: usize) -> (Heteroflow, Arc<AtomicUsize>) {
    let g = Heteroflow::new("wide");
    let counter = Arc::new(AtomicUsize::new(0));
    let root = g.host("root", || {});
    for i in 0..n {
        let c = Arc::clone(&counter);
        let t = g.host(&format!("t{i}"), move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        root.precede(&t);
    }
    (g, counter)
}

fn chain_graph(n: usize) -> Heteroflow {
    let g = Heteroflow::new("chain");
    let mut prev = None;
    for i in 0..n {
        let t = g.host(&format!("t{i}"), || {});
        if let Some(p) = &prev {
            t.succeed(p);
        }
        prev = Some(t);
    }
    g
}

fn throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/throughput");
    g.sample_size(10);
    for &n in &[100usize, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("wide", n), &n, |b, &n| {
            let ex = Executor::new(4, 0);
            let (graph, _) = wide_graph(n);
            b.iter(|| ex.run(&graph).wait().expect("runs"));
        });
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, &n| {
            let ex = Executor::new(4, 0);
            let graph = chain_graph(n);
            b.iter(|| ex.run(&graph).wait().expect("runs"));
        });
    }
    g.finish();
}

/// A4: the adaptive wake/sleep strategy vs always-spinning thieves.
/// Throughput should be comparable; the adaptive strategy's win is idle
/// CPU time, reported here via the sleeps/wakeups counters.
fn ablation_a4(c: &mut Criterion) {
    let mut g = c.benchmark_group("A4/adaptive_vs_spin");
    g.sample_size(10);
    let n = 500usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("adaptive", |b| {
        let ex = Executor::builder(4, 0).adaptive_sleep(true).build();
        let (graph, _) = wide_graph(n);
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.bench_function("spin", |b| {
        let ex = Executor::builder(4, 0).adaptive_sleep(false).build();
        let (graph, _) = wide_graph(n);
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.finish();

    // Print the wasted-wakeup statistics once, outside timing.
    let ex = Executor::builder(4, 0).adaptive_sleep(true).build();
    let (graph, _) = wide_graph(n);
    for _ in 0..20 {
        ex.run(&graph).wait().expect("runs");
    }
    eprintln!(
        "[A4] adaptive: tasks={} steals={} steal_rate={:.3} sleeps={} wakeups={}",
        ex.stats().tasks_executed.sum(),
        ex.stats().steals.sum(),
        ex.stats().steal_success_rate(),
        ex.stats().sleeps.sum(),
        ex.stats().wakeups.sum(),
    );
}

/// A5: GPU task fusion on/off over a chain-heavy graph (the MIS-rounds
/// pattern of Fig 8): fusion removes one scheduler round trip per chain
/// member.
fn ablation_a5(c: &mut Criterion) {
    use hf_core::data::HostVec;
    let build = || {
        let g = Heteroflow::new("chains");
        for lane in 0..4 {
            let d: HostVec<u64> = HostVec::from_vec(vec![1; 512]);
            let p = g.pull(&format!("p{lane}"), &d);
            let mut prev = p.as_task();
            for i in 0..16 {
                let k = g.kernel(&format!("k{lane}_{i}"), &[&p], |cfg, args| {
                    let v = args.slice_mut::<u64>(0).expect("data");
                    for t in cfg.threads() {
                        if t < v.len() {
                            v[t] = v[t].wrapping_add(1);
                        }
                    }
                });
                k.cover(512, 128);
                k.succeed(&prev);
                prev = k.as_task();
            }
            let s = g.push(&format!("s{lane}"), &p, &d);
            s.succeed(&prev);
        }
        g
    };
    let mut grp = c.benchmark_group("A5/fusion");
    grp.sample_size(10);
    grp.bench_function("fused", |b| {
        let ex = Executor::builder(4, 2).task_fusion(true).build();
        let g = build();
        b.iter(|| ex.run(&g).wait().expect("runs"));
    });
    grp.bench_function("unfused", |b| {
        let ex = Executor::builder(4, 2).task_fusion(false).build();
        let g = build();
        b.iter(|| ex.run(&g).wait().expect("runs"));
    });
    grp.finish();
}

fn run_n_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/run_n");
    g.sample_size(10);
    g.bench_function("run_n_100", |b| {
        let ex = Executor::new(2, 0);
        let graph = chain_graph(10);
        b.iter(|| ex.run_n(&graph, 100).wait().expect("runs"));
    });
    g.finish();
}

/// The scheduling cache: resubmitting an unchanged graph should skip the
/// freeze + placement + fusion preamble entirely. `cached` hits the cache
/// every iteration; `replanned` alternates the same graph between two
/// executors so every submission re-plans (the cache is keyed by
/// executor), isolating the preamble cost at identical task work.
fn resubmit_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/resubmit");
    g.sample_size(10);
    let n = 64usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("cached", |b| {
        let ex = Executor::new(2, 0);
        let graph = chain_graph(n);
        ex.run(&graph).wait().expect("warm-up");
        b.iter(|| ex.run(&graph).wait().expect("runs"));
    });
    g.bench_function("replanned", |b| {
        let ex1 = Executor::new(2, 0);
        let ex2 = Executor::new(2, 0);
        let graph = chain_graph(n);
        b.iter(|| {
            ex1.run(&graph).wait().expect("runs");
            ex2.run(&graph).wait().expect("runs");
        });
    });
    g.finish();

    // Counter sanity, printed once outside timing.
    let ex = Executor::new(2, 0);
    let graph = chain_graph(n);
    for _ in 0..10 {
        ex.run(&graph).wait().expect("runs");
    }
    eprintln!(
        "[cache] misses={} hits={} rounds={}",
        ex.stats().topo_cache_misses.sum(),
        ex.stats().topo_cache_hits.sum(),
        ex.stats().rounds.sum(),
    );
}

/// End-to-end tasks/sec on a task-heavy graph: a root fanning out to many
/// tiny host tasks, re-run many rounds. This is the steady-state hot path
/// (token scheduling, batched release, injector sprays) in one number.
fn tasks_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor/tasks_per_sec");
    g.sample_size(10);
    const WIDTH: usize = 256;
    const ROUNDS: usize = 20;
    g.throughput(Throughput::Elements((WIDTH as u64 + 1) * ROUNDS as u64));
    g.bench_function("wide_256x20", |b| {
        let ex = Executor::new(4, 0);
        let (graph, _) = wide_graph(WIDTH);
        b.iter(|| ex.run_n(&graph, ROUNDS).wait().expect("runs"));
    });
    let ex = Executor::new(4, 0);
    let (graph, _) = wide_graph(WIDTH);
    ex.run_n(&graph, ROUNDS).wait().expect("runs");
    eprintln!(
        "[hot-path] tasks={} injector_batches={} notify_coalesced={} steals={}",
        ex.stats().tasks_executed.sum(),
        ex.stats().injector_batches.sum(),
        ex.stats().notify_coalesced.sum(),
        ex.stats().steals.sum(),
    );
}

/// Telemetry overhead on the tasks/sec hot path: wired-but-disabled
/// telemetry must cost (approximately) nothing — one atomic load per
/// observer callback. Three configurations: no observer at all, a
/// tracer plus flight recorder wired but disabled, and a tracer
/// actively recording. After the criterion numbers, an interleaved
/// min-of-samples guard asserts the disabled configuration stays within
/// ~2% of the baseline (plus a small absolute slack so scheduler jitter
/// cannot flake the suite).
fn telemetry_overhead(c: &mut Criterion) {
    use hf_core::TraceCollector;
    use hf_telemetry::FlightRecorder;
    use std::time::{Duration, Instant};

    const WIDTH: usize = 256;
    const ROUNDS: usize = 20;

    let mut grp = c.benchmark_group("executor/telemetry");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements((WIDTH as u64 + 1) * ROUNDS as u64));
    grp.bench_function("no_observer", |b| {
        let ex = Executor::new(4, 0);
        let (graph, _) = wide_graph(WIDTH);
        b.iter(|| ex.run_n(&graph, ROUNDS).wait().expect("runs"));
    });
    grp.bench_function("tracer_disabled", |b| {
        let trace = TraceCollector::shared();
        trace.set_enabled(false);
        let recorder = FlightRecorder::shared();
        recorder.set_enabled(false);
        let ex = Executor::builder(4, 0)
            .tracer(Arc::clone(&trace))
            .observer(recorder)
            .build();
        let (graph, _) = wide_graph(WIDTH);
        b.iter(|| ex.run_n(&graph, ROUNDS).wait().expect("runs"));
    });
    grp.bench_function("tracer_enabled", |b| {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(4, 0).tracer(Arc::clone(&trace)).build();
        let (graph, _) = wide_graph(WIDTH);
        b.iter(|| {
            ex.run_n(&graph, ROUNDS).wait().expect("runs");
            // Scrape between rounds; take_spans keeps this O(new spans).
            let _ = trace.take_spans();
        });
    });
    grp.finish();

    // Overhead guard. Min-of-samples with interleaving: the minimum of
    // many samples estimates the noise-free cost of each configuration,
    // and alternating them distributes machine-load drift fairly.
    let base_ex = Executor::new(4, 0);
    let trace = TraceCollector::shared();
    trace.set_enabled(false);
    let recorder = FlightRecorder::shared();
    recorder.set_enabled(false);
    let dis_ex = Executor::builder(4, 0)
        .tracer(Arc::clone(&trace))
        .observer(recorder.clone())
        .build();
    let (graph, _) = wide_graph(WIDTH);
    let sample = |ex: &Executor| {
        let t0 = Instant::now();
        ex.run_n(&graph, ROUNDS).wait().expect("runs");
        t0.elapsed()
    };
    for _ in 0..3 {
        sample(&base_ex);
        sample(&dis_ex);
    }
    let mut min_base = Duration::MAX;
    let mut min_dis = Duration::MAX;
    for _ in 0..15 {
        min_base = min_base.min(sample(&base_ex));
        min_dis = min_dis.min(sample(&dis_ex));
    }
    let ratio = min_dis.as_secs_f64() / min_base.as_secs_f64();
    eprintln!(
        "[telemetry] disabled-telemetry overhead: base={min_base:?} disabled={min_dis:?} \
         ratio={ratio:.4}"
    );
    assert_eq!(
        recorder.events_recorded(),
        0,
        "disabled flight recorder must not capture lifecycle events"
    );
    assert!(
        min_dis.as_secs_f64() <= min_base.as_secs_f64() * 1.02 + 300e-6,
        "disabled telemetry exceeded the ~2% overhead budget: \
         base={min_base:?} disabled={min_dis:?} ratio={ratio:.4}"
    );
}

criterion_group!(
    benches,
    throughput,
    ablation_a4,
    ablation_a5,
    run_n_batching,
    resubmit_cache,
    tasks_per_sec,
    telemetry_overhead
);
criterion_main!(benches);
