//! Optional CPU core pinning for executor workers.
//!
//! The paper's executor keeps one persistent thread per CPU core; pinning
//! each worker to a fixed core keeps its cache and NUMA locality stable
//! across the run, which matters once placement deliberately routes the
//! same data to the same device-driving worker (the locality policy).
//!
//! This crate deliberately has no `libc` dependency, so pinning is done
//! with a raw `sched_setaffinity` syscall on Linux/x86-64 behind the
//! `core_affinity` feature. Everywhere else [`pin_current_thread`] is a
//! no-op returning `false`; the scheduler is correct either way — pinning
//! is purely a locality hint to the OS.

/// Maximum CPU index representable in the affinity mask below.
#[cfg(all(feature = "core_affinity", target_os = "linux", target_arch = "x86_64"))]
const MAX_CPUS: usize = 1024;

/// Pins the calling thread to CPU core `core` (taken modulo the mask
/// width). Returns `true` when the kernel accepted the mask.
#[cfg(all(feature = "core_affinity", target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(core: usize) -> bool {
    // Linux x86-64 syscall number for sched_setaffinity.
    const SYS_SCHED_SETAFFINITY: u64 = 203;
    let mut mask = [0u64; MAX_CPUS / 64];
    let core = core % MAX_CPUS;
    mask[core / 64] |= 1u64 << (core % 64);
    let ret: i64;
    // Safety: sched_setaffinity(0, len, mask) only reads `mask` and
    // affects scheduling of the calling thread (pid 0); no memory is
    // written by the kernel.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0u64,
            in("rsi") core::mem::size_of_val(&mask) as u64,
            in("rdx") mask.as_ptr() as u64,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Pinning stub for platforms or builds without the `core_affinity`
/// feature: always a no-op returning `false`.
#[cfg(not(all(feature = "core_affinity", target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_safe_to_call() {
        // With the feature on Linux/x86-64 the call should succeed for
        // core 0 (every machine has one); elsewhere it must return false
        // without side effects. Either way it must not crash.
        let ok = pin_current_thread(0);
        if cfg!(all(
            feature = "core_affinity",
            target_os = "linux",
            target_arch = "x86_64"
        )) {
            assert!(ok, "sched_setaffinity to core 0 failed");
        } else {
            assert!(!ok);
        }
    }

    #[test]
    fn out_of_range_core_wraps() {
        // A huge index wraps modulo the mask width instead of faulting.
        let _ = pin_current_thread(usize::MAX - 3);
    }
}
