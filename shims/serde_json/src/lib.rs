//! Offline stand-in for the `serde_json` crate.
//!
//! Formats the [`serde`] shim's JSON tree ([`Value`], [`Map`]) and provides
//! the [`json!`] macro subset the workspace uses: object literals with
//! string keys and plain expression values, plus bare expressions.

pub use serde::json::{Map, Value};

/// Error type for the (infallible) serializers, kept for API parity.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, None);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, Some(0));
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Builds a [`Value`] from an object literal with string keys, or from any
/// serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($item)),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible")
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_objects_and_arrays() {
        let v = json!({
            "name": "x",
            "values": vec![1.5f64, 2.0],
            "n": 3usize,
        });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"name":"x","values":[1.5,2.0],"n":3}"#
        );
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": 1u32});
        let s = crate::to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn nested_maps_via_inserts() {
        let mut m = crate::Map::new();
        m.insert(
            "rows".to_string(),
            json!(vec![json!({"l": "a"}), json!({"l": "b"})]),
        );
        let s = crate::to_string(&crate::Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"rows":[{"l":"a"},{"l":"b"}]}"#);
    }
}
