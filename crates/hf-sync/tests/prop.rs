//! Property-based tests for the hf-sync substrate.

use hf_sync::{Steal, StealDeque, UnionFind};
use proptest::prelude::*;

proptest! {
    /// Union-find is an equivalence relation: reflexive, symmetric,
    /// transitive; and `num_sets` equals the number of distinct roots.
    #[test]
    fn unionfind_equivalence_laws(n in 1usize..64, unions in proptest::collection::vec((0usize..64, 0usize..64), 0..128)) {
        let mut uf = UnionFind::new(n);
        for (a, b) in unions {
            let (a, b) = (a % n, b % n);
            uf.union(a, b);
        }
        // Reflexive.
        for i in 0..n {
            prop_assert!(uf.same(i, i));
        }
        // Symmetric + transitive via root equality.
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.same(i, j), uf.same(j, i));
                prop_assert_eq!(uf.same(i, j), uf.find(i) == uf.find(j));
            }
        }
        let roots: std::collections::HashSet<usize> = (0..n).map(|i| uf.find(i)).collect();
        prop_assert_eq!(roots.len(), uf.num_sets());
        // Set sizes sum to n.
        let total: usize = roots.iter().map(|&r| uf.set_size(r)).sum();
        prop_assert_eq!(total, n);
    }

    /// Sequential deque trace: interleaved push/pop/steal never loses or
    /// duplicates an element and pop is LIFO w.r.t. remaining elements.
    #[test]
    fn deque_sequential_trace(ops in proptest::collection::vec(0u8..3, 1..256)) {
        let d = StealDeque::new();
        let s = d.stealer();
        let mut next = 0u64;
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for op in ops {
            match op {
                0 => {
                    d.push(next);
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    let got = d.pop();
                    let want = model.pop_back();
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("retry impossible single-threaded"),
                    };
                    let want = model.pop_front();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(d.len(), model.len());
    }
}
