//! Atomics indirection for model checking.
//!
//! All lock-free structures in this crate import their atomic types (and
//! `fence` / `spin_loop` / `yield_now`) from here instead of `std`
//! directly. By default these are straight re-exports of the `std`
//! primitives with zero overhead. With the `loom` feature enabled they
//! resolve to the in-repo loom shim, whose atomics are scheduling points
//! of a deterministic model checker — `cargo test -p hf-sync --features
//! loom --test loom` then explores bounded thread interleavings of the
//! [`crate::SlotCache`], [`crate::Injector`], and [`crate::EventRing`]
//! models.
//!
//! The loom types are `#[repr(transparent)]` wrappers over the `std`
//! atomics, so zero-initialized allocation of structures containing them
//! (the injector's `Block`) remains valid under both configurations.

#[cfg(not(feature = "loom"))]
pub use std::sync::atomic::{fence, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "loom")]
pub use loom::sync::atomic::{fence, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Spin hint: a CPU pause normally; under loom, a deprioritizing yield so
/// the model scheduler can run the thread being waited on.
#[inline]
pub fn spin_loop_hint() {
    #[cfg(not(feature = "loom"))]
    std::hint::spin_loop();
    #[cfg(feature = "loom")]
    loom::hint::spin_loop();
}

/// Cooperative yield: `std::thread::yield_now` normally; under loom the
/// model scheduler's yield, which guarantees another runnable thread is
/// scheduled before the caller runs again.
#[inline]
pub fn yield_now() {
    #[cfg(not(feature = "loom"))]
    std::thread::yield_now();
    #[cfg(feature = "loom")]
    loom::thread::yield_now();
}
