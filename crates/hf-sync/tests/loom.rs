//! Model-checked concurrency tests for hf-sync's lock-free structures.
//!
//! Run with `cargo test -p hf-sync --features loom --test loom`. Each
//! `loom::model` body is executed under every bounded interleaving of its
//! threads' atomic operations by the in-repo loom shim (deterministic DFS
//! over scheduling decisions), so the assertions hold on *all* explored
//! schedules, not just the ones the OS happens to produce.
//!
//! Models are deliberately tiny — two or three threads, a handful of
//! operations each — because the schedule space grows exponentially with
//! the number of scheduling points.

#![cfg(feature = "loom")]

use hf_sync::{EventRing, Injector, SlotCache};
use std::sync::Arc;

/// Two producers park distinct tokens concurrently; both must land and
/// come back out exactly once (no lost or duplicated token).
#[test]
fn slotcache_concurrent_puts_conserve_tokens() {
    loom::model(|| {
        let c = Arc::new(SlotCache::new(2));
        let c1 = Arc::clone(&c);
        let c2 = Arc::clone(&c);
        let a = loom::thread::spawn(move || assert!(c1.try_put(7)));
        let b = loom::thread::spawn(move || assert!(c2.try_put(9)));
        a.join().unwrap();
        b.join().unwrap();
        let mut got = vec![c.try_take().unwrap(), c.try_take().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 9], "both tokens parked exactly once");
        assert!(c.try_take().is_none());
    });
}

/// A put racing a take on a single-slot cache: the take gets either the
/// old token or nothing, the final drain sees exactly the remaining one.
#[test]
fn slotcache_put_take_race_never_duplicates() {
    loom::model(|| {
        let c = Arc::new(SlotCache::new(1));
        assert!(c.try_put(1));
        let c1 = Arc::clone(&c);
        let c2 = Arc::clone(&c);
        let taker = loom::thread::spawn(move || c1.try_take());
        let putter = loom::thread::spawn(move || c2.try_put(2));
        let taken = taker.join().unwrap();
        let put_ok = putter.join().unwrap();
        let mut seen: Vec<u64> = taken.into_iter().collect();
        while let Some(v) = c.try_take() {
            seen.push(v);
        }
        seen.sort_unstable();
        // Token 1 is delivered exactly once; token 2 exactly once iff the
        // put found a free slot.
        let expect: Vec<u64> = if put_ok { vec![1, 2] } else { vec![1] };
        assert_eq!(seen, expect, "tokens conserved under the race");
    });
}

/// Two producers push concurrently into a capacity-2 ring; nothing is
/// dropped and the drain delivers both values exactly once.
#[test]
fn ring_concurrent_pushes_deliver_exactly_once() {
    loom::model(|| {
        let r = Arc::new(EventRing::new(2));
        let r1 = Arc::clone(&r);
        let r2 = Arc::clone(&r);
        let a = loom::thread::spawn(move || assert!(r1.push(1u64)));
        let b = loom::thread::spawn(move || assert!(r2.push(2u64)));
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(r.dropped(), 0);
        let mut got = Vec::new();
        r.drain(|v| got.push(v));
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "both events delivered exactly once");
    });
}

/// A producer and a consumer overlap on the ring: the consumer (retrying
/// with a model yield) eventually observes both values in FIFO order.
#[test]
fn ring_producer_consumer_fifo_under_overlap() {
    loom::model(|| {
        let r = Arc::new(EventRing::new(2));
        let rp = Arc::clone(&r);
        let producer = loom::thread::spawn(move || {
            assert!(rp.push(10u64));
            assert!(rp.push(20u64));
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match r.pop() {
                Some(v) => got.push(v),
                None => loom::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(got, vec![10, 20], "slot handshakes preserve FIFO");
        assert_eq!(r.dropped(), 0);
    });
}

/// Two producers race a single-CAS push each; after both finish, a drain
/// pops each value exactly once (tail-index claims never overlap).
#[test]
fn injector_concurrent_pushes_pop_exactly_once() {
    loom::model(|| {
        let q = Arc::new(Injector::new());
        let q1 = Arc::clone(&q);
        let q2 = Arc::clone(&q);
        let a = loom::thread::spawn(move || q1.push(1u64));
        let b = loom::thread::spawn(move || q2.push(2u64));
        a.join().unwrap();
        b.join().unwrap();
        let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "each push delivered exactly once");
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    });
}

/// A batch push races a popping consumer: the consumer sees a prefix of
/// the batch in FIFO order, and the remainder drains afterwards.
#[test]
fn injector_batch_push_vs_pop_preserves_fifo() {
    loom::model(|| {
        let q = Arc::new(Injector::new());
        let qp = Arc::clone(&q);
        let producer = loom::thread::spawn(move || qp.push_batch(&[1u64, 2, 3]));
        let mut got = Vec::new();
        q.pop_batch(2, |v| got.push(v));
        producer.join().unwrap();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3], "batch claim is FIFO and exactly-once");
    });
}
