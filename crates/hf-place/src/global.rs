//! Simplified analytic global placement with GPU force kernels.
//!
//! DREAMPlace's headline contribution is GPU-accelerated *global*
//! placement (wirelength attraction + density spreading, solved
//! iteratively). This module implements a compact force-directed
//! equivalent whose per-iteration hot loops run as Heteroflow GPU
//! kernels:
//!
//! * **attraction kernel** — every net pulls its pins toward the net
//!   centroid (a B2B/quadratic-wirelength surrogate);
//! * **spreading kernel** — cells in overfull density bins are pushed
//!   away from the bin centroid;
//! * a host task integrates the forces and clamps to the layout.
//!
//! The output feeds [`crate::legalize`] and then detailed placement —
//! the full DREAMPlace-style pipeline (`examples/full_pd_flow.rs`).

use crate::db::Net;
use crate::legalize::Target;
use hf_core::data::HostVec;
use hf_core::{Executor, Heteroflow, HfError};

/// Parameters of the global placer.
#[derive(Debug, Clone, Copy)]
pub struct GlobalConfig {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Attraction step size (toward net centroids).
    pub attraction: f32,
    /// Spreading step size (away from crowded bins).
    pub spreading: f32,
    /// Density grid resolution (bins per axis).
    pub bins: u32,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        Self {
            iterations: 60,
            attraction: 0.15,
            spreading: 0.6,
            bins: 12,
        }
    }
}

/// Runs global placement on an executor. `initial` positions may overlap
/// arbitrarily; returns (fractional) target positions for legalization.
pub fn global_place(
    executor: &Executor,
    initial: &[Target],
    nets: &[Net],
    rows: u32,
    sites: u32,
    cfg: GlobalConfig,
) -> Result<Vec<Target>, HfError> {
    let n = initial.len();
    if n == 0 {
        return Ok(Vec::new());
    }

    // Flat interleaved positions [x0, y0, x1, y1, ...].
    let mut xy0 = Vec::with_capacity(n * 2);
    for t in initial {
        xy0.push(t.x);
        xy0.push(t.y);
    }
    let h_xy: HostVec<f32> = HostVec::from_vec(xy0);
    let h_force: HostVec<f32> = HostVec::from_vec(vec![0.0; n * 2]);

    // CSR nets.
    let mut offsets = Vec::with_capacity(nets.len() + 1);
    let mut pins = Vec::new();
    offsets.push(0u32);
    for net in nets {
        pins.extend(net.pins.iter().copied());
        offsets.push(pins.len() as u32);
    }
    let h_off: HostVec<u32> = HostVec::from_vec(offsets);
    let h_pins: HostVec<u32> =
        HostVec::from_vec(if pins.is_empty() { vec![u32::MAX] } else { pins });

    let g = Heteroflow::new("global-place");
    let p_xy = g.pull("xy", &h_xy);
    let p_force = g.pull("force", &h_force);
    let p_off = g.pull("net_off", &h_off);
    let p_pins = g.pull("net_pins", &h_pins);

    let num_nets = nets.len();
    let bins = cfg.bins.max(1);
    let capacity_per_bin =
        (n as f32 / (bins * bins) as f32).max(1.0);

    let mut prev: hf_core::TaskRef = {
        use hf_core::AsTask;
        p_xy.as_task()
    };
    use hf_core::AsTask;

    for it in 0..cfg.iterations {
        // Zero the force accumulator.
        let zero = g.kernel("zero", &[&p_force], |cfg, args| {
            let f = args.slice_mut::<f32>(0).expect("force");
            for i in cfg.threads() {
                if i < f.len() {
                    f[i] = 0.0;
                }
            }
        });
        zero.rename(&format!("zero[{it}]"));
        zero.cover(n * 2, 256);
        zero.succeed(&prev);
        if it == 0 {
            zero.succeed_all(&[&p_force, &p_off, &p_pins]);
        }

        // Attraction: each net pulls its pins toward its centroid.
        let attract = g.kernel(
            &format!("attract[{it}]"),
            &[&p_xy, &p_off, &p_pins, &p_force],
            {
                let k = cfg.attraction;
                move |cfgk, args| {
                    let xy = args.slice::<f32>(0).expect("xy").to_vec();
                    let off = args.slice::<u32>(1).expect("off").to_vec();
                    let pins = args.slice::<u32>(2).expect("pins").to_vec();
                    let force = args.slice_mut::<f32>(3).expect("force");
                    for net in cfgk.threads() {
                        if net >= off.len().saturating_sub(1) {
                            continue;
                        }
                        let (s, e) = (off[net] as usize, off[net + 1] as usize);
                        if e <= s {
                            continue;
                        }
                        let m = (e - s) as f32;
                        let (mut cx, mut cy) = (0.0f32, 0.0f32);
                        for &p in &pins[s..e] {
                            cx += xy[p as usize * 2];
                            cy += xy[p as usize * 2 + 1];
                        }
                        cx /= m;
                        cy /= m;
                        for &p in &pins[s..e] {
                            let pi = p as usize;
                            force[pi * 2] += k * (cx - xy[pi * 2]);
                            force[pi * 2 + 1] += k * (cy - xy[pi * 2 + 1]);
                        }
                    }
                }
            },
        );
        attract.cover(num_nets.max(1), 128).work_units(num_nets.max(1) as f64 * 4.0);
        attract.succeed(&zero);

        // Spreading: push cells out of overfull density bins.
        let spread = g.kernel(
            &format!("spread[{it}]"),
            &[&p_xy, &p_force],
            {
                let k = cfg.spreading;
                let (bins, sites, rows) = (bins, sites as f32, rows as f32);
                move |cfgk, args| {
                    let (xy, force) =
                        args.slice2_mut::<f32, f32>(0, 1).expect("disjoint");
                    let nb = (bins * bins) as usize;
                    let mut count = vec![0u32; nb];
                    let mut cx = vec![0.0f32; nb];
                    let mut cy = vec![0.0f32; nb];
                    let ncells = xy.len() / 2;
                    let bin_of = |x: f32, y: f32| -> usize {
                        let bx = ((x / sites) * bins as f32).clamp(0.0, bins as f32 - 1.0)
                            as usize;
                        let by = ((y / rows) * bins as f32).clamp(0.0, bins as f32 - 1.0)
                            as usize;
                        by * bins as usize + bx
                    };
                    for i in 0..ncells {
                        let b = bin_of(xy[i * 2], xy[i * 2 + 1]);
                        count[b] += 1;
                        cx[b] += xy[i * 2];
                        cy[b] += xy[i * 2 + 1];
                    }
                    for b in 0..nb {
                        if count[b] > 0 {
                            cx[b] /= count[b] as f32;
                            cy[b] /= count[b] as f32;
                        }
                    }
                    let cap = (ncells as f32 / nb as f32).max(1.0);
                    for i in cfgk.threads() {
                        if i >= ncells {
                            continue;
                        }
                        let b = bin_of(xy[i * 2], xy[i * 2 + 1]);
                        let over = (count[b] as f32 / cap) - 1.0;
                        if over > 0.0 {
                            let dx = xy[i * 2] - cx[b];
                            let dy = xy[i * 2 + 1] - cy[b];
                            // Push away from the crowded centroid; cells
                            // exactly at the centroid get a deterministic
                            // nudge.
                            let (dx, dy) = if dx == 0.0 && dy == 0.0 {
                                (((i % 7) as f32 - 3.0) * 0.1, ((i % 5) as f32 - 2.0) * 0.1)
                            } else {
                                (dx, dy)
                            };
                            force[i * 2] += k * over * dx;
                            force[i * 2 + 1] += k * over * dy;
                        }
                    }
                }
            },
        );
        spread.cover(n, 128).work_units(n as f64 * 2.0);
        spread.succeed(&attract);

        // Integrate: apply forces, clamp to the layout.
        let step = g.kernel(
            &format!("step[{it}]"),
            &[&p_xy, &p_force],
            {
                let (sites, rows) = (sites as f32, rows as f32);
                move |cfgk, args| {
                    let (xy, force) =
                        args.slice2_mut::<f32, f32>(0, 1).expect("disjoint");
                    let ncells = xy.len() / 2;
                    for i in cfgk.threads() {
                        if i >= ncells {
                            continue;
                        }
                        xy[i * 2] = (xy[i * 2] + force[i * 2]).clamp(0.0, sites - 1.0);
                        xy[i * 2 + 1] =
                            (xy[i * 2 + 1] + force[i * 2 + 1]).clamp(0.0, rows - 1.0);
                    }
                }
            },
        );
        step.cover(n, 256);
        step.succeed(&spread);
        prev = step.as_task();
    }

    let push = g.push("final_xy", &p_xy, &h_xy);
    push.succeed(&prev);
    let _ = capacity_per_bin;

    executor.run(&g).wait()?;

    let xy = h_xy.to_vec();
    Ok((0..n)
        .map(|i| Target {
            x: xy[i * 2],
            y: xy[i * 2 + 1],
        })
        .collect())
}

/// Quadratic-wirelength surrogate of a target set (sum of squared
/// pin-to-centroid distances) — the objective the attraction step
/// descends; used by tests to verify improvement.
pub fn quadratic_wirelength(targets: &[Target], nets: &[Net]) -> f64 {
    let mut total = 0.0f64;
    for net in nets {
        if net.pins.len() < 2 {
            continue;
        }
        let m = net.pins.len() as f64;
        let (mut cx, mut cy) = (0.0f64, 0.0f64);
        for &p in &net.pins {
            cx += targets[p as usize].x as f64;
            cy += targets[p as usize].y as f64;
        }
        cx /= m;
        cy /= m;
        for &p in &net.pins {
            let dx = targets[p as usize].x as f64 - cx;
            let dy = targets[p as usize].y as f64 - cy;
            total += dx * dx + dy * dy;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PlacementConfig, PlacementDb};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scattered(n: usize, side: u32, seed: u64) -> (Vec<Target>, Vec<Net>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let targets: Vec<Target> = (0..n)
            .map(|_| Target {
                x: rng.gen_range(0.0..side as f32),
                y: rng.gen_range(0.0..side as f32),
            })
            .collect();
        let nets: Vec<Net> = (0..n)
            .map(|i| {
                let mut pins = vec![i as u32];
                for _ in 0..2 {
                    let other = rng.gen_range(0..n) as u32;
                    if !pins.contains(&other) {
                        pins.push(other);
                    }
                }
                if pins.len() < 2 {
                    pins.push(((i + 1) % n) as u32);
                }
                Net { pins }
            })
            .collect();
        (targets, nets)
    }

    #[test]
    fn attraction_reduces_quadratic_wirelength() {
        let ex = Executor::new(2, 1);
        let (targets, nets) = scattered(300, 40, 1);
        let before = quadratic_wirelength(&targets, &nets);
        let out = global_place(&ex, &targets, &nets, 40, 40, GlobalConfig::default())
            .expect("global place runs");
        let after = quadratic_wirelength(&out, &nets);
        assert!(
            after < before * 0.8,
            "no meaningful improvement: {before:.1} -> {after:.1}"
        );
        // Positions stay inside the layout.
        for t in &out {
            assert!(t.x >= 0.0 && t.x <= 39.0);
            assert!(t.y >= 0.0 && t.y <= 39.0);
        }
    }

    #[test]
    fn spreading_limits_clumping() {
        // Everything starts at one point; spreading must disperse it.
        let ex = Executor::new(2, 1);
        let n = 128;
        let targets = vec![Target { x: 16.0, y: 16.0 }; n];
        let nets: Vec<Net> = (0..n / 2)
            .map(|i| Net {
                pins: vec![i as u32, (i + n / 2) as u32],
            })
            .collect();
        let out = global_place(
            &ex,
            &targets,
            &nets,
            32,
            32,
            GlobalConfig {
                iterations: 40,
                attraction: 0.05,
                spreading: 0.5,
                bins: 4,
            },
        )
        .expect("runs");
        let distinct: std::collections::HashSet<(i32, i32)> = out
            .iter()
            .map(|t| (t.x.round() as i32, t.y.round() as i32))
            .collect();
        assert!(
            distinct.len() > n / 8,
            "cells stayed clumped: {} distinct sites",
            distinct.len()
        );
    }

    /// The full pipeline: global place → legalize → detailed place,
    /// ending legal and with better HPWL than legalizing the raw input.
    #[test]
    fn full_pipeline_improves_over_skipping_global() {
        let ex = Executor::new(2, 1);
        let (targets, nets) = scattered(200, 20, 3);

        // Without global placement.
        let (db_raw, _) =
            crate::legalize::legalize_into_db(&targets, &[false; 200], nets.clone(), 20, 20);
        let raw_hpwl = db_raw.total_hpwl();

        // With global placement.
        let placed = global_place(&ex, &targets, &nets, 20, 20, GlobalConfig::default())
            .expect("runs");
        let (db_gp, _) =
            crate::legalize::legalize_into_db(&placed, &[false; 200], nets, 20, 20);
        db_gp.check_legal().expect("legal");
        assert!(
            db_gp.total_hpwl() < raw_hpwl,
            "global placement did not help: {} vs {}",
            db_gp.total_hpwl(),
            raw_hpwl
        );

        // And detailed placement still refines it.
        let out = crate::algo::detailed_place_sequential(
            db_gp,
            crate::algo::PlaceConfig {
                iterations: 2,
                ..Default::default()
            },
        );
        assert!(out.hpwl_after <= out.hpwl_before);
    }

    #[test]
    fn empty_input_is_fine() {
        let ex = Executor::new(1, 1);
        let out = global_place(&ex, &[], &[], 4, 4, GlobalConfig::default()).expect("runs");
        assert!(out.is_empty());
        let _ = PlacementDb::synthesize(&PlacementConfig::default());
    }
}
