//! Cache-padded sharded counter for low-contention statistics.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A counter sharded across cache lines.
///
/// Writers pick a shard (normally their worker id) and increment it with a
/// relaxed atomic add; readers sum all shards. Used for executor statistics
/// (steal attempts, wasted wakeups) where per-event precision matters but
/// cross-thread ordering does not.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl ShardedCounter {
    /// Creates a counter with `shards` independent cells (at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Adds `v` to the shard for `id` (wraps modulo the shard count).
    #[inline]
    pub fn add(&self, id: usize, v: u64) {
        self.shards[id % self.shards.len()]
            .fetch_add(v, Ordering::Relaxed);
    }

    /// Increments the shard for `id` by one.
    #[inline]
    pub fn incr(&self, id: usize) {
        self.add(id, 1);
    }

    /// Sums all shards. Not linearizable with respect to concurrent
    /// increments; intended for end-of-run statistics.
    pub fn sum(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets every shard to zero.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

/// A plain (unsharded) event counter for statistics that are incremented
/// from arbitrary threads with no natural shard id — e.g. rounds completed,
/// cache hits on the submission path, or batched injector sprays. Shares
/// the [`ShardedCounter`] read API (`sum`/`reset`) so call sites look
/// uniform.
#[derive(Debug, Default)]
pub struct GlobalCounter(AtomicU64);

impl GlobalCounter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn sum(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn global_counter_counts_and_resets() {
        let c = GlobalCounter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.sum(), 5);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn sums_across_shards() {
        let c = ShardedCounter::new(4);
        c.incr(0);
        c.incr(1);
        c.add(2, 10);
        c.incr(6); // wraps to shard 2
        assert_eq!(c.sum(), 13);
        c.reset();
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let c = ShardedCounter::new(0);
        c.incr(5);
        assert_eq!(c.sum(), 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(ShardedCounter::new(8));
        let threads: Vec<_> = (0..4)
            .map(|id| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr(id);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.sum(), 4000);
    }
}
