//! Low-level concurrency substrate for the Heteroflow runtime.
//!
//! This crate implements, from scratch, the synchronization building blocks
//! the Heteroflow scheduler (paper §III-C) is built on:
//!
//! * [`deque`] — a Chase–Lev work-stealing deque. Each executor worker owns
//!   one; idle workers become *thieves* and steal from a randomly chosen
//!   *victim* (paper refs [20], [21]).
//! * [`notifier`] — an eventcount used by the adaptive wake/sleep strategy
//!   ("ensure one thief exists as long as an active worker is running a
//!   task").
//! * [`unionfind`] — a disjoint-set forest used by Algorithm 1
//!   (*DevicePlacement*) to group each kernel task with its source pull
//!   tasks before bin packing onto GPUs.
//! * [`backoff`] — an exponential spin-then-yield helper for contended
//!   loops.
//! * [`injector`] — a segmented lock-free MPMC queue with single-CAS
//!   batch push/pop, serving as the executor's shared task inbox.
//! * [`counter`] — a cache-padded sharded counter for low-contention
//!   statistics (steal counts, wakeups) gathered by the executor.
//! * [`ring`] — a bounded lock-free MPMC event ring that drops (and
//!   counts) instead of blocking, backing the telemetry span buffers of
//!   workers and device engines.
//! * [`pad`] — cache-line padding ([`CachePadded`]) backing the counter
//!   shards and queue indices.

#![warn(missing_docs)]

pub mod atomic;
pub mod backoff;
pub mod counter;
pub mod deque;
pub mod injector;
pub mod magazine;
pub mod notifier;
pub mod pad;
pub mod ring;
pub mod unionfind;

pub use backoff::Backoff;
pub use counter::{GlobalCounter, ShardedCounter};
pub use deque::{Steal, StealDeque, Stealer};
pub use injector::Injector;
pub use magazine::SlotCache;
pub use notifier::{Notifier, WaitToken};
pub use pad::CachePadded;
pub use ring::EventRing;
pub use unionfind::UnionFind;
