//! Microbenchmark: the Chase–Lev work-stealing deque (the executor's
//! per-worker queue).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_sync::{Steal, StealDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn owner_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque/owner");
    for &n in &[256usize, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let d = StealDeque::new();
            b.iter(|| {
                for i in 0..n {
                    d.push(i);
                }
                while d.pop().is_some() {}
            });
        });
    }
    g.finish();
}

fn contended_steal(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque/contended");
    g.sample_size(10);
    g.bench_function("one_thief", |b| {
        b.iter_custom(|iters| {
            let d = StealDeque::new();
            let s = d.stealer();
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let thief = std::thread::spawn(move || {
                let mut got = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    if let Steal::Success(_) = s.steal() {
                        got += 1;
                    }
                }
                got
            });
            let t0 = std::time::Instant::now();
            for i in 0..iters {
                d.push(i);
                if i % 4 == 0 {
                    let _ = d.pop();
                }
            }
            let el = t0.elapsed();
            stop.store(true, Ordering::Relaxed);
            let _ = thief.join();
            el
        });
    });
    g.finish();
}

criterion_group!(benches, owner_push_pop, contended_steal);
criterion_main!(benches);
