//! Events: the synchronization primitive between streams and the host.
//!
//! Mirrors `cudaEvent_t`: an event is *recorded* into a stream
//! ([`crate::Stream::record_event`]); it fires when the stream's engine
//! reaches that point. Other streams can be made to wait on it
//! ([`crate::Stream::wait_event`]), and the host can block on it
//! ([`Event::synchronize`]) — the pattern in the paper's Listing 13.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    /// Number of times the event has fired. A waiter waits for this to
    /// reach its captured target, so events are safely re-recordable
    /// (CUDA allows re-recording an event).
    fired: AtomicU64,
    /// Number of times the event has been recorded into a stream.
    recorded: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

/// A recordable, awaitable completion marker. Cheap to clone (Arc inside).
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<Inner>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Creates an event that has never fired.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                fired: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }

    /// Called by a stream when the event is enqueued; returns the
    /// generation this recording will fire as.
    pub(crate) fn mark_recorded(&self) -> u64 {
        self.inner.recorded.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Called by the engine thread when execution reaches the record op.
    pub(crate) fn fire(&self) {
        let _g = self.inner.lock.lock();
        self.inner.fired.fetch_add(1, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Number of recordings made so far.
    pub(crate) fn recorded_count(&self) -> u64 {
        self.inner.recorded.load(Ordering::SeqCst)
    }

    /// Generation counter of firings so far.
    pub fn generation(&self) -> u64 {
        self.inner.fired.load(Ordering::SeqCst)
    }

    /// True once the most recent recording has fired (or if the event was
    /// never recorded — CUDA's `cudaEventQuery` returns success for an
    /// unrecorded event).
    pub fn is_ready(&self) -> bool {
        self.inner.fired.load(Ordering::SeqCst) >= self.inner.recorded.load(Ordering::SeqCst)
    }

    /// True once at least `generation` firings have happened.
    pub fn reached(&self, generation: u64) -> bool {
        self.inner.fired.load(Ordering::SeqCst) >= generation
    }

    /// Blocks the calling (host) thread until the latest recording fires.
    pub fn synchronize(&self) {
        let target = self.inner.recorded.load(Ordering::SeqCst);
        self.wait_for(target);
    }

    /// Blocks until at least `generation` firings have happened.
    pub fn wait_for(&self, generation: u64) {
        if self.reached(generation) {
            return;
        }
        let mut g = self.inner.lock.lock();
        while !self.reached(generation) {
            self.inner.cv.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unrecorded_event_is_ready() {
        let e = Event::new();
        assert!(e.is_ready());
        e.synchronize(); // must not block
    }

    #[test]
    fn recorded_then_fired() {
        let e = Event::new();
        let gen = e.mark_recorded();
        assert!(!e.is_ready());
        e.fire();
        assert!(e.is_ready());
        assert!(e.reached(gen));
    }

    #[test]
    fn synchronize_blocks_until_fire() {
        let e = Event::new();
        e.mark_recorded();
        let e2 = e.clone();
        let h = thread::spawn(move || {
            e2.synchronize();
            true
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "synchronize returned before fire");
        e.fire();
        assert!(h.join().unwrap());
    }

    #[test]
    fn re_recording_works() {
        let e = Event::new();
        e.mark_recorded();
        e.fire();
        let gen2 = e.mark_recorded();
        assert!(!e.is_ready());
        assert!(!e.reached(gen2));
        e.fire();
        assert!(e.reached(gen2));
    }
}
