//! Property-based tests for the GPU substrate.

use hf_gpu::buddy::BuddyAllocator;
use hf_gpu::{GpuConfig, GpuRuntime, Stream};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Random interleavings of alloc/free: live allocations never overlap,
    /// and freeing everything restores the pristine single-block state.
    #[test]
    fn buddy_never_overlaps_and_fully_coalesces(
        ops in proptest::collection::vec((any::<bool>(), 1usize..5000), 1..200)
    ) {
        let mut b = BuddyAllocator::new(1 << 16, 64);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (is_alloc, sz) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(off) = b.alloc(sz) {
                    let len = b.allocation_size(off).unwrap();
                    for &(po, plen) in &live {
                        let disjoint = off + len as u64 <= po || po + plen as u64 <= off;
                        prop_assert!(disjoint, "overlap ({off},{len}) vs ({po},{plen})");
                    }
                    prop_assert!(off as usize + len <= b.capacity());
                    // Naturally aligned to its block size.
                    prop_assert_eq!(off as usize % len, 0);
                    live.push((off, len));
                }
            } else {
                let idx = sz % live.len();
                let (off, _) = live.swap_remove(idx);
                b.free(off).unwrap();
            }
        }
        let in_use: usize = live.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(b.stats().bytes_in_use, in_use);
        for (off, _) in live {
            b.free(off).unwrap();
        }
        prop_assert!(b.is_pristine(), "did not coalesce back to one block");
    }

    /// Rounded sizes are powers of two >= max(min_block, size).
    #[test]
    fn buddy_rounding_is_power_of_two(sz in 1usize..100_000) {
        let b = BuddyAllocator::new(1 << 20, 128);
        if let Some(r) = b.rounded_size(sz) {
            prop_assert!(r.is_power_of_two());
            prop_assert!(r >= sz);
            prop_assert!(r >= 128);
            prop_assert!(r < 2 * sz.max(128), "rounded more than 2x");
        } else {
            prop_assert!(sz.next_power_of_two() > 1 << 20);
        }
    }

    /// `slice2_mut` accepts exactly the disjoint pointer pairs and
    /// rejects every overlapping pair, for arbitrary ranges.
    #[test]
    fn split_views_respect_disjointness(
        a_off in 0u64..200, a_len in 1u64..64,
        b_off in 0u64..200, b_len in 1u64..64,
    ) {
        use hf_gpu::arena::{Arena, DevicePtr};
        let mut arena = Arena::new(0, 512);
        let mut view = arena.view();
        let pa = DevicePtr { device: 0, offset: a_off, len: a_len, capacity: a_len };
        let pb = DevicePtr { device: 0, offset: b_off, len: b_len, capacity: b_len };
        let overlap = a_off < b_off + b_len && b_off < a_off + a_len;
        let res = view.slice2_mut::<u8, u8>(pa, pb);
        if overlap {
            prop_assert!(res.is_err(), "overlap accepted: {pa:?} {pb:?}");
        } else {
            let (sa, sb) = res.expect("disjoint ranges accepted");
            prop_assert_eq!(sa.len() as u64, a_len);
            prop_assert_eq!(sb.len() as u64, b_len);
            // Writes through one view never bleed into the other.
            sa.fill(0xAA);
            sb.fill(0x55);
            prop_assert!(sa.iter().all(|&x| x == 0xAA));
        }
    }

    /// Any sequence of H2D copies followed by D2H reads returns exactly
    /// the bytes written, for random sizes and devices.
    #[test]
    fn stream_copies_round_trip(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 1..8),
        dev_id in 0u32..2,
    ) {
        let rt = GpuRuntime::new(2, GpuConfig::default());
        let dev = rt.device(dev_id).unwrap();
        let s = Stream::new(&dev);
        let mut ptrs = Vec::new();
        for c in &chunks {
            let p = dev.alloc(c.len()).unwrap();
            s.h2d_async(p, c.clone());
            ptrs.push(p);
        }
        let results: Vec<Arc<parking_lot::Mutex<Vec<u8>>>> =
            (0..chunks.len()).map(|_| Arc::new(parking_lot::Mutex::new(Vec::new()))).collect();
        for (p, r) in ptrs.iter().zip(&results) {
            let r = Arc::clone(r);
            s.d2h_with(*p, move |b| r.lock().extend_from_slice(b));
        }
        s.synchronize();
        prop_assert!(dev.take_error().is_none());
        for (c, r) in chunks.iter().zip(&results) {
            prop_assert_eq!(&*r.lock(), c);
        }
        for p in ptrs {
            dev.free(p).unwrap();
        }
        prop_assert!(dev.pool_stats().bytes_in_use == 0);
    }
}

proptest! {
    /// Random interleavings of pool alloc/free across size classes: the
    /// magazine fast path and the buddy slow path together never hand out
    /// overlapping blocks, never leak, and never double-free. After
    /// freeing everything and flushing the magazines the pool is empty.
    #[test]
    fn pool_magazines_never_overlap_or_leak(
        ops in proptest::collection::vec((any::<bool>(), 1usize..3000), 1..300)
    ) {
        let rt = GpuRuntime::new(1, GpuConfig::default());
        let dev = rt.device(0).unwrap();
        let mut live: Vec<hf_gpu::arena::DevicePtr> = Vec::new();
        for (is_alloc, sz) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(p) = dev.alloc(sz) {
                    prop_assert!(p.len as usize == sz);
                    prop_assert!(p.capacity >= p.len);
                    for q in &live {
                        let disjoint = p.offset + p.capacity <= q.offset
                            || q.offset + q.capacity <= p.offset;
                        prop_assert!(disjoint, "overlap {p:?} vs {q:?}");
                    }
                    live.push(p);
                }
            } else {
                let idx = sz % live.len();
                let p = live.swap_remove(idx);
                dev.free(p).unwrap();
            }
        }
        // Reported usage counts exactly the live blocks (magazine-parked
        // blocks are excluded).
        let in_use: usize = live.iter().map(|p| p.capacity as usize).sum();
        prop_assert_eq!(dev.pool_stats().bytes_in_use, in_use);
        for p in live.drain(..) {
            dev.free(p).unwrap();
        }
        dev.trim_pool();
        let s = dev.pool_stats();
        prop_assert_eq!(s.bytes_in_use, 0);
        prop_assert_eq!(s.magazine_cached_bytes, 0);
        prop_assert_eq!(s.allocs, s.frees, "every alloc freed exactly once");
    }
}
