//! Per-device pooled memory allocator.
//!
//! Pull tasks allocate device memory on every execution; the paper
//! amortizes this with a per-GPU pool over a buddy allocator (§III-C).
//! [`MemoryPool`] is that pool: a buddy allocator fronted by per-size-class
//! *magazine* caches — bounded lock-free free lists (one
//! [`hf_sync::SlotCache`] per buddy order) that absorb the common repeated
//! same-size alloc/free pattern with one compare-exchange and one counter
//! bump, never touching the buddy mutex. Blocks parked in a magazine stay
//! "live" inside the buddy allocator, so their offsets and orders remain
//! consistent; they are flushed back (and coalesced) on memory pressure,
//! on [`MemoryPool::flush`], and before pristine checks.

use crate::arena::DevicePtr;
use crate::buddy::BuddyAllocator;
use crate::error::GpuError;
use hf_sync::SlotCache;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on cached blocks per size class. Excess frees fall through to the
/// buddy allocator so one hot class cannot pin the whole arena.
const MAGAZINE_CAP: usize = 64;

/// Snapshot of pool health: the buddy allocator's counters plus the
/// magazine-cache layer in front of it.
///
/// `allocs`/`frees` count *pool-level* operations (magazine hits included);
/// `splits`/`merges` remain buddy-internal. `bytes_in_use` reports bytes
/// held by callers — blocks parked in magazines are counted separately in
/// `magazine_cached_bytes`, so a pool whose allocations were all returned
/// shows `bytes_in_use == 0` even while its magazines are warm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful pool allocations (magazine hits + buddy allocations).
    pub allocs: u64,
    /// Pool frees (into a magazine or back to the buddy).
    pub frees: u64,
    /// Buddy block splits performed.
    pub splits: u64,
    /// Buddy coalesces performed.
    pub merges: u64,
    /// Allocation failures (out of memory after a magazine flush).
    pub failures: u64,
    /// Bytes currently held by callers (rounded block sizes), excluding
    /// blocks parked in magazines.
    pub bytes_in_use: usize,
    /// High-water mark of buddy bytes handed out (includes cached blocks).
    pub peak_bytes: usize,
    /// Allocations served lock-free from a magazine.
    pub magazine_hits: u64,
    /// Allocations that had to take the buddy mutex.
    pub magazine_misses: u64,
    /// Bytes currently parked in magazines awaiting reuse.
    pub magazine_cached_bytes: usize,
}

/// Thread-safe device memory pool: magazines over a buddy allocator.
///
/// The hot path is deliberately thin: a magazine hit costs one slot
/// compare-exchange plus one relaxed counter bump. Derived statistics
/// (total allocs, cached bytes) are computed in [`MemoryPool::stats`]
/// instead of being maintained by hot-path atomics.
pub struct MemoryPool {
    device: u32,
    buddy: Mutex<BuddyAllocator>,
    /// One magazine per buddy order (index = order).
    magazines: Vec<SlotCache>,
    min_block: usize,
    capacity: usize,
    /// Allocations served lock-free from a magazine.
    hits: AtomicU64,
    /// Allocation attempts that fell through to the buddy mutex.
    misses: AtomicU64,
    /// Pool-level frees (parked or returned to the buddy).
    pool_frees: AtomicU64,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes for `device` with the given
    /// minimum block size.
    pub fn new(device: u32, capacity: usize, min_block: usize) -> Self {
        let buddy = BuddyAllocator::new(capacity, min_block);
        let orders = (capacity / min_block).trailing_zeros() as usize + 1;
        Self {
            device,
            buddy: Mutex::new(buddy),
            magazines: (0..orders).map(|_| SlotCache::new(MAGAZINE_CAP)).collect(),
            min_block,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            pool_frees: AtomicU64::new(0),
        }
    }

    /// Rounded block size and order for a request, computed without any
    /// lock (mirrors the buddy's internal rounding).
    fn class_for(&self, bytes: usize) -> Option<(usize, usize)> {
        let size = bytes.max(1).max(self.min_block).next_power_of_two();
        if size > self.capacity {
            return None;
        }
        Some((size, (size / self.min_block).trailing_zeros() as usize))
    }

    /// Allocates `bytes` of device memory. The returned pointer's `len` is
    /// the *requested* length; `capacity` is the rounded buddy block the
    /// pool actually reserved.
    pub fn alloc(&self, bytes: usize) -> Result<DevicePtr, GpuError> {
        let (block, order) = self.class_for(bytes).ok_or(GpuError::OutOfMemory {
            requested: bytes,
            free: 0,
        })?;
        // Fast path: pop a parked block of the right class — no mutex.
        if let Some(offset) = self.magazines[order].try_take() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(DevicePtr {
                device: self.device,
                offset,
                len: bytes as u64,
                capacity: block as u64,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Bind before matching: a lock temporary in the scrutinee would
        // live across the flush-retry arm and self-deadlock.
        let first = self.buddy.lock().alloc(bytes);
        let offset = match first {
            Ok(o) => o,
            Err(GpuError::OutOfMemory { .. }) => {
                // Pressure: give cached blocks back for coalescing, retry.
                self.flush();
                self.buddy.lock().alloc(bytes)?
            }
            Err(e) => return Err(e),
        };
        Ok(DevicePtr {
            device: self.device,
            offset,
            len: bytes as u64,
            capacity: block as u64,
        })
    }

    /// Returns an allocation to the pool. Same-class re-allocation will
    /// reuse it lock-free; the block only rejoins the buddy allocator when
    /// its magazine is full or the pool is flushed.
    pub fn free(&self, ptr: DevicePtr) -> Result<(), GpuError> {
        if ptr.device != self.device {
            return Err(GpuError::WrongDevice {
                owner: ptr.device,
                used_on: self.device,
            });
        }
        let class = match self.class_for(ptr.capacity.max(1) as usize) {
            // Accept only pointers whose capacity is exactly a block size
            // this pool could have reserved; anything else goes straight to
            // the buddy, which still detects invalid frees.
            Some((block, order)) if block as u64 == ptr.capacity => Some((block, order)),
            _ => None,
        };
        if let Some((_block, order)) = class {
            if self.magazines[order].try_put(ptr.offset) {
                self.pool_frees.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        self.pool_frees.fetch_add(1, Ordering::Relaxed);
        self.buddy.lock().free(ptr.offset)
    }

    /// Drains every magazine back into the buddy allocator so blocks can
    /// coalesce. Called on allocation pressure, at topology completion, and
    /// before pristine checks.
    pub fn flush(&self) {
        let mut buddy = self.buddy.lock();
        for mag in &self.magazines {
            while let Some(offset) = mag.try_take() {
                // Offsets in a magazine are still live in the buddy; an
                // error here would mean pool-internal corruption.
                let _ = buddy.free(offset);
            }
        }
    }

    /// Bytes currently parked across all magazines (approximate while
    /// other threads allocate or free).
    fn cached_bytes(&self) -> usize {
        self.magazines
            .iter()
            .enumerate()
            .map(|(order, mag)| mag.len() * (self.min_block << order))
            .sum()
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        let b = self.buddy.lock().stats();
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let cached = self.cached_bytes();
        PoolStats {
            // Every successful allocation is either a magazine hit or a
            // successful buddy allocation — no hot-path counter needed.
            allocs: hits + b.allocs,
            frees: self.pool_frees.load(Ordering::Relaxed),
            splits: b.splits,
            merges: b.merges,
            failures: b.failures,
            bytes_in_use: b.bytes_in_use.saturating_sub(cached),
            peak_bytes: b.peak_bytes,
            magazine_hits: hits,
            magazine_misses: misses,
            magazine_cached_bytes: cached,
        }
    }

    /// Bytes available to new allocations (free in the buddy or parked in
    /// magazines; possibly fragmented).
    pub fn free_bytes(&self) -> usize {
        self.buddy.lock().free_bytes() + self.cached_bytes()
    }

    /// True when no allocation is live and the arena is fully coalesced.
    /// Flushes the magazines first so cached blocks do not count as live.
    pub fn is_pristine(&self) -> bool {
        self.flush();
        self.buddy.lock().is_pristine()
    }

    /// Device this pool serves.
    pub fn device(&self) -> u32 {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn alloc_carries_device_len_and_capacity() {
        let p = MemoryPool::new(2, 1 << 20, 256);
        let ptr = p.alloc(1000).unwrap();
        assert_eq!(ptr.device, 2);
        assert_eq!(ptr.len, 1000);
        assert_eq!(ptr.capacity, 1024, "capacity is the rounded buddy block");
        p.free(ptr).unwrap();
        assert!(p.is_pristine());
    }

    #[test]
    fn wrong_device_free_rejected() {
        let p = MemoryPool::new(0, 1 << 16, 256);
        let bad = DevicePtr { device: 1, offset: 0, len: 16, capacity: 256 };
        assert!(matches!(p.free(bad), Err(GpuError::WrongDevice { .. })));
    }

    #[test]
    fn concurrent_alloc_free_no_overlap() {
        let p = Arc::new(MemoryPool::new(0, 1 << 22, 256));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    let mut ptrs = Vec::new();
                    for i in 0..200 {
                        ptrs.push(p.alloc(256 + (i % 7) * 100).unwrap());
                        if i % 3 == 0 {
                            p.free(ptrs.swap_remove(0)).unwrap();
                        }
                    }
                    for ptr in ptrs {
                        p.free(ptr).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(p.is_pristine());
        assert_eq!(p.stats().allocs, 800);
    }

    #[test]
    fn magazine_reuses_same_class_without_buddy() {
        let p = MemoryPool::new(0, 1 << 20, 256);
        let a = p.alloc(512).unwrap();
        p.free(a).unwrap();
        let before = p.stats();
        for _ in 0..100 {
            let ptr = p.alloc(500).unwrap(); // same 512-byte class
            assert_eq!(ptr.offset, a.offset, "magazine hands back the parked block");
            p.free(ptr).unwrap();
        }
        let after = p.stats();
        assert_eq!(after.magazine_hits - before.magazine_hits, 100);
        assert_eq!(after.magazine_misses, before.magazine_misses);
        assert!(p.is_pristine());
    }

    #[test]
    fn pressure_flushes_magazines_and_retries() {
        // Arena of 4 KiB, min block 256: park four 1 KiB blocks in the
        // magazine, then ask for the full arena — the pool must flush the
        // cached blocks back, coalesce, and satisfy the request.
        let p = MemoryPool::new(0, 4096, 256);
        let ptrs: Vec<_> = (0..4).map(|_| p.alloc(1024).unwrap()).collect();
        for ptr in ptrs {
            p.free(ptr).unwrap();
        }
        assert!(p.stats().magazine_cached_bytes > 0);
        let big = p.alloc(4096).expect("flush-and-retry must satisfy this");
        p.free(big).unwrap();
        assert!(p.is_pristine());
    }

    #[test]
    fn bytes_in_use_excludes_cached_blocks() {
        let p = MemoryPool::new(0, 1 << 20, 256);
        let ptr = p.alloc(4096).unwrap();
        assert_eq!(p.stats().bytes_in_use, 4096);
        p.free(ptr).unwrap();
        let s = p.stats();
        assert_eq!(s.bytes_in_use, 0, "parked blocks are not caller-held");
        assert_eq!(s.magazine_cached_bytes, 4096);
    }
}
