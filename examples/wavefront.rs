//! Wavefront computing — the canonical task-graph workload for
//! task-parallel runtimes (Taskflow ships the same demo).
//!
//! An N×N grid of blocks where block (i, j) depends on (i-1, j) and
//! (i, j-1): ready blocks advance along anti-diagonal "waves". Each
//! block is a GPU kernel updating its tile from the neighbor tiles'
//! boundary values; the dependency pattern exercises exactly the
//! irregular, growing/shrinking parallelism the paper's executor targets.
//!
//! Run: `cargo run --release --example wavefront -- [grid] [tile]`

use heteroflow::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let grid: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let tile: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);

    let executor = Executor::new(4, 2);
    let g = Heteroflow::new("wavefront");

    // One device-resident tile per block. Tile (i, j) starts as all
    // zeros except tile (0, 0), which is seeded with ones.
    let tiles: Vec<Vec<HostVec<f32>>> = (0..grid)
        .map(|i| {
            (0..grid)
                .map(|j| {
                    let seed = if i == 0 && j == 0 { 1.0 } else { 0.0 };
                    HostVec::from_vec(vec![seed; tile * tile])
                })
                .collect()
        })
        .collect();

    // Pull every tile once; kernels chain through the dependency grid.
    let pulls: Vec<Vec<PullTask>> = (0..grid)
        .map(|i| {
            (0..grid)
                .map(|j| g.pull(&format!("pull_{i}_{j}"), &tiles[i][j]))
                .collect()
        })
        .collect();

    let mut kernels: Vec<Vec<KernelTask>> = Vec::with_capacity(grid);
    for i in 0..grid {
        let mut row = Vec::with_capacity(grid);
        for j in 0..grid {
            // Sources: own tile + available upper/left neighbors.
            let mut sources: Vec<&PullTask> = vec![&pulls[i][j]];
            if i > 0 {
                sources.push(&pulls[i - 1][j]);
            }
            if j > 0 {
                sources.push(&pulls[i][j - 1]);
            }
            let n_src = sources.len();
            let k = g.kernel(&format!("block_{i}_{j}"), &sources, move |cfg, args| {
                // Each cell becomes the average of itself and the
                // neighbor tiles' mean — information flows along waves.
                let mut incoming = 0.0f32;
                for s in 1..n_src {
                    let nb = args.slice::<f32>(s).expect("neighbor tile");
                    incoming += nb.iter().sum::<f32>() / nb.len() as f32;
                }
                let own = args.slice_mut::<f32>(0).expect("own tile");
                for t in cfg.threads() {
                    if t < own.len() {
                        own[t] = 0.5 * own[t] + incoming;
                    }
                }
            });
            k.cover(tile * tile, 256)
                .work_units((tile * tile) as f64);
            // Explicit wavefront dependencies.
            k.succeed(&pulls[i][j]);
            if i > 0 {
                k.succeed(&kernels[i - 1][j]);
            }
            if j > 0 {
                k.succeed(&row[j - 1]);
            }
            row.push(k);
        }
        kernels.push(row);
    }

    // Only the final corner tile comes home.
    let last = grid - 1;
    let push = g.push("result", &pulls[last][last], &tiles[last][last]);
    push.succeed(&kernels[last][last]);

    let info = g.info().expect("acyclic");
    println!(
        "wavefront {grid}x{grid} (tile {tile}x{tile}): {} tasks, {} edges, critical path {}",
        info.num_tasks(),
        info.num_edges(),
        info.critical_path_len()
    );

    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());

    let t0 = std::time::Instant::now();
    executor.run(&g).wait().expect("wavefront runs");
    println!("executed in {:.2?}", t0.elapsed());

    // CPU reference of the same recurrence over tile means.
    let mut mean = vec![vec![0.0f64; grid]; grid];
    for i in 0..grid {
        for j in 0..grid {
            let seed = if i == 0 && j == 0 { 1.0 } else { 0.0 };
            let mut incoming = 0.0;
            if i > 0 {
                incoming += mean[i - 1][j];
            }
            if j > 0 {
                incoming += mean[i][j - 1];
            }
            mean[i][j] = 0.5 * seed + incoming;
        }
    }
    let got = {
        let v = tiles[last][last].read();
        v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
    };
    let want = mean[last][last];
    println!("corner tile mean: {got:.6} (reference {want:.6})");
    assert!(
        (got - want).abs() < 1e-3 * want.abs().max(1.0),
        "wavefront result diverged"
    );
    println!(
        "fused {} chain members; {} steals across workers",
        executor.stats().fused.sum(),
        executor.stats().steals.sum()
    );
}
