//! Property-based tests: random DAGs always execute respecting every
//! dependency edge, with all tasks run exactly once per round.

use hf_core::{Executor, Heteroflow};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Builds a random DAG over `n` host tasks: each edge goes from a lower to
/// a higher index, so the graph is acyclic by construction.
fn random_dag_edges(n: usize, density_seed: &[u8]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    let mut k = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let byte = density_seed[k % density_seed.len()];
            k += 1;
            if byte.is_multiple_of(3) {
                edges.push((i, j));
            }
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every precedence edge is honored: when task j runs, every
    /// predecessor i has already finished. Each task runs exactly once.
    #[test]
    fn random_dags_respect_all_edges(
        n in 2usize..24,
        seed in proptest::collection::vec(any::<u8>(), 16..64),
        workers in 1usize..5,
    ) {
        let edges = random_dag_edges(n, &seed);
        let ex = Executor::new(workers, 0);
        let g = Heteroflow::new("prop");

        let finish_order = Arc::new(Mutex::new(Vec::<usize>::new()));
        let run_counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());

        let tasks: Vec<_> = (0..n)
            .map(|i| {
                let fo = Arc::clone(&finish_order);
                let rc = Arc::clone(&run_counts);
                g.host(&format!("t{i}"), move || {
                    rc[i].fetch_add(1, Ordering::SeqCst);
                    fo.lock().push(i);
                })
            })
            .collect();
        for &(a, b) in &edges {
            tasks[a].precede(&tasks[b]);
        }

        ex.run(&g).wait().unwrap();

        let order = finish_order.lock().clone();
        prop_assert_eq!(order.len(), n);
        for (i, c) in run_counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "task {} ran wrong count", i);
        }
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(p, &t)| (t, p)).collect();
        for &(a, b) in &edges {
            prop_assert!(pos[&a] < pos[&b], "edge {}->{} violated", a, b);
        }
    }

    /// run_n(k) runs every task exactly k times and rounds never overlap:
    /// a strictly serialized chain observes a consistent count.
    #[test]
    fn run_n_rounds_are_serialized(
        k in 0usize..6,
        workers in 1usize..4,
    ) {
        let ex = Executor::new(workers, 0);
        let g = Heteroflow::new("rounds");
        let a_count = Arc::new(AtomicUsize::new(0));
        let b_count = Arc::new(AtomicUsize::new(0));
        let (ac, bc) = (Arc::clone(&a_count), Arc::clone(&b_count));
        let observed_diffs = Arc::new(Mutex::new(Vec::new()));
        let od = Arc::clone(&observed_diffs);
        let a = g.host("a", move || { ac.fetch_add(1, Ordering::SeqCst); });
        let b = g.host("b", move || {
            let av = a_count.load(Ordering::SeqCst);
            let bv = bc.fetch_add(1, Ordering::SeqCst) + 1;
            od.lock().push((av, bv));
        });
        a.precede(&b);
        ex.run_n(&g, k).wait().unwrap();
        prop_assert_eq!(b_count.load(Ordering::SeqCst), k);
        // In round r (1-based), b must observe a's count == r exactly:
        // rounds are back-to-back, never overlapping.
        for (r, (av, bv)) in observed_diffs.lock().iter().enumerate() {
            prop_assert_eq!(*bv, r + 1);
            prop_assert_eq!(*av, r + 1, "round {} overlapped", r);
        }
    }
}
