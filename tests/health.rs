//! Runtime-health acceptance tests: the flight recorder captures full
//! task lifecycles, device-loss chaos leaves a legible black box, the
//! watchdog sees injected stalls *before* the run resolves, and the live
//! endpoint serves scrapeable latency attribution.

use heteroflow::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(30);

fn seed() -> u64 {
    std::env::var("HF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_4ea1_7400_0001)
}

/// A pull → kernel → push lane over `bufs` buffers, values doubled.
fn doubling_graph(name: &str, bufs: &[HostVec<i32>]) -> Heteroflow {
    let g = Heteroflow::new(name);
    for (i, b) in bufs.iter().enumerate() {
        let p = g.pull(&format!("pull_{i}"), b);
        let k = g.kernel(&format!("double_{i}"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for t in cfg.threads() {
                if t < xs.len() {
                    xs[t] *= 2;
                }
            }
        });
        k.block_x(64);
        let s = g.push(&format!("push_{i}"), &p, b);
        p.precede(&k);
        k.precede(&s);
    }
    g
}

#[test]
fn flight_recorder_captures_full_lifecycle() {
    let recorder = FlightRecorder::shared();
    let ex = Executor::builder(2, 1)
        .observer(recorder.clone())
        .build();
    let bufs = vec![HostVec::from_vec(vec![1i32; 64])];
    let g = doubling_graph("lifecycle", &bufs);
    let fut = ex.run(&g);
    let run_id = fut.run_id();
    assert!(run_id > 0, "real submissions get nonzero run ids");
    fut.wait().expect("runs");
    recorder.pump();

    let dump = recorder.dump_run_json(run_id).expect("run retained");
    let events = dump.get("events").and_then(|e| e.as_array()).unwrap();
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("phase").and_then(|p| p.as_str()))
        .collect();
    assert_eq!(phases.first(), Some(&"run_start"));
    assert_eq!(phases.last(), Some(&"run_end"), "terminal event recorded");
    for needed in ["ready", "started", "finished"] {
        assert!(phases.contains(&needed), "missing phase {needed}: {phases:?}");
    }
    // GPU tasks carry their device and dispatch records.
    assert!(
        events.iter().any(|e| e.get("device").is_some()),
        "GPU lifecycle events carry a device id"
    );
    // Pull tasks carry moved bytes.
    assert!(
        events
            .iter()
            .any(|e| e.get("bytes").and_then(|b| b.as_u64()).unwrap_or(0) == 256),
        "pull events carry byte counts"
    );

    // Latency attribution populated all three components.
    let (qd, exec, run_lat) = recorder.latency_histograms();
    assert!(qd.count > 0, "queue delays observed");
    assert!(exec.count > 0, "exec times observed");
    assert_eq!(run_lat.count, 1, "one run latency observed");
    assert!(run_lat.quantile(0.99) > 0.0);

    let s = recorder.summaries();
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].ok, Some(true));
    assert_eq!(s[0].tasks, 3);
}

/// Acceptance criterion: a chaos run with injected device loss + retry
/// produces a flight-recorder dump showing dispatch → fault →
/// re-dispatch on a survivor.
#[test]
fn device_loss_black_box_shows_redispatch_on_survivor() {
    let seed = seed();
    let recorder = FlightRecorder::shared();
    let ex = Executor::builder(2, 2)
        .retry_policy(RetryPolicy::new(3))
        .observer(recorder.clone())
        .build();
    ex.gpu_runtime()
        .set_fault_plan(Some(FaultPlan::seeded(seed).lose_device(1, 1)));

    // Two independent lanes => both devices host live work when 1 dies.
    let bufs: Vec<HostVec<i32>> = (0..2).map(|_| HostVec::from_vec(vec![3; 64])).collect();
    let g = doubling_graph("lose_one", &bufs);
    let fut = ex.run(&g);
    let run_id = fut.run_id();
    let res = fut
        .wait_timeout(DEADLINE)
        .unwrap_or_else(|| panic!("device-loss run hung (seed {seed})"));
    assert_eq!(res, Ok(()), "device-loss run failed (seed {seed})");
    for b in &bufs {
        assert!(b.read().iter().all(|&v| v == 6), "corrupt data (seed {seed})");
    }

    recorder.pump();
    let dump = recorder.dump_run_json(run_id).expect("run retained");
    let events = dump.get("events").and_then(|e| e.as_array()).unwrap();
    let dispatched_on = |dev: u64| {
        events.iter().position(|e| {
            e.get("phase").and_then(|p| p.as_str()) == Some("dispatched")
                && e.get("device").and_then(|d| d.as_u64()) == Some(dev)
        })
    };
    assert!(
        dispatched_on(1).is_some(),
        "black box shows work dispatched to the doomed device (seed {seed})"
    );
    let fault_at = events
        .iter()
        .position(|e| {
            let p = e.get("phase").and_then(|p| p.as_str());
            (p == Some("failed") || p == Some("retried")) && !matches!(e.get("ok"), Some(v) if v.as_bool() == Some(true))
        })
        .or_else(|| {
            events
                .iter()
                .position(|e| e.get("phase").and_then(|p| p.as_str()) == Some("failover"))
        });
    assert!(
        fault_at.is_some(),
        "black box records the fault/failover (seed {seed})"
    );
    // After the fault, a survivor (device 0) finishes work.
    let survivor_finish = events.iter().skip(fault_at.unwrap()).any(|e| {
        e.get("phase").and_then(|p| p.as_str()) == Some("finished")
            && e.get("device").and_then(|d| d.as_u64()) == Some(0)
            && e.get("ok").and_then(|o| o.as_bool()) == Some(true)
    });
    assert!(
        survivor_finish,
        "black box shows re-dispatch completing on survivor (seed {seed})"
    );
    assert!(
        ex.stats().snapshot().devices_lost >= 1,
        "loss visible in stats (seed {seed})"
    );
}

/// Acceptance criterion: a FaultPlan-injected stall produces
/// `HealthEvent::Stall` before the run resolves, and the watchdog then
/// reports recovery.
#[test]
fn watchdog_sees_injected_stall_then_recovery() {
    let seed = seed();
    let recorder = FlightRecorder::shared();
    let ex = Executor::builder(2, 1).observer(recorder.clone()).build();
    ex.gpu_runtime().set_fault_plan(Some(
        FaultPlan::seeded(seed)
            .stall(FaultSite::Kernel, Duration::from_millis(400), 1.0)
            .max_stalls(1),
    ));
    let wd = Watchdog::spawn(
        recorder.clone(),
        WatchdogConfig {
            poll: Duration::from_millis(5),
            warn_after: Duration::from_millis(40),
            stall_after: Duration::from_millis(120),
            hang_after: Duration::from_secs(3600),
            cancel_after: None,
            ..WatchdogConfig::default()
        },
    );

    let bufs = vec![HostVec::from_vec(vec![1i32; 64])];
    let g = doubling_graph("stall_lane", &bufs);
    let fut = ex.run(&g);
    wd.arm(&fut, "stall_lane");
    let res = fut
        .wait_timeout(DEADLINE)
        .unwrap_or_else(|| panic!("stalled run hung (seed {seed})"));
    assert_eq!(res, Ok(()), "stalled run should still finish (seed {seed})");
    assert!(
        ex.gpu_runtime().stalls_injected() >= 1,
        "plan injected a stall (seed {seed})"
    );

    // Give the monitor a few polls to observe completion.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let evs = wd.events();
        let stall_at = evs
            .iter()
            .position(|e| matches!(e, HealthEvent::Stall { .. }));
        let recovered_after = stall_at.map(|i| {
            evs.iter()
                .skip(i)
                .any(|e| matches!(e, HealthEvent::Recovered { .. }))
        });
        if recovered_after == Some(true) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no stall→recovery observed (seed {seed}): {:?}",
            evs.iter().map(|e| e.kind()).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The stall fired while the run was still in flight.
    recorder.pump();
    let end_ns = recorder.summaries()[0].ended_ns.expect("run ended");
    let stall_t = wd
        .events()
        .iter()
        .find_map(|e| match e {
            HealthEvent::Stall { t_ns, .. } => Some(*t_ns),
            _ => None,
        })
        .expect("stall event present");
    assert!(
        stall_t < end_ns,
        "stall detected before resolution (stall at {stall_t}, end at {end_ns})"
    );
    assert_eq!(wd.verdict(), HealthVerdict::Healthy, "recovered at the end");
}

/// The watchdog's deadline trips cooperative cancellation, and the
/// failed run auto-dumps its black box.
#[test]
fn watchdog_deadline_cancels_and_dumps_blackbox() {
    let seed = seed();
    let dir = std::env::temp_dir().join(format!("hf_health_bb_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let recorder = FlightRecorder::shared();
    recorder.set_blackbox_dir(Some(dir.clone()));
    let ex = Executor::builder(2, 1).observer(recorder.clone()).build();
    ex.gpu_runtime().set_fault_plan(Some(
        FaultPlan::seeded(seed)
            .stall(FaultSite::Kernel, Duration::from_millis(600), 1.0)
            .max_stalls(1),
    ));
    let wd = Watchdog::spawn(
        recorder.clone(),
        WatchdogConfig {
            poll: Duration::from_millis(5),
            warn_after: Duration::from_millis(30),
            stall_after: Duration::from_millis(60),
            hang_after: Duration::from_secs(3600),
            cancel_after: Some(Duration::from_millis(150)),
            ..WatchdogConfig::default()
        },
    );
    let bufs = vec![HostVec::from_vec(vec![1i32; 64])];
    let g = doubling_graph("deadline_lane", &bufs);
    let fut = ex.run(&g);
    let run_id = fut.run_id();
    wd.arm(&fut, "deadline_lane");
    let res = fut
        .wait_timeout(DEADLINE)
        .unwrap_or_else(|| panic!("deadline run hung (seed {seed})"));
    assert!(
        matches!(res, Err(HfError::Cancelled)),
        "watchdog deadline cancels the wedged run (seed {seed}): {res:?}"
    );
    assert!(
        wd.events()
            .iter()
            .any(|e| matches!(e, HealthEvent::DeadlineCancelled { .. })),
        "deadline cancellation is a structured event (seed {seed})"
    );
    recorder.pump();
    let path = dir.join(format!("blackbox_run{run_id}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("black box not written at {path:?}: {e}"));
    let parsed = serde_json::from_str(&text).expect("valid black-box JSON");
    assert_eq!(parsed.get("ok").and_then(|o| o.as_bool()), Some(false));
    assert!(parsed
        .get("events")
        .and_then(|e| e.as_array())
        .map(|a| !a.is_empty())
        .unwrap_or(false));
    let _ = std::fs::remove_dir_all(&dir);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect health endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out.split_once("\r\n\r\n").expect("well-formed").1.to_string()
}

/// Acceptance criterion: `hf_task_queue_delay_nanos` p99 is scrapeable
/// from the live `/metrics` endpoint with populated `_bucket` lines, and
/// the stall→recovery transition is visible in `/health`.
#[test]
fn live_endpoint_serves_attribution_and_watchdog_verdict() {
    let seed = seed();
    let recorder = FlightRecorder::shared();
    let ex = Arc::new(Executor::builder(2, 1).observer(recorder.clone()).build());
    let wd = Watchdog::spawn(
        recorder.clone(),
        WatchdogConfig {
            poll: Duration::from_millis(5),
            warn_after: Duration::from_millis(40),
            stall_after: Duration::from_millis(120),
            hang_after: Duration::from_secs(3600),
            ..WatchdogConfig::default()
        },
    );
    let hub = HealthHub::new(recorder.clone());
    hub.set_watchdog(wd.clone());
    let ex_for_scrape = Arc::clone(&ex);
    hub.add_collector(move |reg| {
        reg.collect_executor(&ex_for_scrape.snapshot());
    });
    let server = HealthServer::bind("127.0.0.1:0", hub).expect("bind endpoint");
    let addr = server.addr();

    // Phase 1: healthy workload populates the histograms.
    let bufs = vec![HostVec::from_vec(vec![1i32; 64])];
    for _ in 0..5 {
        let g = doubling_graph("healthy", &bufs);
        ex.run(&g).wait_timeout(DEADLINE).expect("no hang").expect("ok");
    }

    // Phase 2: an injected stall trips the watchdog mid-run.
    ex.gpu_runtime().set_fault_plan(Some(
        FaultPlan::seeded(seed)
            .stall(FaultSite::Kernel, Duration::from_millis(400), 1.0)
            .max_stalls(1),
    ));
    let g = doubling_graph("stalling", &bufs);
    let fut = ex.run(&g);
    wd.arm(&fut, "stalling");
    // Scrape while wedged: /health must show the degraded verdict.
    let mut saw_degraded = false;
    let t0 = std::time::Instant::now();
    while !fut.is_done() && t0.elapsed() < DEADLINE {
        let body = http_get(addr, "/health");
        let v = serde_json::from_str(&body).expect("valid /health JSON");
        let verdict = v.get("verdict").and_then(|x| x.as_str()).unwrap_or("");
        if verdict == "warn" || verdict == "stall" {
            saw_degraded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    fut.wait_timeout(DEADLINE).expect("no hang").expect("ok");
    assert!(
        saw_degraded,
        "live /health showed the stall while the run was wedged (seed {seed})"
    );

    // After recovery: /health events carry stall→recovered.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let body = http_get(addr, "/health");
        let v = serde_json::from_str(&body).expect("valid /health JSON");
        let kinds: Vec<String> = v
            .get("events")
            .and_then(|e| e.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|e| e.get("kind").and_then(|k| k.as_str()).map(String::from))
                    .collect()
            })
            .unwrap_or_default();
        let healthy = v.get("verdict").and_then(|x| x.as_str()) == Some("healthy");
        if healthy && kinds.iter().any(|k| k == "stall") && kinds.iter().any(|k| k == "recovered")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no stall→recovered in /health (seed {seed}): {kinds:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // /metrics: populated _bucket lines and a scrapeable p99.
    let metrics = http_get(addr, "/metrics");
    assert!(
        metrics.contains("hf_task_queue_delay_nanos_bucket{le=\""),
        "queue-delay buckets exposed"
    );
    assert!(metrics.contains("hf_task_queue_delay_nanos_bucket{le=\"+Inf\"}"));
    assert!(metrics.contains("hf_task_exec_nanos_bucket"));
    assert!(metrics.contains("hf_run_latency_nanos_count"));
    assert!(metrics.contains("hf_executor_inflight_tasks"));
    assert!(metrics.contains("hf_executor_queue_depth"));
    let populated = metrics.lines().any(|l| {
        l.starts_with("hf_task_queue_delay_nanos_bucket")
            && l.split_whitespace()
                .nth(1)
                .and_then(|v| v.parse::<u64>().ok())
                .map(|n| n > 0)
                .unwrap_or(false)
    });
    assert!(populated, "bucket lines carry counts");
    let (qd, _, _) = recorder.latency_histograms();
    assert!(qd.quantile(0.99) > 0.0, "p99 computable from scraped data");

    // /runs: recent flight summaries as JSON.
    let runs = http_get(addr, "/runs");
    let v = serde_json::from_str(&runs).expect("valid /runs JSON");
    let arr = v.as_array().expect("array of run summaries");
    assert!(arr.len() >= 2, "healthy + stalled runs summarized");
    assert!(arr
        .iter()
        .all(|r| r.get("run_id").and_then(|x| x.as_u64()).unwrap_or(0) > 0));
}

/// A disabled recorder records nothing even while installed, and the
/// executor skips lifecycle emission entirely (fast-path gate).
#[test]
fn disabled_recorder_stays_silent() {
    let recorder = FlightRecorder::shared();
    recorder.set_enabled(false);
    let ex = Executor::builder(2, 1).observer(recorder.clone()).build();
    let bufs = vec![HostVec::from_vec(vec![1i32; 64])];
    let g = doubling_graph("silent", &bufs);
    ex.run(&g).wait().expect("runs");
    recorder.pump();
    assert_eq!(recorder.events_recorded(), 0);
    assert_eq!(recorder.events_dropped(), 0);
    assert!(recorder.summaries().is_empty());
}
