//! A miniature command-line STA tool over the timing substrate — read a
//! `.bench` netlist (or synthesize one), run the Heteroflow-parallel
//! sweep, and print an OpenTimer-style report.
//!
//! Run:
//!   cargo run --release --example sta_tool                 # synthetic circuit
//!   cargo run --release --example sta_tool -- my.bench 0.5 # file + clock (ns)

use heteroflow::prelude::*;
use heteroflow::timing::parallel::run_sta_parallel;
use heteroflow::timing::report::{report_timing, ReportConfig};
use heteroflow::timing::views::make_views;
use heteroflow::timing::{parse_bench, write_bench, Circuit, CircuitConfig};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable netlist");
            println!("loaded {path}");
            parse_bench(&text).expect("valid .bench")
        }
        None => {
            let c = Circuit::synthesize(&CircuitConfig {
                num_gates: 5_000,
                ..Default::default()
            });
            // Show off the writer too: serialize a fragment.
            let text = write_bench(&c);
            println!(
                "synthesized circuit ({} gates); first lines of its .bench form:",
                c.num_gates()
            );
            for l in text.lines().take(4) {
                println!("  {l}");
            }
            c
        }
    };
    let clock: f32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.5);

    let mut view = make_views(1, clock)[0].clone();
    view.mode.clock_period = clock;

    // Run the sweep in parallel on a Heteroflow executor and
    // cross-check it against the sequential oracle.
    let ex = Executor::new(4, 0);
    let circuit = Arc::new(circuit);
    let t0 = std::time::Instant::now();
    let par = run_sta_parallel(&ex, &circuit, &view, 512).expect("parallel sweep runs");
    let t_par = t0.elapsed();
    let t1 = std::time::Instant::now();
    let seq = heteroflow::timing::run_sta(&circuit, &view);
    let t_seq = t1.elapsed();
    assert!((par.wns - seq.wns).abs() < 1e-4, "sweeps disagree");
    println!(
        "parallel sweep {t_par:.2?} vs sequential {t_seq:.2?}  (WNS agrees: {:.4} ns)\n",
        par.wns
    );

    print!(
        "{}",
        report_timing(
            &circuit,
            &view,
            &ReportConfig {
                num_paths: 5,
                expand_paths: circuit.num_gates() < 10_000,
                ..Default::default()
            }
        )
    );
}
