//! Device placement — Algorithm 1 of the paper.
//!
//! "The key idea is to group each kernel with its source pull tasks and
//! then pack each unique group to a GPU bin with an optimized cost. By
//! default, we minimize the load per GPU bins for maximal concurrency but
//! can expose this strategy to a pluggable interface for custom cost
//! metrics" (§III-C).
//!
//! Grouping uses union-find over the kernel→source-pull relation; packing
//! assigns each group root to a GPU bin. Push tasks inherit the device of
//! their source pull task (their stream "is guaranteed to live in the same
//! GPU context as the source pull task", Listing 6 discussion).

use crate::costmodel::TaskCosts;
use crate::error::HfError;
use crate::graph::{FrozenGraph, TaskKind, Work};
use crate::inspect::GraphInfo;
use hf_gpu::CostModel;
use hf_sync::UnionFind;

/// A placement-relevant view of a graph. Implemented by the executable
/// [`FrozenGraph`] and by the structural [`GraphInfo`] snapshot, so the
/// identical Algorithm 1 runs both inside the executor and inside the
/// `hf-sim` performance model.
pub trait PlacementView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Task kind of node `i`.
    fn kind_of(&self, i: usize) -> TaskKind;
    /// Source pull tasks of kernel `i` (empty otherwise).
    fn kernel_sources(&self, i: usize) -> Vec<usize>;
    /// Source pull task of push `i`.
    fn push_source(&self, i: usize) -> Option<usize>;
    /// Node name (for error messages).
    fn name_of(&self, i: usize) -> String;
    /// Modeled device-time weight of node `i` for bin packing.
    fn weight_of(&self, i: usize, cost: &CostModel) -> f64;
    /// Bytes node `i` would move (pulls/pushes; 0 otherwise). Feeds the
    /// locality policy's estimate of transfer bytes saved by warm
    /// placement. Views without byte information may keep the default.
    fn bytes_of(&self, i: usize) -> usize {
        let _ = i;
        0
    }
    /// Device currently holding a warm, version-valid copy of pull `i`'s
    /// buffer, if any. The locality policy zeroes that edge's transfer
    /// cost on this device so placement gravitates to where the
    /// transfer-elision layer will actually fire. Structural views with
    /// no runtime residency keep the default (`None`).
    fn warm_device(&self, i: usize) -> Option<u32> {
        let _ = i;
        None
    }
}

impl PlacementView for FrozenGraph {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn kind_of(&self, i: usize) -> TaskKind {
        self.nodes[i].work.kind()
    }

    fn kernel_sources(&self, i: usize) -> Vec<usize> {
        match &self.nodes[i].work {
            Work::Kernel { sources, .. } => sources.clone(),
            _ => Vec::new(),
        }
    }

    fn push_source(&self, i: usize) -> Option<usize> {
        match &self.nodes[i].work {
            Work::Push { source_pull, .. } => Some(*source_pull),
            _ => None,
        }
    }

    fn name_of(&self, i: usize) -> String {
        self.nodes[i].name.clone()
    }

    fn weight_of(&self, i: usize, cost: &CostModel) -> f64 {
        node_weight(self, i, cost)
    }

    fn bytes_of(&self, i: usize) -> usize {
        match &self.nodes[i].work {
            Work::Pull { source } => source.byte_len(),
            Work::Push { source_pull, .. } => match &self.nodes[*source_pull].work {
                Work::Pull { source } => source.byte_len(),
                _ => 0,
            },
            _ => 0,
        }
    }

    fn warm_device(&self, i: usize) -> Option<u32> {
        match &self.nodes[i].work {
            Work::Pull { source } => {
                let st = self.nodes[i].pull_state.lock();
                // Warm = a live device buffer holding exactly the
                // source's current version. A mutated host buffer bumps
                // the version, so stale residency never attracts.
                let host_ver = source.version()?;
                if st.resident_version == Some(host_ver) {
                    st.ptr.map(|p| p.device)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl PlacementView for GraphInfo {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn kind_of(&self, i: usize) -> TaskKind {
        self.nodes[i].kind
    }

    fn kernel_sources(&self, i: usize) -> Vec<usize> {
        self.nodes[i].sources.clone()
    }

    fn push_source(&self, i: usize) -> Option<usize> {
        self.nodes[i].source_pull
    }

    fn name_of(&self, i: usize) -> String {
        self.nodes[i].name.clone()
    }

    fn weight_of(&self, i: usize, cost: &CostModel) -> f64 {
        let n = &self.nodes[i];
        match n.kind {
            TaskKind::Pull => cost.h2d(n.bytes).as_nanos() as f64,
            TaskKind::Kernel => cost.kernel(n.effective_work_units()).as_nanos() as f64,
            _ => 0.0,
        }
    }

    fn bytes_of(&self, i: usize) -> usize {
        self.nodes[i].bytes
    }
}

/// Strategy for packing task groups onto GPU bins. `BalancedLoad` is the
/// paper's default; the others exist as ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum PlacementPolicy {
    /// Longest-processing-time greedy: heaviest group to the least-loaded
    /// bin (minimizes the maximum per-GPU load).
    #[default]
    BalancedLoad,
    /// Groups assigned cyclically in discovery order, ignoring weight.
    RoundRobin,
    /// Uniformly random bin per group (deterministic given the seed).
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// Cost-model-driven, residency-warm packing: groups are weighed in
    /// modeled seconds (analytic costs refined by EWMA feedback when a
    /// [`TaskCosts`] snapshot is supplied), and a device already holding
    /// a warm, version-valid copy of a pull's buffer has that edge's
    /// transfer cost zeroed — resubmissions gravitate to where transfer
    /// elision actually fires instead of chasing queue depth alone.
    Locality,
}


/// Result of device placement for one topology.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Device per node; `None` for host/placeholder tasks.
    pub device_of: Vec<Option<u32>>,
    /// Number of kernel/pull groups found.
    pub num_groups: usize,
    /// Modeled load per GPU bin after packing, including any initial
    /// loads passed to [`device_placement_biased`] (nanoseconds).
    pub loads: Vec<f64>,
    /// Groups the locality policy placed on a device already holding a
    /// warm copy of at least one of their pulls (0 for other policies).
    pub warm_hits: u64,
    /// Transfer bytes the locality policy expects warm placement to save
    /// via elision (0 for other policies).
    pub est_bytes_saved: u64,
}

impl Placement {
    /// Max bin load over *mean* bin load, weighted by modeled cost —
    /// 1.0 is perfectly balanced, `num_bins` is everything on one bin.
    /// Returns 1.0 for an empty placement.
    ///
    /// (The previous max/min ratio reported a misleading 1.0 whenever
    /// any bin was empty — exactly the most imbalanced outcome — because
    /// a zero minimum has no meaningful ratio. Max/mean stays defined
    /// and monotone in the heaviest bin's modeled overload.)
    pub fn imbalance(&self) -> f64 {
        if self.loads.is_empty() {
            return 1.0;
        }
        let max = self.loads.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.loads.iter().sum::<f64>() / self.loads.len() as f64;
        if mean <= 0.0 || !mean.is_finite() {
            1.0
        } else {
            max / mean
        }
    }
}

/// Modeled weight of one node for bin packing, in nanoseconds of device
/// time.
fn node_weight(graph: &FrozenGraph, id: usize, cost: &CostModel) -> f64 {
    let node = &graph.nodes[id];
    match &node.work {
        Work::Pull { source } => cost.h2d(source.byte_len()).as_nanos() as f64,
        Work::Kernel { .. } => {
            let units = node.work_units.max(node.cfg.total_threads() as f64);
            cost.kernel(units).as_nanos() as f64
        }
        _ => 0.0,
    }
}

/// Weight of one node with EWMA refinement: the cost database's observed
/// estimate when one exists, the analytic model otherwise.
fn refined_weight<G: PlacementView + ?Sized>(
    graph: &G,
    id: usize,
    cost: &CostModel,
    refined: Option<&TaskCosts>,
) -> f64 {
    refined
        .and_then(|r| r.get(&graph.name_of(id)))
        .unwrap_or_else(|| graph.weight_of(id, cost))
}

/// Runs Algorithm 1 (*DevicePlacement*) on any [`PlacementView`].
///
/// Returns [`HfError::NoGpus`] if the graph contains GPU tasks but
/// `num_gpus == 0`.
pub fn device_placement<G: PlacementView + ?Sized>(
    graph: &G,
    num_gpus: u32,
    policy: PlacementPolicy,
    cost: &CostModel,
) -> Result<Placement, HfError> {
    device_placement_biased(graph, num_gpus, policy, cost, &[])
}

/// [`device_placement`] with pre-existing per-device load (nanoseconds).
///
/// A live executor runs many topologies; biasing each topology's packing
/// with the load already placed on each GPU keeps devices balanced
/// *across* graphs, not just within one. The executor feeds its
/// cumulative loads here. An empty slice means no initial load.
pub fn device_placement_biased<G: PlacementView + ?Sized>(
    graph: &G,
    num_gpus: u32,
    policy: PlacementPolicy,
    cost: &CostModel,
    initial_loads: &[f64],
) -> Result<Placement, HfError> {
    device_placement_ext(graph, num_gpus, policy, cost, initial_loads, None)
}

/// [`device_placement_biased`] with an optional per-task refined cost
/// snapshot (EWMA feedback from executed epochs, see
/// [`crate::costmodel::CostDb`]). Refined costs replace the analytic
/// weights wherever an estimate exists; the locality policy additionally
/// consults [`PlacementView::warm_device`] to zero transfer costs on
/// devices already holding current data.
pub fn device_placement_ext<G: PlacementView + ?Sized>(
    graph: &G,
    num_gpus: u32,
    policy: PlacementPolicy,
    cost: &CostModel,
    initial_loads: &[f64],
    refined: Option<&TaskCosts>,
) -> Result<Placement, HfError> {
    let n = graph.num_nodes();
    let mut device_of: Vec<Option<u32>> = vec![None; n];
    let mut loads = vec![0.0f64; num_gpus as usize];
    for (l, &init) in loads.iter_mut().zip(initial_loads) {
        *l = init;
    }
    let mut warm_hits = 0u64;
    let mut est_bytes_saved = 0u64;

    // Reject GPU work with no GPUs.
    if num_gpus == 0 {
        if let Some(id) = (0..n).find(|&i| {
            matches!(
                graph.kind_of(i),
                TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
            )
        }) {
            return Err(HfError::NoGpus {
                task: graph.name_of(id),
            });
        }
        return Ok(Placement {
            device_of,
            num_groups: 0,
            loads,
            warm_hits: 0,
            est_bytes_saved: 0,
        });
    }

    // Lines 1-7: union each kernel with its source pull tasks.
    let mut uf = UnionFind::new(n);
    for id in 0..n {
        if graph.kind_of(id) == TaskKind::Kernel {
            for p in graph.kernel_sources(id) {
                uf.union(id, p);
            }
        }
    }

    // Lines 8-14: pack each unique group root onto a GPU bin. Collect
    // groups first so the balanced policy can sort by weight.
    let mut group_weight: std::collections::HashMap<usize, f64> = Default::default();
    let mut group_members: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for id in 0..n {
        let k = graph.kind_of(id);
        if k == TaskKind::Kernel || k == TaskKind::Pull {
            let root = uf.find(id);
            *group_weight.entry(root).or_insert(0.0) += refined_weight(graph, id, cost, refined);
            group_members.entry(root).or_default().push(id);
        }
    }

    let mut groups: Vec<(usize, f64)> = group_weight.into_iter().collect();
    // Deterministic order regardless of hash iteration.
    groups.sort_by_key(|&(root, _)| root);

    match policy {
        PlacementPolicy::BalancedLoad => {
            // LPT greedy: heaviest first onto the least-loaded bin.
            groups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
            for (root, w) in groups {
                let bin = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                    .map(|(i, _)| i)
                    .expect("num_gpus > 0");
                loads[bin] += w;
                for &m in &group_members[&root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
        PlacementPolicy::Locality => {
            // LPT order by residency-blind weight, then pick per group
            // the bin minimizing *effective* cost: current load plus the
            // group's weight minus whatever transfers the bin's warm
            // buffers would elide. A warm device thus strictly wins load
            // ties, and only loses when the load gap exceeds the copy
            // cost it saves.
            groups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
            for (root, w) in groups {
                let mut save = vec![0.0f64; num_gpus as usize];
                let mut saved_bytes = vec![0u64; num_gpus as usize];
                for &m in &group_members[&root] {
                    if graph.kind_of(m) == TaskKind::Pull {
                        if let Some(d) = graph.warm_device(m) {
                            if let Some(s) = save.get_mut(d as usize) {
                                *s += refined_weight(graph, m, cost, refined);
                                saved_bytes[d as usize] += graph.bytes_of(m) as u64;
                            }
                        }
                    }
                }
                let bin = (0..num_gpus as usize)
                    .min_by(|&a, &b| {
                        (loads[a] + w - save[a])
                            .partial_cmp(&(loads[b] + w - save[b]))
                            .expect("loads are finite")
                    })
                    .expect("num_gpus > 0");
                loads[bin] += (w - save[bin]).max(0.0);
                if save[bin] > 0.0 {
                    warm_hits += 1;
                    est_bytes_saved += saved_bytes[bin];
                }
                for &m in &group_members[&root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
        PlacementPolicy::RoundRobin => {
            for (gi, (root, w)) in groups.iter().enumerate() {
                let bin = gi % num_gpus as usize;
                loads[bin] += w;
                for &m in &group_members[root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
        PlacementPolicy::Random { seed } => {
            // splitmix64 stream; deterministic and dependency-free.
            let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            for (root, w) in &groups {
                let bin = (next() % num_gpus as u64) as usize;
                loads[bin] += w;
                for &m in &group_members[root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
    }

    // Push tasks inherit the device of their source pull.
    for id in 0..n {
        if let Some(src) = graph.push_source(id) {
            device_of[id] = device_of[src];
        }
    }

    let num_groups = group_members.len();
    Ok(Placement {
        device_of,
        num_groups,
        loads,
        warm_hits,
        est_bytes_saved,
    })
}

/// Re-placement after device loss: keeps every group whose device is still
/// alive where it is, and LPT-packs the stranded groups (device lost, or
/// never placed when `old_device_of` is empty) onto the surviving bins.
///
/// `old_device_of` is the current `device_of` (may be empty to place
/// everything fresh against the alive set), and `lost[d]` marks device `d`
/// as dead. Returns [`HfError::NoGpus`] if GPU tasks exist but every
/// device is lost.
pub fn failover_placement<G: PlacementView + ?Sized>(
    graph: &G,
    old_device_of: &[Option<u32>],
    lost: &[bool],
    cost: &CostModel,
) -> Result<Placement, HfError> {
    failover_placement_ext(graph, old_device_of, lost, cost, PlacementPolicy::BalancedLoad, None)
}

/// [`failover_placement`] reusing the locality cost model: under
/// [`PlacementPolicy::Locality`], stranded groups are re-packed onto the
/// surviving bins with EWMA-refined weights and warm-residency savings
/// (restricted to alive devices — a lost device's warmth died with its
/// arena). Other policies keep the plain LPT re-pack.
pub fn failover_placement_ext<G: PlacementView + ?Sized>(
    graph: &G,
    old_device_of: &[Option<u32>],
    lost: &[bool],
    cost: &CostModel,
    policy: PlacementPolicy,
    refined: Option<&TaskCosts>,
) -> Result<Placement, HfError> {
    let n = graph.num_nodes();
    let num_gpus = lost.len() as u32;
    let alive: Vec<usize> = (0..lost.len()).filter(|&d| !lost[d]).collect();
    let mut device_of: Vec<Option<u32>> = vec![None; n];
    let mut loads = vec![0.0f64; num_gpus as usize];

    if alive.is_empty() {
        if let Some(id) = (0..n).find(|&i| {
            matches!(
                graph.kind_of(i),
                TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
            )
        }) {
            return Err(HfError::NoGpus {
                task: graph.name_of(id),
            });
        }
        return Ok(Placement {
            device_of,
            num_groups: 0,
            loads,
            warm_hits: 0,
            est_bytes_saved: 0,
        });
    }

    // Same grouping as Algorithm 1: union kernels with their source pulls.
    let mut uf = UnionFind::new(n);
    for id in 0..n {
        if graph.kind_of(id) == TaskKind::Kernel {
            for p in graph.kernel_sources(id) {
                uf.union(id, p);
            }
        }
    }
    let mut group_weight: std::collections::HashMap<usize, f64> = Default::default();
    let mut group_members: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for id in 0..n {
        let k = graph.kind_of(id);
        if k == TaskKind::Kernel || k == TaskKind::Pull {
            let root = uf.find(id);
            *group_weight.entry(root).or_insert(0.0) += refined_weight(graph, id, cost, refined);
            group_members.entry(root).or_default().push(id);
        }
    }
    let num_groups = group_members.len();
    let mut warm_hits = 0u64;
    let mut est_bytes_saved = 0u64;

    // Partition: groups on an alive device stay put; the rest re-pack.
    let mut stranded: Vec<(usize, f64)> = Vec::new();
    let mut groups: Vec<(usize, f64)> = group_weight.into_iter().collect();
    groups.sort_by_key(|&(root, _)| root);
    for (root, w) in groups {
        let old = group_members[&root]
            .iter()
            .find_map(|&m| old_device_of.get(m).copied().flatten());
        match old {
            Some(d) if !lost.get(d as usize).copied().unwrap_or(true) => {
                loads[d as usize] += w;
                for &m in &group_members[&root] {
                    device_of[m] = Some(d);
                }
            }
            _ => stranded.push((root, w)),
        }
    }

    // LPT greedy over the alive bins only; under the locality policy the
    // bin choice subtracts warm-residency savings on alive devices.
    stranded.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
    let locality = matches!(policy, PlacementPolicy::Locality);
    for (root, w) in stranded {
        let mut save = vec![0.0f64; num_gpus as usize];
        let mut saved_bytes = vec![0u64; num_gpus as usize];
        if locality {
            for &m in &group_members[&root] {
                if graph.kind_of(m) == TaskKind::Pull {
                    if let Some(d) = graph.warm_device(m) {
                        let d = d as usize;
                        if d < save.len() && !lost[d] {
                            save[d] += refined_weight(graph, m, cost, refined);
                            saved_bytes[d] += graph.bytes_of(m) as u64;
                        }
                    }
                }
            }
        }
        let bin = *alive
            .iter()
            .min_by(|&&a, &&b| {
                (loads[a] + w - save[a])
                    .partial_cmp(&(loads[b] + w - save[b]))
                    .expect("loads are finite")
            })
            .expect("alive is non-empty");
        loads[bin] += (w - save[bin]).max(0.0);
        if save[bin] > 0.0 {
            warm_hits += 1;
            est_bytes_saved += saved_bytes[bin];
        }
        for &m in &group_members[&root] {
            device_of[m] = Some(bin as u32);
        }
    }

    // Push tasks inherit the device of their source pull.
    for id in 0..n {
        if let Some(src) = graph.push_source(id) {
            device_of[id] = device_of[src];
        }
    }

    Ok(Placement {
        device_of,
        num_groups,
        loads,
        warm_hits,
        est_bytes_saved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;

    /// Two kernels sharing a pull task must co-locate with it; an
    /// unrelated pull/kernel pair forms a second group.
    #[test]
    fn kernels_group_with_their_pulls() {
        let g = Heteroflow::new("grp");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 1024]);
        let y: HostVec<i32> = HostVec::from_vec(vec![0; 1024]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &y);
        let k1 = g.kernel("k1", &[&px], |_, _| {});
        let k2 = g.kernel("k2", &[&px], |_, _| {});
        let k3 = g.kernel("k3", &[&py], |_, _| {});
        px.precede(&k1).precede(&k2);
        py.precede(&k3);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 2);
        let d_px = p.device_of[px.id()].unwrap();
        assert_eq!(p.device_of[k1.id()], Some(d_px));
        assert_eq!(p.device_of[k2.id()], Some(d_px));
        let d_py = p.device_of[py.id()].unwrap();
        assert_eq!(p.device_of[k3.id()], Some(d_py));
        // Two groups on 4 GPUs must use two distinct devices (balanced).
        assert_ne!(d_px, d_py);
    }

    /// A kernel bridging two pulls merges all three into one group.
    #[test]
    fn shared_kernel_merges_groups() {
        let g = Heteroflow::new("merge");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &x);
        let k = g.kernel("k", &[&px, &py], |_, _| {});
        px.precede(&k);
        py.precede(&k);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 1);
        let d = p.device_of[k.id()];
        assert_eq!(p.device_of[px.id()], d);
        assert_eq!(p.device_of[py.id()], d);
    }

    #[test]
    fn push_inherits_pull_device() {
        let g = Heteroflow::new("push");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let px = g.pull("px", &x);
        let s = g.push("push_x", &px, &x);
        px.precede(&s);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 2, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.device_of[s.id()], p.device_of[px.id()]);
    }

    #[test]
    fn host_tasks_have_no_device() {
        let g = Heteroflow::new("h");
        let h = g.host("h", || {});
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 2, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.device_of[h.id()], None);
        assert_eq!(p.num_groups, 0);
    }

    #[test]
    fn gpu_task_with_zero_gpus_errors() {
        let g = Heteroflow::new("nogpu");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 4]);
        g.pull("px", &x);
        let f = g.freeze().unwrap();
        assert!(matches!(
            device_placement(&*f, 0, PlacementPolicy::BalancedLoad, &CostModel::default()),
            Err(HfError::NoGpus { .. })
        ));
    }

    #[test]
    fn cpu_only_graph_with_zero_gpus_is_fine() {
        let g = Heteroflow::new("cpu");
        g.host("a", || {});
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 0, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert!(p.device_of.iter().all(|d| d.is_none()));
    }

    /// Balanced packing of many equal groups spreads them evenly.
    #[test]
    fn balanced_load_is_balanced() {
        let g = Heteroflow::new("bal");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        for i in 0..12 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
        }
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 12);
        assert!(p.imbalance() < 1.01, "imbalance {}", p.imbalance());
        // Every device hosts exactly 3 groups' worth of load.
        let per_dev: Vec<usize> = (0..4)
            .map(|d| {
                p.device_of
                    .iter()
                    .filter(|x| **x == Some(d as u32))
                    .count()
            })
            .collect();
        assert_eq!(per_dev, vec![6, 6, 6, 6]); // 3 groups x (pull + kernel)
    }

    /// Random placement is deterministic for a fixed seed.
    #[test]
    fn random_policy_deterministic() {
        let g = Heteroflow::new("rand");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 64]);
        for i in 0..8 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
        }
        let f = g.freeze().unwrap();
        let a = device_placement(&*f, 4, PlacementPolicy::Random { seed: 7 }, &CostModel::default())
            .unwrap();
        let b = device_placement(&*f, 4, PlacementPolicy::Random { seed: 7 }, &CostModel::default())
            .unwrap();
        assert_eq!(a.device_of, b.device_of);
    }

    /// Failover keeps alive groups in place and re-packs stranded ones
    /// onto surviving devices only.
    #[test]
    fn failover_repacks_lost_groups_onto_survivors() {
        let g = Heteroflow::new("fo");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let mut kernels = Vec::new();
        for i in 0..6 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
            kernels.push(k);
        }
        let f = g.freeze().unwrap();
        let cost = CostModel::default();
        let orig = device_placement(&*f, 3, PlacementPolicy::BalancedLoad, &cost).unwrap();
        // Lose device 1.
        let lost = vec![false, true, false];
        let fo = failover_placement(&*f, &orig.device_of, &lost, &cost).unwrap();
        assert_eq!(fo.num_groups, 6);
        for (i, (o, n)) in orig.device_of.iter().zip(&fo.device_of).enumerate() {
            let (Some(o), Some(n)) = (o, n) else { continue };
            assert_ne!(*n, 1, "node {i} still on the lost device");
            if *o != 1 {
                assert_eq!(o, n, "node {i} moved though its device survived");
            }
        }
        // Something was actually stranded and re-homed.
        assert!(orig.device_of.contains(&Some(1)));
    }

    /// Empty `old_device_of` places everything fresh on the alive set.
    #[test]
    fn failover_fresh_placement_avoids_lost_devices() {
        let g = Heteroflow::new("fo2");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 256]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        p.precede(&k);
        k.precede(&s);
        let f = g.freeze().unwrap();
        let fo =
            failover_placement(&*f, &[], &[true, false], &CostModel::default()).unwrap();
        assert_eq!(fo.device_of[p.id()], Some(1));
        assert_eq!(fo.device_of[k.id()], Some(1));
        // Push inherits the pull's (surviving) device.
        assert_eq!(fo.device_of[s.id()], Some(1));
    }

    /// All devices lost with GPU work → structured NoGpus error.
    #[test]
    fn failover_with_no_survivors_errors() {
        let g = Heteroflow::new("fo3");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 16]);
        g.pull("p", &x);
        let f = g.freeze().unwrap();
        assert!(matches!(
            failover_placement(&*f, &[], &[true, true], &CostModel::default()),
            Err(HfError::NoGpus { .. })
        ));
    }

    /// Marks a frozen pull node's device buffer warm: a fake allocation
    /// on `device` holding exactly `version` of the source's bytes.
    fn set_warm(f: &FrozenGraph, id: usize, device: u32, version: u64, bytes: u64) {
        let mut st = f.nodes[id].pull_state.lock();
        st.ptr = Some(hf_gpu::DevicePtr {
            device,
            offset: 0,
            len: bytes,
            capacity: bytes,
        });
        st.resident_version = Some(version);
    }

    /// A warm, version-valid device wins load ties under the locality
    /// policy, and the placement reports the expected savings.
    #[test]
    fn locality_warm_device_wins_ties() {
        let g = Heteroflow::new("warm");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        let y: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &y);
        let f = g.freeze().unwrap();
        // Residency deliberately opposite to the tie-break order (device
        // 0 first): only warm attraction can produce this placement.
        set_warm(&f, px.id(), 1, x.version(), 4096);
        set_warm(&f, py.id(), 0, y.version(), 4096);
        let p = device_placement(&*f, 2, PlacementPolicy::Locality, &CostModel::default())
            .unwrap();
        assert_eq!(p.device_of[px.id()], Some(1));
        assert_eq!(p.device_of[py.id()], Some(0));
        assert_eq!(p.warm_hits, 2);
        assert_eq!(p.est_bytes_saved, 8192);
        // Warm transfers are elided, so they add no modeled load.
        assert!(p.loads.iter().all(|&l| l == 0.0), "loads {:?}", p.loads);
    }

    /// Stale residency (host buffer mutated since the copy) must not
    /// attract placement: the version no longer matches, so the policy
    /// falls back to plain balanced packing.
    #[test]
    fn locality_stale_residency_does_not_attract() {
        let g = Heteroflow::new("stale");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        let y: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &y);
        let f = g.freeze().unwrap();
        set_warm(&f, px.id(), 1, x.version(), 4096);
        set_warm(&f, py.id(), 0, y.version(), 4096);
        // Mutate both hosts: residency versions are now stale.
        x.write()[0] = 1;
        y.write()[0] = 1;
        let p = device_placement(&*f, 2, PlacementPolicy::Locality, &CostModel::default())
            .unwrap();
        assert_eq!(p.warm_hits, 0);
        assert_eq!(p.est_bytes_saved, 0);
        // Tie-break order reasserts itself: px (first group) on device 0,
        // not its stale device 1.
        assert_eq!(p.device_of[px.id()], Some(0));
        assert_eq!(p.device_of[py.id()], Some(1));
    }

    /// Warm residency is only worth its transfer cost: a large load gap
    /// still moves the group off the warm device.
    #[test]
    fn locality_load_gap_overrides_warmth() {
        let g = Heteroflow::new("gap");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let px = g.pull("px", &x);
        let f = g.freeze().unwrap();
        set_warm(&f, px.id(), 0, x.version(), 1024);
        let cost = CostModel::default();
        let w = cost.h2d(1024).as_nanos() as f64;
        // Device 0 is warm but pre-loaded far beyond the copy saving.
        let bias = [w * 10.0, 0.0];
        let p = device_placement_ext(
            &*f,
            2,
            PlacementPolicy::Locality,
            &cost,
            &bias,
            None,
        )
        .unwrap();
        assert_eq!(p.device_of[px.id()], Some(1));
        assert_eq!(p.warm_hits, 0);
    }

    /// EWMA-refined costs replace analytic weights in the packing.
    #[test]
    fn refined_costs_reweigh_groups() {
        let g = Heteroflow::new("refined");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let mut pulls = Vec::new();
        for i in 0..3 {
            pulls.push(g.pull(&format!("p{i}"), &x));
        }
        let f = g.freeze().unwrap();
        let cost = CostModel::default();
        let db = crate::costmodel::CostDb::new();
        // p0 is observed to be 10x heavier than the analytic estimate;
        // LPT must isolate it and pair the two light pulls.
        let analytic = cost.h2d(1024).as_nanos() as f64;
        db.observe("refined", "p0", analytic * 10.0);
        let snap = db.snapshot_for("refined");
        let p = device_placement_ext(
            &*f,
            2,
            PlacementPolicy::BalancedLoad,
            &cost,
            &[],
            Some(&snap),
        )
        .unwrap();
        let d0 = p.device_of[pulls[0].id()].unwrap();
        assert_eq!(p.device_of[pulls[1].id()], p.device_of[pulls[2].id()]);
        assert_ne!(p.device_of[pulls[1].id()], Some(d0));
    }

    /// Failover under the locality policy re-homes a stranded group onto
    /// the alive device already holding its data warm.
    #[test]
    fn failover_locality_prefers_warm_survivor() {
        let g = Heteroflow::new("fw");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 2048]);
        let px = g.pull("px", &x);
        let f = g.freeze().unwrap();
        // Warm on device 2; previously placed on device 0, now lost.
        set_warm(&f, px.id(), 2, x.version(), 2048);
        let old = vec![Some(0)];
        let lost = vec![true, false, false];
        let cost = CostModel::default();
        let balanced =
            failover_placement(&*f, &old, &lost, &cost).unwrap();
        // Plain LPT picks the first alive bin (device 1).
        assert_eq!(balanced.device_of[px.id()], Some(1));
        let locality = failover_placement_ext(
            &*f,
            &old,
            &lost,
            &cost,
            PlacementPolicy::Locality,
            None,
        )
        .unwrap();
        assert_eq!(locality.device_of[px.id()], Some(2));
        assert_eq!(locality.warm_hits, 1);
        assert_eq!(locality.est_bytes_saved, 2048);
    }

    /// The cost-weighted imbalance metric: max over mean, defined even
    /// with empty bins (the old max/min ratio reported a misleading 1.0
    /// whenever a bin was empty).
    #[test]
    fn imbalance_is_max_over_mean() {
        let p = Placement {
            device_of: Vec::new(),
            num_groups: 1,
            loads: vec![2.0, 0.0],
            warm_hits: 0,
            est_bytes_saved: 0,
        };
        assert!((p.imbalance() - 2.0).abs() < 1e-12);
        let empty = Placement {
            device_of: Vec::new(),
            num_groups: 0,
            loads: Vec::new(),
            warm_hits: 0,
            est_bytes_saved: 0,
        };
        assert_eq!(empty.imbalance(), 1.0);
        let balanced = Placement {
            device_of: Vec::new(),
            num_groups: 4,
            loads: vec![3.0, 3.0, 3.0],
            warm_hits: 0,
            est_bytes_saved: 0,
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_robin_cycles() {
        let g = Heteroflow::new("rr");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 64]);
        let mut pulls = Vec::new();
        for i in 0..6 {
            pulls.push(g.pull(&format!("p{i}"), &x));
        }
        let f = g.freeze().unwrap();
        let p =
            device_placement(&*f, 3, PlacementPolicy::RoundRobin, &CostModel::default()).unwrap();
        let devs: Vec<u32> = pulls.iter().map(|t| p.device_of[t.id()].unwrap()).collect();
        assert_eq!(devs, vec![0, 1, 2, 0, 1, 2]);
    }
}
