//! # Heteroflow (Rust reproduction)
//!
//! A concurrent CPU-GPU task programming system, reproducing *Concurrent
//! CPU-GPU Task Programming using Modern C++* (Huang & Lin, IPPS 2022) in
//! Rust. This facade crate re-exports the workspace:
//!
//! * [`core`](hf_core) — task graphs, typed task handles, the
//!   work-stealing executor, and the device-placement scheduler.
//! * [`gpu`](hf_gpu) — the software GPU substrate (devices, streams,
//!   events, buddy-allocator memory pools, kernel launches).
//! * [`sync`](hf_sync) — the lock-free substrate (Chase–Lev deque,
//!   eventcount notifier, union-find).
//! * [`sim`](hf_sim) — the discrete-event performance model used to
//!   regenerate the paper's scaling figures.
//! * [`telemetry`](hf_telemetry) — unified observability: metrics
//!   registry (Prometheus/JSON), merged CPU-GPU Perfetto traces, and the
//!   span-based critical-path profiler.
//! * [`timing`](hf_timing) — the VLSI static-timing-analysis application
//!   (§IV-A).
//! * [`place`](hf_place) — the VLSI detailed-placement application
//!   (§IV-B).
//!
//! ## Quickstart
//!
//! ```
//! use heteroflow::prelude::*;
//!
//! let executor = Executor::new(4, 2); // 4 CPU workers, 2 GPUs
//! let g = Heteroflow::new("demo");
//! let data: HostVec<f32> = HostVec::from_vec(vec![1.0; 1024]);
//!
//! let pull = g.pull("pull", &data);
//! let kernel = g.kernel("double", &[&pull], |cfg, args| {
//!     let xs = args.slice_mut::<f32>(0).unwrap();
//!     for i in cfg.threads() {
//!         if i < xs.len() { xs[i] *= 2.0; }
//!     }
//! });
//! kernel.cover(1024, 256);
//! let push = g.push("push", &pull, &data);
//!
//! pull.precede(&kernel);
//! kernel.precede(&push);
//!
//! executor.run(&g).wait().unwrap();
//! assert!(data.read().iter().all(|&v| v == 2.0));
//! ```

pub use hf_core as core;
pub use hf_core::analyze;
pub use hf_gpu as gpu;
pub use hf_place as place;
pub use hf_sim as sim;
pub use hf_sync as sync;
pub use hf_telemetry as telemetry;
pub use hf_timing as timing;

/// The commonly-used types in one import: the hf-core prelude (graph
/// building, executor, retry/failover policies, fault injection, run
/// control) plus the telemetry entry points and the runtime health layer
/// (flight recorder, watchdog, live `/metrics` endpoint).
pub mod prelude {
    pub use hf_core::prelude::*;
    pub use hf_telemetry::{
        critical_path, FlightRecorder, HealthEvent, HealthHub, HealthServer, HealthVerdict,
        MetricsRegistry, Watchdog, WatchdogConfig,
    };
}
