//! Figure 4: required timing-analysis views vs technology node.
//!
//! "The required analysis views in terms of corners and modes increase
//! exponentially as the technology node advances" (§IV-A). Prints the
//! corners/modes/views table and the growth factor per node.
//!
//! Usage: `cargo run -p hf-bench --bin fig4_views [--json]`

use hf_bench::Args;
use hf_timing::view_growth_table;

fn main() {
    let args = Args::parse();
    let table = view_growth_table();

    if args.flag("json") {
        let rows: Vec<serde_json::Value> = table
            .iter()
            .map(|r| {
                serde_json::json!({
                    "node_nm": r.node_nm,
                    "corners": r.corners,
                    "modes": r.modes,
                    "views": r.views(),
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!("=== Fig 4: analysis views vs technology node ===");
    println!("{:>8} {:>9} {:>7} {:>7} {:>9}", "node", "corners", "modes", "views", "growth");
    let mut prev: Option<u32> = None;
    for r in &table {
        let growth = match prev {
            Some(p) => format!("{:.2}x", r.views() as f64 / p as f64),
            None => "-".to_string(),
        };
        println!(
            "{:>6}nm {:>9} {:>7} {:>7} {:>9}",
            r.node_nm,
            r.corners,
            r.modes,
            r.views(),
            growth
        );
        prev = Some(r.views());
    }
    let total_growth = table.last().expect("non-empty").views() as f64
        / table.first().expect("non-empty").views() as f64;
    println!("\n180nm -> 7nm view growth: {total_growth:.0}x (exponential trend)");
}
