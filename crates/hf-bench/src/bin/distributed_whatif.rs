//! Future-work exploration (paper §VI): when does *distributing* the
//! Heteroflow scheduler across nodes pay off?
//!
//! Runs the multi-view timing-correlation workload through the cluster
//! simulator at 1–8 nodes and two network speeds, against the
//! single-node baseline, and reports the break-even points.
//!
//! Usage:
//!   cargo run --release -p hf-bench --bin distributed_whatif
//!     [--views 256] [--gates 10000]

use hf_bench::{print_matrix, Args, Row};
use hf_gpu::SimDuration;
use hf_sim::distributed::{partition_by_affinity, partition_by_work, simulate_cluster, Cluster};
use hf_timing::correlation::{build_correlation_graph, CorrelationConfig};
use hf_timing::views::make_views;
use hf_timing::{Circuit, CircuitConfig};
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let views: usize = args.get("views", 256);
    let gates: usize = args.get("gates", 10_000);

    eprintln!("[dist] building {views}-view workload ...");
    let circuit = Arc::new(Circuit::synthesize(&CircuitConfig {
        num_gates: gates,
        ..Default::default()
    }));
    let cfg = CorrelationConfig::default();
    let built = build_correlation_graph(Arc::clone(&circuit), &make_views(views, 0.4), cfg);
    let info = built.graph.info().expect("acyclic");

    // Calibrate the dominant CPU cost.
    let v0 = &make_views(1, 0.4)[0];
    let (_, gen_cost) = hf_sim::measure(|| {
        hf_timing::k_critical_paths(&circuit, v0, cfg.paths_per_view)
    });
    let host_cost = |id: usize| {
        if info.nodes[id].name.starts_with("gen_v") {
            gen_cost
        } else {
            SimDuration::from_micros(20)
        }
    };

    // Per-node machine: 10 cores, 1 GPU (a modest cluster member).
    let node_counts = [1usize, 2, 4, 8];
    let networks = [
        ("10 GbE", 1.25e9, SimDuration::from_micros(50)),
        ("1 GbE", 0.125e9, SimDuration::from_micros(200)),
    ];

    let mut rows = Vec::new();
    for (net_name, bw, lat) in networks {
        for (part_name, affinity) in [("affinity", true), ("block", false)] {
            let values: Vec<f64> = node_counts
                .iter()
                .map(|&n| {
                    let mut cluster = Cluster::homogeneous(n, 10, 1);
                    cluster.net_bytes_per_sec = bw;
                    cluster.net_latency = lat;
                    let asg = if affinity {
                        partition_by_affinity(&info, n, &cluster.cost, host_cost)
                    } else {
                        partition_by_work(&info, n, &cluster.cost, host_cost)
                    };
                    let r = simulate_cluster(&info, &cluster, &asg, host_cost);
                    r.makespan_secs
                })
                .collect();
            rows.push(Row {
                label: format!("{net_name}, {part_name}"),
                values,
            });
        }
    }
    print_matrix(
        &format!("Distributed what-if: {views}-view correlation, 10-core/1-GPU nodes (runtime [s])"),
        "nodes",
        &node_counts.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
        &rows,
        "",
    );

    for row in &rows {
        let base = row.values[0];
        let best = row
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        println!(
            "{}: best at {} node(s), speedup {:.2}x over one node",
            row.label,
            node_counts[best.0],
            base / best.1
        );
    }
    println!(
        "\nThe per-view pipelines are embarrassingly parallel, so distribution scales until\n\
         the per-node GPU count, not the network, is the binding resource — consistent with\n\
         the paper's plan to distribute the scheduler for view-scale workloads."
    );
}
