//! Multi-tenant submission front-end: one shared executor fleet, many
//! concurrent client graphs, pluggable fair admission.
//!
//! The executor already runs any number of *different* graphs
//! concurrently — topologies share the workers, the lock-free injector,
//! the GPU engines, and the memory pools. What it lacks for serving is
//! *policy*: who gets in next when the fleet is saturated, and how much
//! of the shared hardware any one client may consume. The [`Fleet`]
//! supplies that layer:
//!
//! * **Per-tenant queues.** [`Fleet::submit`] parks the submission in
//!   the tenant's queue and returns a [`RunFuture`] immediately; the
//!   future settles when the run (eventually admitted and executed)
//!   completes. Cancelling a still-queued future settles it with
//!   [`HfError::Cancelled`] without it ever dispatching.
//! * **Pluggable admission** ([`crate::admission`]): FIFO, weighted-fair
//!   (start-time fair queueing over cost-model virtual time), or strict
//!   priority decide which queue's head is admitted whenever an
//!   in-flight slot frees up.
//! * **Quotas and backpressure.** Per-tenant in-flight caps park excess
//!   submissions (backpressure); per-tenant queue bounds return
//!   [`HfError::FleetSaturated`]; a modeled GPU-nanosecond budget
//!   returns [`HfError::QuotaExceeded`]. Retry-policy re-dispatches are
//!   billed to the owning tenant's budget after the run completes.
//! * **Attribution.** Every lifecycle event of a fleet run carries the
//!   [`TenantId`], so flight recorders fold per-tenant queue-delay /
//!   exec / run-latency histograms, and [`Fleet::snapshot`] exposes
//!   per-tenant quota gauges.
//!
//! The fleet has no thread of its own: admission runs on whichever
//! thread submits, completes a run, or waits — the same
//! callback-chaining style the epoch drivers use.

use crate::admission::{AdmissionPolicy, Fifo, LaneView, TenantConfig, TenantId};
use crate::error::HfError;
use crate::executor::Executor;
use crate::graph::Heteroflow;
use crate::stream::{run_driver_ext, DriverExtras};
use crate::topology::{Completion, RunFuture};
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Maximum admitted-but-unfinished submissions across all tenants.
    /// Further submissions park in their tenant queues. Clamped to at
    /// least 1.
    pub max_inflight: usize,
    /// Modeled cost (nanoseconds) assumed per task when the cost model
    /// has no refined estimate for it yet — the virtual-time currency
    /// before observations exist.
    pub default_task_cost_ns: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_inflight: 8,
            default_task_cost_ns: 1_000,
        }
    }
}

/// One parked submission.
struct Queued {
    hf: Heteroflow,
    rounds: usize,
    core: Completion,
    est_ns: u64,
    retry_unit_ns: u64,
    seq: u64,
    enqueued: Instant,
}

/// One tenant's queue plus accounting.
struct Lane {
    id: TenantId,
    cfg: TenantConfig,
    queue: VecDeque<Queued>,
    inflight: usize,
    submitted: u64,
    admitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    cancelled_queued: u64,
    rejected_quota: u64,
    rejected_saturated: u64,
    retries: u64,
    gpu_ns_charged: u64,
    queue_wait_ns_total: u64,
}

impl Lane {
    fn new(id: TenantId, cfg: TenantConfig) -> Self {
        Self {
            id,
            cfg,
            queue: VecDeque::new(),
            inflight: 0,
            submitted: 0,
            admitted: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            cancelled_queued: 0,
            rejected_quota: 0,
            rejected_saturated: 0,
            retries: 0,
            gpu_ns_charged: 0,
            queue_wait_ns_total: 0,
        }
    }
}

struct FleetState {
    lanes: Vec<Lane>,
    index: HashMap<TenantId, usize>,
    inflight_total: usize,
    queued_total: usize,
    seq: u64,
    /// Re-entrancy guard: one thread drains the pump loop at a time;
    /// others just flag a re-run.
    pumping: bool,
    repump: bool,
}

struct FleetInner {
    exec: Executor,
    cfg: FleetConfig,
    policy: Mutex<Box<dyn AdmissionPolicy>>,
    policy_name: &'static str,
    state: Mutex<FleetState>,
    idle_cv: Condvar,
}

/// An admitted submission carried out of the state lock for dispatch.
struct Launch {
    hf: Heteroflow,
    rounds: usize,
    core: Completion,
    tenant: Arc<str>,
    lane: usize,
    retry_unit_ns: u64,
}

/// The multi-tenant submission front-end (see the [module docs](self)).
/// Owns the executor; all tenants share its workers, GPU engines, and
/// memory pools.
pub struct Fleet {
    inner: Arc<FleetInner>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("Fleet")
            .field("policy", &self.inner.policy_name)
            .field("tenants", &st.lanes.len())
            .field("inflight", &st.inflight_total)
            .field("queued", &st.queued_total)
            .finish()
    }
}

impl Fleet {
    /// Creates a fleet over `exec` with FIFO admission (the baseline;
    /// see [`Fleet::with_policy`] for weighted-fair or strict-priority).
    pub fn new(exec: Executor, cfg: FleetConfig) -> Self {
        Self::with_policy(exec, cfg, Box::new(Fifo))
    }

    /// Creates a fleet with an explicit admission policy.
    pub fn with_policy(
        exec: Executor,
        cfg: FleetConfig,
        policy: Box<dyn AdmissionPolicy>,
    ) -> Self {
        let name = policy.name();
        Self {
            inner: Arc::new(FleetInner {
                exec,
                cfg: FleetConfig {
                    max_inflight: cfg.max_inflight.max(1),
                    ..cfg
                },
                policy: Mutex::new(policy),
                policy_name: name,
                state: Mutex::new(FleetState {
                    lanes: Vec::new(),
                    index: HashMap::new(),
                    inflight_total: 0,
                    queued_total: 0,
                    seq: 0,
                    pumping: false,
                    repump: false,
                }),
                idle_cv: Condvar::new(),
            }),
        }
    }

    /// The shared executor (stats, cost model, telemetry wiring).
    pub fn executor(&self) -> &Executor {
        &self.inner.exec
    }

    /// The admission policy's stable name.
    pub fn policy_name(&self) -> &'static str {
        self.inner.policy_name
    }

    /// Registers (or reconfigures) a tenant. Submitting under an
    /// unregistered tenant registers it implicitly with
    /// [`TenantConfig::default`]; explicit registration is how weights,
    /// priorities, and quotas are set.
    pub fn register(&self, tenant: impl Into<TenantId>, cfg: TenantConfig) -> TenantId {
        let id = tenant.into();
        let mut st = self.inner.state.lock();
        let existing = st.index.get(&id).copied();
        match existing {
            Some(i) => st.lanes[i].cfg = cfg,
            None => {
                let i = st.lanes.len();
                st.lanes.push(Lane::new(id.clone(), cfg));
                st.index.insert(id.clone(), i);
            }
        }
        id
    }

    /// Submits one run of `hf` under `tenant`. Returns a parked
    /// [`RunFuture`] immediately — it settles when the run is admitted
    /// and completes — or a structured error when the tenant's queue
    /// bound ([`HfError::FleetSaturated`]) or GPU-time budget
    /// ([`HfError::QuotaExceeded`]) rejects the submission.
    pub fn submit(&self, tenant: &TenantId, hf: &Heteroflow) -> Result<RunFuture, HfError> {
        self.submit_n(tenant, hf, 1)
    }

    /// [`Fleet::submit`] running the graph `n` rounds back-to-back
    /// (the fleet analogue of [`Executor::run_n`]).
    pub fn submit_n(
        &self,
        tenant: &TenantId,
        hf: &Heteroflow,
        n: usize,
    ) -> Result<RunFuture, HfError> {
        let inner = &self.inner;
        let (per_run, per_task) = inner.estimate_ns(hf);
        let est = per_run.saturating_mul(n.max(1) as u64);
        let (core, fast) = {
            let mut st = inner.state.lock();
            let li = match st.index.get(tenant) {
                Some(&i) => i,
                None => {
                    let i = st.lanes.len();
                    st.lanes
                        .push(Lane::new(tenant.clone(), TenantConfig::default()));
                    st.index.insert(tenant.clone(), i);
                    i
                }
            };
            let lane = &mut st.lanes[li];
            if let Some(budget) = lane.cfg.gpu_ns_budget {
                let needed = lane.gpu_ns_charged.saturating_add(est);
                if needed > budget {
                    lane.rejected_quota += 1;
                    inner.exec.inner.stats.fleet_rejections.incr();
                    return Err(HfError::QuotaExceeded {
                        tenant: tenant.as_str().to_string(),
                        resource: "gpu_ns_budget".to_string(),
                        needed,
                        limit: budget,
                    });
                }
            }
            if lane.queue.len() >= lane.cfg.max_queued {
                lane.rejected_saturated += 1;
                inner.exec.inner.stats.fleet_rejections.incr();
                return Err(HfError::FleetSaturated {
                    tenant: tenant.as_str().to_string(),
                    queued: lane.queue.len(),
                    limit: lane.cfg.max_queued,
                });
            }
            // Reserve the budget at submission so concurrent submitters
            // see a deterministic quota; a queued-then-cancelled entry
            // refunds it.
            lane.gpu_ns_charged = lane.gpu_ns_charged.saturating_add(est);
            lane.submitted += 1;
            let run_id = inner.exec.inner.run_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let core = Completion::new(run_id);
            let seq = st.seq;
            st.seq += 1;
            st.lanes[li].queue.push_back(Queued {
                hf: hf.clone(),
                rounds: n,
                core: core.clone(),
                est_ns: est,
                retry_unit_ns: per_task,
                seq,
                enqueued: Instant::now(),
            });
            st.queued_total += 1;
            // Quiet-fleet fast path: with nothing else queued, no pump
            // loop in flight, and a free slot for this lane, the policy's
            // pick is over exactly one lane — admit inline under the lock
            // we already hold instead of taking the pump's three extra
            // lock round-trips and per-admission allocations. The entry
            // cannot be cancelled yet (its future hasn't been returned),
            // so the sweep is vacuous too.
            let fast = if st.queued_total == 1
                && !st.pumping
                && st.inflight_total < inner.cfg.max_inflight
                && st.lanes[li].inflight < st.lanes[li].cfg.max_inflight
            {
                inner.admit_head(&mut st, li)
            } else {
                None
            };
            (core, fast)
        };
        match fast {
            Some(launch) => inner.dispatch(launch),
            None => inner.pump(),
        }
        Ok(RunFuture { core })
    }

    /// Blocks until every queued and in-flight submission has settled
    /// (including queued entries settled by cancellation), then drains
    /// the executor itself.
    pub fn wait_idle(&self) {
        self.inner.pump();
        let mut st = self.inner.state.lock();
        while st.inflight_total > 0 || st.queued_total > 0 {
            // A queued entry cancelled while the fleet is otherwise idle
            // is only swept by the pump; poll it on a short period.
            if self
                .inner
                .idle_cv
                .wait_for(&mut st, Duration::from_millis(5))
                .timed_out()
            {
                drop(st);
                self.inner.pump();
                st = self.inner.state.lock();
            }
        }
        drop(st);
        self.inner.exec.wait_for_all();
    }

    /// A point-in-time snapshot of fleet and per-tenant accounting
    /// (serializable; the `/tenants` health endpoint serves it).
    pub fn snapshot(&self) -> FleetSnapshot {
        let st = self.inner.state.lock();
        FleetSnapshot {
            policy: self.inner.policy_name.to_string(),
            max_inflight: self.inner.cfg.max_inflight,
            inflight: st.inflight_total,
            queued: st.queued_total,
            tenants: st
                .lanes
                .iter()
                .map(|l| TenantSnapshot {
                    tenant: l.id.as_str().to_string(),
                    weight: l.cfg.weight,
                    priority: l.cfg.priority,
                    queued: l.queue.len(),
                    inflight: l.inflight,
                    submitted: l.submitted,
                    admitted: l.admitted,
                    completed: l.completed,
                    failed: l.failed,
                    cancelled: l.cancelled,
                    cancelled_queued: l.cancelled_queued,
                    rejected_quota: l.rejected_quota,
                    rejected_saturated: l.rejected_saturated,
                    retries: l.retries,
                    gpu_ns_charged: l.gpu_ns_charged,
                    gpu_ns_budget: l.cfg.gpu_ns_budget,
                    queue_wait_ns_total: l.queue_wait_ns_total,
                })
                .collect(),
        }
    }
}

impl FleetInner {
    /// Modeled cost of one run of `hf`: the sum of the cost model's
    /// refined per-task estimates where they exist, with a flat
    /// [`FleetConfig::default_task_cost_ns`] fallback for the rest.
    /// Returns `(per_run_ns, per_task_ns)`; the latter is the unit a
    /// retry is billed at.
    fn estimate_ns(&self, hf: &Heteroflow) -> (u64, u64) {
        let n = hf.num_tasks() as u64;
        if n == 0 {
            return (1, 1);
        }
        let db = self.exec.cost_db();
        // The cost database is only populated under the locality policy;
        // skip the graph-name allocation and scan when it has nothing.
        let (refined, covered) = if db.is_empty() {
            (0.0, 0)
        } else {
            db.sum_for(&hf.name())
        };
        let covered = (covered as u64).min(n);
        let est = (refined as u64)
            .saturating_add((n - covered) * self.cfg.default_task_cost_ns)
            .max(1);
        (est, (est / n).max(1))
    }

    /// Admission loop: sweeps cancelled queued entries, then admits head
    /// submissions chosen by the policy until the fleet cap is reached
    /// or nothing is eligible. Dispatch happens outside the state lock;
    /// a re-entrancy guard collapses concurrent pumps into re-runs.
    fn pump(self: &Arc<Self>) {
        {
            let mut st = self.state.lock();
            if st.pumping {
                st.repump = true;
                return;
            }
            st.pumping = true;
        }
        loop {
            let mut cancelled: Vec<Completion> = Vec::new();
            let mut launches: Vec<Launch> = Vec::new();
            {
                let mut st = self.state.lock();
                self.sweep_cancelled(&mut st, &mut cancelled);
                let mut policy = self.policy.lock();
                while st.inflight_total < self.cfg.max_inflight {
                    let picked = {
                        let eligible: Vec<usize> = st
                            .lanes
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| {
                                !l.queue.is_empty() && l.inflight < l.cfg.max_inflight
                            })
                            .map(|(i, _)| i)
                            .collect();
                        if eligible.is_empty() {
                            None
                        } else {
                            let views: Vec<LaneView<'_>> = eligible
                                .iter()
                                .map(|&i| {
                                    let l = &st.lanes[i];
                                    let head = l.queue.front().expect("eligible lane");
                                    LaneView {
                                        tenant: l.id.as_str(),
                                        weight: l.cfg.weight.max(1),
                                        priority: l.cfg.priority,
                                        queued: l.queue.len(),
                                        inflight: l.inflight,
                                        head_seq: head.seq,
                                        head_cost_ns: head.est_ns,
                                    }
                                })
                                .collect();
                            match policy.pick(&views) {
                                Some(k) if k < views.len() => {
                                    policy.admitted(&views[k], views[k].head_cost_ns);
                                    Some(eligible[k])
                                }
                                _ => None,
                            }
                        }
                    };
                    let Some(li) = picked else { break };
                    launches.push(self.take_head(&mut st, li));
                }
            }
            let had_cancels = !cancelled.is_empty();
            for c in cancelled {
                self.exec.inner.stats.cancelled.incr();
                c.promise.complete(Err(HfError::Cancelled));
            }
            if had_cancels {
                self.idle_cv.notify_all();
            }
            for l in launches {
                self.dispatch(l);
            }
            let mut st = self.state.lock();
            if st.repump {
                st.repump = false;
                continue;
            }
            st.pumping = false;
            return;
        }
    }

    /// Pops lane `li`'s head submission and performs the admission
    /// bookkeeping (counters, queue-wait attribution, fleet stats),
    /// returning the [`Launch`] to dispatch outside the lock. The caller
    /// has already consulted the admission policy.
    fn take_head(&self, st: &mut FleetState, li: usize) -> Launch {
        let q = st.lanes[li].queue.pop_front().expect("picked lane head");
        st.queued_total -= 1;
        st.inflight_total += 1;
        let lane = &mut st.lanes[li];
        lane.inflight += 1;
        lane.admitted += 1;
        lane.queue_wait_ns_total = lane
            .queue_wait_ns_total
            .saturating_add(q.enqueued.elapsed().as_nanos() as u64);
        let tenant = Arc::clone(&lane.id.0);
        self.exec.inner.stats.fleet_admissions.incr();
        Launch {
            hf: q.hf,
            rounds: q.rounds,
            core: q.core,
            tenant,
            lane: li,
            retry_unit_ns: q.retry_unit_ns,
        }
    }

    /// Single-lane admission used by the submit fast path: consults the
    /// policy with a one-element view (keeping its virtual-time
    /// accounting exact) without the pump loop's heap allocations. The
    /// caller holds the state lock and has verified eligibility.
    fn admit_head(&self, st: &mut FleetState, li: usize) -> Option<Launch> {
        let mut policy = self.policy.lock();
        let view = {
            let l = &st.lanes[li];
            let head = l.queue.front().expect("caller verified non-empty");
            LaneView {
                tenant: l.id.as_str(),
                weight: l.cfg.weight.max(1),
                priority: l.cfg.priority,
                queued: l.queue.len(),
                inflight: l.inflight,
                head_seq: head.seq,
                head_cost_ns: head.est_ns,
            }
        };
        match policy.pick(std::slice::from_ref(&view)) {
            Some(0) => {
                policy.admitted(&view, view.head_cost_ns);
                drop(policy);
                Some(self.take_head(st, li))
            }
            _ => None,
        }
    }

    /// Settles cancelled queued entries without dispatching them and
    /// refunds their budget reservation. Cores are completed by the
    /// caller outside the lock.
    fn sweep_cancelled(&self, st: &mut FleetState, out: &mut Vec<Completion>) {
        for li in 0..st.lanes.len() {
            for qi in (0..st.lanes[li].queue.len()).rev() {
                if st.lanes[li].queue[qi].core.cancel_requested() {
                    let q = st.lanes[li].queue.remove(qi).expect("index checked");
                    st.queued_total -= 1;
                    let lane = &mut st.lanes[li];
                    lane.cancelled_queued += 1;
                    lane.cancelled += 1;
                    lane.gpu_ns_charged = lane.gpu_ns_charged.saturating_sub(q.est_ns);
                    out.push(q.core);
                }
            }
        }
    }

    /// Hands one admitted submission to the shared epoch driver. The
    /// driver reuses the pre-allocated completion core (the caller's
    /// future), stamps the tenant onto every lifecycle event, and calls
    /// back into the fleet when the run settles.
    fn dispatch(self: &Arc<Self>, l: Launch) {
        let me = Arc::clone(self);
        let li = l.lane;
        let retry_unit = l.retry_unit_ns;
        let mut remaining = l.rounds;
        let stop = Box::new(move || {
            if remaining == 0 {
                true
            } else {
                remaining -= 1;
                false
            }
        });
        // The returned future shares the caller's completion core; the
        // caller's RunFuture is the live handle, so this one is dropped.
        drop(run_driver_ext(
            &self.exec,
            &l.hf,
            stop,
            DriverExtras {
                core: Some(l.core),
                tenant: Some(l.tenant),
                on_done: Some(Box::new(move |result, retries| {
                    me.on_run_done(li, result, retries, retry_unit)
                })),
            },
        ));
    }

    /// Run-completion callback (fires on whichever thread settled the
    /// run): releases the in-flight slot, bills retry work to the
    /// tenant's budget, and pumps the next admission.
    fn on_run_done(
        self: &Arc<Self>,
        lane_idx: usize,
        result: &Result<(), HfError>,
        retries: u32,
        retry_unit_ns: u64,
    ) {
        let work_waiting = {
            let mut st = self.state.lock();
            st.inflight_total -= 1;
            let lane = &mut st.lanes[lane_idx];
            lane.inflight -= 1;
            match result {
                Ok(()) => lane.completed += 1,
                Err(HfError::Cancelled) => lane.cancelled += 1,
                Err(_) => lane.failed += 1,
            }
            if retries > 0 {
                lane.retries += retries as u64;
                lane.gpu_ns_charged = lane
                    .gpu_ns_charged
                    .saturating_add(retries as u64 * retry_unit_ns);
            }
            st.queued_total > 0
        };
        self.idle_cv.notify_all();
        // Nothing queued means nothing to admit or sweep — skip the pump
        // on the (solo-tenant) fast path. A submission racing in after
        // the check runs its own pump and sees the slot we just freed.
        if work_waiting {
            self.pump();
        }
    }
}

/// Serializable point-in-time fleet accounting
/// (see [`Fleet::snapshot`]).
#[derive(Debug, Clone, Serialize)]
pub struct FleetSnapshot {
    /// Admission policy name.
    pub policy: String,
    /// Fleet-wide in-flight cap.
    pub max_inflight: usize,
    /// Admitted-but-unfinished submissions right now.
    pub inflight: usize,
    /// Parked submissions across all tenant queues.
    pub queued: usize,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantSnapshot>,
}

/// Per-tenant accounting within a [`FleetSnapshot`].
#[derive(Debug, Clone, Serialize)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Weighted-fair share.
    pub weight: u32,
    /// Strict-priority level.
    pub priority: u8,
    /// Submissions parked in the queue right now.
    pub queued: usize,
    /// Submissions in flight right now.
    pub inflight: usize,
    /// Submissions accepted (queued or admitted) in total.
    pub submitted: u64,
    /// Submissions admitted to the executor.
    pub admitted: u64,
    /// Runs completed successfully.
    pub completed: u64,
    /// Runs that failed with an error other than cancellation.
    pub failed: u64,
    /// Runs settled as cancelled (queued or in-flight).
    pub cancelled: u64,
    /// Cancelled while still queued (never dispatched).
    pub cancelled_queued: u64,
    /// Submissions rejected by the GPU-time budget.
    pub rejected_quota: u64,
    /// Submissions rejected by the queue bound.
    pub rejected_saturated: u64,
    /// Retry-policy re-dispatches billed to this tenant.
    pub retries: u64,
    /// Modeled GPU-nanoseconds charged against the budget (reservations
    /// plus retry charges, minus refunds for queue-cancelled entries).
    pub gpu_ns_charged: u64,
    /// Budget, when configured.
    pub gpu_ns_budget: Option<u64>,
    /// Total nanoseconds submissions spent queued before admission.
    pub queue_wait_ns_total: u64,
}
