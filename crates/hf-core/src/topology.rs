//! Topologies: per-submission execution state, and the future returned to
//! callers.
//!
//! "When a graph is submitted to an executor, a special data structure
//! called *topology* is created to marshal execution parameters and
//! runtime metadata ... The communication is based on a shared state
//! managed by a pair of C++ promise and future objects" (§III-C).

use crate::error::HfError;
use crate::graph::{FrozenGraph, GraphShared};
use crate::placement::Placement;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Poll, Waker};

/// Shared promise/future state of one submission.
pub(crate) struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompletionState {
    result: Option<Result<(), HfError>>,
    wakers: Vec<Waker>,
}

impl Completion {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(CompletionState::default()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<(), HfError>) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        st.result = Some(result);
        let wakers = std::mem::take(&mut st.wakers);
        self.cv.notify_all();
        drop(st);
        for w in wakers {
            w.wake();
        }
    }

    fn wait(&self) -> Result<(), HfError> {
        let mut st = self.state.lock();
        while st.result.is_none() {
            self.cv.wait(&mut st);
        }
        st.result.clone().expect("checked above")
    }

    fn is_done(&self) -> bool {
        self.state.lock().result.is_some()
    }
}

/// Future returned by [`crate::Executor::run`] and friends. All run
/// methods are non-blocking: "issuing a run on a graph returns immediately
/// with a C++ future object" (§III-B). Supports both blocking
/// ([`RunFuture::wait`]) and async (`.await`) consumption.
#[derive(Clone)]
pub struct RunFuture {
    pub(crate) completion: Arc<Completion>,
}

impl std::fmt::Debug for RunFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFuture")
            .field("done", &self.is_done())
            .finish()
    }
}

impl RunFuture {
    /// Blocks until the run finishes; returns its result.
    pub fn wait(&self) -> Result<(), HfError> {
        self.completion.wait()
    }

    /// True once the run has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.completion.is_done()
    }

    /// An already-completed future (empty graphs, zero repeats).
    pub(crate) fn ready(result: Result<(), HfError>) -> Self {
        let c = Completion::new();
        c.complete(result);
        Self { completion: c }
    }
}

impl std::future::Future for RunFuture {
    type Output = Result<(), HfError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> Poll<Self::Output> {
        let mut st = self.completion.state.lock();
        if let Some(r) = &st.result {
            Poll::Ready(r.clone())
        } else {
            if !st.wakers.iter().any(|w| w.will_wake(cx.waker())) {
                st.wakers.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

/// Per-submission runtime state: join counters, round bookkeeping, device
/// placement, the stopping predicate, and the completion promise.
pub(crate) struct Topology {
    pub(crate) graph_shared: Arc<GraphShared>,
    pub(crate) frozen: Arc<FrozenGraph>,
    /// Shared with the graph's scheduling cache: unchanged graphs reuse
    /// the same placement across submissions.
    pub(crate) placement: Arc<Placement>,
    /// Remaining unmet dependencies per node, reset each round.
    pub(crate) join: Vec<AtomicUsize>,
    /// Nodes not yet finished this round.
    pub(crate) pending: AtomicUsize,
    /// Stopping predicate: `true` means stop (checked before each round).
    pub(crate) predicate: Mutex<Box<dyn FnMut() -> bool + Send>>,
    pub(crate) completion: Arc<Completion>,
    /// First error observed during execution.
    pub(crate) error: Mutex<Option<HfError>>,
    /// Set once an error occurs: remaining task bodies are skipped while
    /// the round drains.
    pub(crate) cancelled: AtomicBool,
    /// Rounds completed (diagnostic).
    pub(crate) rounds: AtomicUsize,
    /// Task fusion plan (§III-C "task fusing"); shared with the graph's
    /// scheduling cache.
    pub(crate) fusion: Arc<FusionPlan>,
    /// Slot in the executor's topology registry while this topology is in
    /// flight; `u32::MAX` before registration. Work tokens pack this slot
    /// with a node index, so queued items carry no heap pointer.
    pub(crate) slot: AtomicU32,
}

impl Topology {
    pub(crate) fn new(
        graph_shared: Arc<GraphShared>,
        frozen: Arc<FrozenGraph>,
        placement: Arc<Placement>,
        fusion: Arc<FusionPlan>,
        predicate: Box<dyn FnMut() -> bool + Send>,
    ) -> Arc<Self> {
        let join = frozen
            .nodes
            .iter()
            .map(|n| AtomicUsize::new(n.num_deps))
            .collect();
        Arc::new(Self {
            graph_shared,
            frozen: Arc::clone(&frozen),
            placement,
            join,
            pending: AtomicUsize::new(frozen.nodes.len()),
            predicate: Mutex::new(predicate),
            completion: Completion::new(),
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            rounds: AtomicUsize::new(0),
            fusion,
            slot: AtomicU32::new(u32::MAX),
        })
    }

    /// Resets per-round counters for the next repetition.
    pub(crate) fn reset_round(&self) {
        for (j, n) in self.join.iter().zip(&self.frozen.nodes) {
            j.store(n.num_deps, Ordering::Relaxed);
        }
        self.pending
            .store(self.frozen.nodes.len(), Ordering::Release);
    }

    /// Records the first error and cancels remaining bodies.
    pub(crate) fn fail(&self, e: HfError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.cancelled.store(true, Ordering::Release);
    }

    /// The final result for the completion promise.
    pub(crate) fn result(&self) -> Result<(), HfError> {
        match self.error.lock().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Precomputed GPU task-fusion chains (§III-C "task fusing"). Pure
/// function of (frozen graph, placement, fusion flag), so the executor
/// caches it alongside the placement and reuses it across submissions of
/// an unchanged graph.
pub(crate) struct FusionPlan {
    /// `next[v]` chains v to a GPU successor dispatched on the same
    /// stream submission; members of a chain (non-heads) are never
    /// scheduled individually.
    pub(crate) next: Vec<Option<u32>>,
    /// True for chain members (every node with a fused predecessor).
    pub(crate) member: Vec<bool>,
}

impl FusionPlan {
    /// Identifies fusible GPU chains: node `v` fuses to its successor `w`
    /// when `v` is a GPU task, `w` is a *kernel or push* task whose only
    /// dependency is `v`, and both are placed on the same device. Pull
    /// tasks are never fused as members (their device allocation sizes
    /// bind at dispatch time and must observe their host-side
    /// predecessors).
    pub(crate) fn compute(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
    ) -> Self {
        use crate::graph::TaskKind;
        let n = frozen.nodes.len();
        let mut next = vec![None; n];
        let mut member = vec![false; n];
        if !enabled {
            return Self { next, member };
        }
        #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
        for v in 0..n {
            let vk = frozen.nodes[v].work.kind();
            let v_gpu = matches!(vk, TaskKind::Pull | TaskKind::Push | TaskKind::Kernel);
            if !v_gpu || frozen.nodes[v].succ.len() != 1 {
                continue;
            }
            let w = frozen.nodes[v].succ[0];
            let wk = frozen.nodes[w].work.kind();
            let w_fusible = matches!(wk, TaskKind::Push | TaskKind::Kernel);
            if w_fusible
                && frozen.nodes[w].num_deps == 1
                && placement.device_of[v] == placement.device_of[w]
                && !member[w]
            {
                next[v] = Some(w as u32);
                member[w] = true;
            }
        }
        Self { next, member }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_wait_and_poll() {
        let c = Completion::new();
        let fut = RunFuture {
            completion: Arc::clone(&c),
        };
        assert!(!fut.is_done());
        c.complete(Ok(()));
        assert!(fut.is_done());
        assert!(fut.wait().is_ok());
        // Second completion is ignored.
        c.complete(Err(HfError::ExecutorShutDown));
        assert!(fut.wait().is_ok());
    }

    #[test]
    fn ready_future() {
        let f = RunFuture::ready(Err(HfError::ExecutorShutDown));
        assert!(f.is_done());
        assert_eq!(f.wait(), Err(HfError::ExecutorShutDown));
    }

    #[test]
    fn future_is_pollable() {
        // Poll with a no-op waker through a minimal block_on.
        let c = Completion::new();
        let fut = RunFuture {
            completion: Arc::clone(&c),
        };
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            c2.complete(Ok(()));
        });
        let result = pollster_block_on(fut);
        assert!(result.is_ok());
        t.join().unwrap();
    }

    /// Minimal executor for testing `impl Future` without external deps.
    fn pollster_block_on<F: std::future::Future>(fut: F) -> F::Output {
        use std::sync::mpsc;
        use std::task::{Context, RawWaker, RawWakerVTable};
        let (tx, rx) = mpsc::channel::<()>();

        fn raw(tx: *const ()) -> RawWaker {
            RawWaker::new(tx, &VTABLE)
        }
        unsafe fn clone(tx: *const ()) -> RawWaker {
            let t = &*(tx as *const mpsc::Sender<()>);
            let boxed = Box::new(t.clone());
            raw(Box::into_raw(boxed) as *const ())
        }
        unsafe fn wake(tx: *const ()) {
            let t = Box::from_raw(tx as *mut mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn wake_by_ref(tx: *const ()) {
            let t = &*(tx as *const mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn drop_waker(tx: *const ()) {
            drop(Box::from_raw(tx as *mut mpsc::Sender<()>));
        }
        static VTABLE: RawWakerVTable =
            RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);

        let boxed = Box::new(tx);
        let waker =
            unsafe { std::task::Waker::from_raw(raw(Box::into_raw(boxed) as *const ())) };
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    let _ = rx.recv();
                }
            }
        }
    }
}
