//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! serialization surface it uses: a [`Serialize`] trait that renders any
//! value into an owned JSON tree ([`json::Value`]), plus the
//! `#[derive(Serialize)]` macro (re-exported from the sibling
//! `serde_derive` shim). `serde_json` formats the tree.

pub use serde_derive::Serialize;

/// The JSON value tree [`Serialize`] renders into. Lives here (rather than
/// in `serde_json`) so the derive macro can reference it through the one
/// crate every deriving module already depends on.
pub mod json {
    use std::fmt::Write as _;

    /// An ordered string-keyed map (insertion order is preserved so JSON
    /// output is deterministic).
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct Map {
        entries: Vec<(String, Value)>,
    }

    impl Map {
        /// Creates an empty map.
        pub fn new() -> Self {
            Self::default()
        }

        /// Inserts `value` under `key`, replacing any previous entry.
        pub fn insert(&mut self, key: String, value: Value) {
            if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
                e.1 = value;
            } else {
                self.entries.push((key, value));
            }
        }

        /// Iterates entries in insertion order.
        pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
            self.entries.iter()
        }

        /// The value under `key`, if present.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// Number of entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// True when the map holds no entries.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }
    }

    /// An owned JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An unsigned integer.
        UInt(u64),
        /// A signed integer.
        Int(i64),
        /// A floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object.
        Object(Map),
    }

    impl Value {
        /// Object field access: `v.get("key")`. `None` for non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(m) => m.get(key),
                _ => None,
            }
        }

        /// The array items, when this is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The object map, when this is an object.
        pub fn as_object(&self) -> Option<&Map> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The string contents, when this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as `u64` (unsigned ints and non-negative ints).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(n) => Some(*n),
                Value::Int(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as `f64` (any numeric variant).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::UInt(n) => Some(*n as f64),
                Value::Int(n) => Some(*n as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// The boolean, when this is a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Renders compact JSON.
        pub fn render(&self, out: &mut String, indent: Option<usize>) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::UInt(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Float(f) => {
                    if f.is_finite() {
                        let start = out.len();
                        let _ = write!(out, "{f}");
                        // `1.0f64` displays as "1"; keep it a JSON float.
                        if !out[start..].contains(['.', 'e', 'E']) {
                            out.push_str(".0");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => escape_into(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent.map(|n| n + 1));
                        v.render(out, indent.map(|n| n + 1));
                    }
                    if !items.is_empty() {
                        newline_indent(out, indent);
                    }
                    out.push(']');
                }
                Value::Object(map) => {
                    out.push('{');
                    for (i, (k, v)) in map.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        newline_indent(out, indent.map(|n| n + 1));
                        escape_into(k, out);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.render(out, indent.map(|n| n + 1));
                    }
                    if !map.is_empty() {
                        newline_indent(out, indent);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>) {
        if let Some(n) = indent {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    }

    fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Types renderable as a JSON tree. The derive macro generates this for
/// plain named-field structs.
pub trait Serialize {
    /// Renders `self` as an owned JSON value.
    fn to_value(&self) -> json::Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value { json::Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value { json::Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for json::Value {
    fn to_value(&self) -> json::Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn primitives_render() {
        let mut s = String::new();
        Value::Array(vec![
            1u32.to_value(),
            (-2i64).to_value(),
            0.5f64.to_value(),
            "hi\"".to_value(),
            Option::<u32>::None.to_value(),
            true.to_value(),
        ])
        .render(&mut s, None);
        assert_eq!(s, r#"[1,-2,0.5,"hi\"",null,true]"#);
    }

    #[test]
    fn map_replaces_duplicate_keys() {
        let mut m = json::Map::new();
        m.insert("a".to_string(), Value::UInt(1));
        m.insert("a".to_string(), Value::UInt(2));
        assert_eq!(m.len(), 1);
        let mut s = String::new();
        Value::Object(m).render(&mut s, None);
        assert_eq!(s, r#"{"a":2}"#);
    }
}
