//! Asynchronous execution control — the paper's Listing 12.
//!
//! Demonstrates `run` / `run_n` / `run_until` with futures,
//! `wait_for_all`, placeholder tasks assigned late, thread-safe
//! submission from multiple threads, and iterative convergence driven by
//! a stopping predicate.
//!
//! Run: `cargo run --example dynamic_control`

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    // `hf::Executor executor(8, 4)` — 8 CPU threads, 4 GPUs.
    let executor = Executor::new(8, 4);

    // --- run / run_n / run_until, all non-blocking (Listing 12). ---
    let counter = Arc::new(AtomicUsize::new(0));
    let g = Heteroflow::new("counted");
    g.host("inc", {
        let c = Arc::clone(&counter);
        move || {
            c.fetch_add(1, Ordering::SeqCst);
        }
    });

    let future1 = executor.run(&g);
    let future2 = executor.run_n(&g, 100);
    let stop_at = Arc::clone(&counter);
    let future3 = executor.run_until(&g, move || stop_at.load(Ordering::SeqCst) >= 150);
    executor.wait_for_all();
    assert!(future1.is_done() && future2.is_done() && future3.is_done());
    println!("after run + run_n(100) + run_until(>=150): count = {}",
        counter.load(Ordering::SeqCst));

    // --- placeholder tasks: allocate structure now, decide work later. ---
    let g2 = Heteroflow::new("late-bound");
    let before = g2.host("before", || println!("placeholder demo: before"));
    let later = g2.placeholder("decided-at-runtime");
    before.precede(&later);
    // ... later in the program, once the content is known:
    later.assign_host(|| println!("placeholder demo: late-bound work ran"));
    executor.run(&g2).wait().expect("late-bound graph runs");

    // --- iterative convergence: run_until drives a GPU reduction. ---
    let data: HostVec<f32> = HostVec::from_vec(vec![1024.0; 256]);
    let g3 = Heteroflow::new("halve-until-small");
    let pull = g3.pull("pull", &data);
    let kernel = g3.kernel("halve", &[&pull], |cfg, args| {
        let v = args.slice_mut::<f32>(0).expect("data");
        for i in cfg.threads() {
            if i < v.len() {
                v[i] /= 2.0;
            }
        }
    });
    kernel.cover(256, 64);
    let push = g3.push("push", &pull, &data);
    pull.precede(&kernel);
    kernel.precede(&push);
    assert!(g3.analyze().is_clean(), "lint:\n{}", g3.analyze().render_text());

    let watch = data.clone();
    let rounds = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&rounds);
    executor
        .run_until(&g3, move || {
            r2.fetch_add(1, Ordering::SeqCst);
            watch.read().first().is_some_and(|&v| v < 1.0)
        })
        .wait()
        .expect("iterative graph runs");
    println!(
        "halved until < 1.0: value {} after {} predicate checks (expected 11 halvings)",
        data.read()[0],
        rounds.load(Ordering::SeqCst)
    );
    assert!(data.read()[0] < 1.0);

    // --- thread-safe submission: touch one executor from many threads. ---
    let total = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let executor = &executor;
            let total = Arc::clone(&total);
            scope.spawn(move || {
                let g = Heteroflow::new(&format!("thread{t}"));
                g.host("work", {
                    let total = Arc::clone(&total);
                    move || {
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                });
                executor.run_n(&g, 25).wait().expect("runs");
            });
        }
    });
    assert_eq!(total.load(Ordering::SeqCst), 100);
    println!("4 threads x run_n(25) on one executor: total = {}", total.load(Ordering::SeqCst));

    // Scheduler statistics gathered along the way.
    let st = executor.stats();
    println!(
        "executor stats: {} tasks, {} steals (success rate {:.2}), {} sleeps",
        st.tasks_executed.sum(),
        st.steals.sum(),
        st.steal_success_rate(),
        st.sleeps.sum()
    );
}
