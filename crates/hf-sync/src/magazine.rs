//! Bounded lock-free token cache ("magazine").
//!
//! A fixed array of atomic slots holding `u64` tokens, with wait-free
//! scans and a single compare-exchange per successful operation. Designed
//! as the front cache of a size-classed allocator: `try_put` parks a free
//! block's offset, `try_take` hands one back, and a full magazine simply
//! rejects the put so the caller falls through to its slow path.
//!
//! Unlike [`crate::Injector`], there is no segment management and no heap
//! allocation after construction — the hot put/take pair touches one
//! cache line. The trade-off is a hard capacity and `u64::MAX` being
//! reserved as the empty sentinel.
//!
//! ABA safety: tokens are *ownership-bearing* (a block offset is parked by
//! at most one owner at a time), so a take's compare-exchange succeeding
//! against a recycled value is still a valid transfer of that token.

use crate::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// A bounded lock-free cache of `u64` tokens (see module docs).
pub struct SlotCache {
    slots: Box<[AtomicU64]>,
}

impl SlotCache {
    /// Creates a cache with room for `cap` tokens.
    pub fn new(cap: usize) -> Self {
        Self {
            slots: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
        }
    }

    /// Parks `value` in a free slot. Returns `false` when the cache is
    /// full (the caller keeps ownership).
    ///
    /// # Panics
    /// In debug builds, if `value` is `u64::MAX` (the empty sentinel).
    pub fn try_put(&self, value: u64) -> bool {
        debug_assert_ne!(value, EMPTY, "u64::MAX is the empty sentinel");
        for s in self.slots.iter() {
            if s.load(Ordering::Relaxed) == EMPTY
                && s.compare_exchange(EMPTY, value, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
            {
                return true;
            }
        }
        false
    }

    /// Takes any parked token, or `None` when the cache is empty.
    pub fn try_take(&self) -> Option<u64> {
        for s in self.slots.iter() {
            let v = s.load(Ordering::Relaxed);
            if v != EMPTY
                && s.compare_exchange(v, EMPTY, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(v);
            }
        }
        None
    }

    /// Number of parked tokens (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// True when no token is parked (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of tokens the cache can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn put_take_round_trip() {
        let c = SlotCache::new(4);
        assert!(c.is_empty());
        assert!(c.try_take().is_none());
        assert!(c.try_put(7));
        assert!(c.try_put(9));
        assert_eq!(c.len(), 2);
        let mut got = vec![c.try_take().unwrap(), c.try_take().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![7, 9]);
        assert!(c.try_take().is_none());
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let c = SlotCache::new(2);
        assert!(c.try_put(1));
        assert!(c.try_put(2));
        assert!(!c.try_put(3), "full cache rejects the put");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_is_a_valid_token() {
        let c = SlotCache::new(1);
        assert!(c.try_put(0));
        assert_eq!(c.try_take(), Some(0));
    }

    #[test]
    fn concurrent_transfers_conserve_tokens() {
        // N distinct tokens circulate through the cache from 4 threads;
        // every token that goes in comes out exactly once.
        let c = Arc::new(SlotCache::new(16));
        let taken = Arc::new(std::sync::Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&c);
                let taken = Arc::clone(&taken);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let tok = t * 1000 + i;
                        // Spin until parked, then reclaim any token.
                        while !c.try_put(tok) {
                            std::hint::spin_loop();
                        }
                        loop {
                            if let Some(v) = c.try_take() {
                                taken.lock().unwrap().push(v);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Arc::try_unwrap(taken).unwrap().into_inner().unwrap();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 2000, "no token lost or duplicated");
        assert!(c.is_empty());
    }
}
