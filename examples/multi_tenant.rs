//! Multi-tenant serving walkthrough: three tenants on one shared fleet,
//! starved under FIFO, fair under weighted-fair admission.
//!
//! The workload models a serving box shared by three clients:
//!
//! * **batch** — dumps a backlog of long jobs at t=0 (weight 1);
//! * **interactive** — submits short jobs on a steady period and cares
//!   about tail latency (weight 8);
//! * **metered** — runs under a modeled GPU-nanosecond budget and gets a
//!   structured [`HfError::QuotaExceeded`] once it spends it.
//!
//! The same workload runs twice: once on a FIFO fleet, where every
//! interactive job queues behind the whole batch backlog, and once under
//! weighted-fair admission (start-time fair queueing), where each
//! interactive job is admitted at the next free slot. The example also
//! wires the telemetry layer — a [`FlightRecorder`] observer feeds
//! per-tenant latency histograms, and a [`HealthServer`] serves them on
//! `/metrics` (labeled `hf_run_latency_nanos{tenant="..."}`) and
//! `/tenants` (per-tenant quantiles merged with the fleet's live quota
//! snapshot) — then scrapes its own endpoint and writes artifacts:
//!
//! * `tenancy_compare.json` — interactive-tenant latency, FIFO vs
//!   weighted-fair, plus the quota-rejection demo.
//! * `tenants.json`         — final `/tenants` scrape.
//! * `metrics_tenants.prom` — final `/metrics` scrape (labeled series).
//!
//! Run:   `cargo run --release --example multi_tenant [-- OUTDIR]`
//! Check: `cargo run --release --example multi_tenant -- OUTDIR --check`
//! validates the fairness claim and the artifacts, exiting non-zero on
//! violation — CI runs this mode.

use heteroflow::prelude::*;
use serde_json::json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH_JOBS: usize = 6;
const BATCH_MS: u64 = 5;
const INTERACTIVE_JOBS: usize = 6;
const INTERACTIVE_MS: u64 = 1;
const INTERACTIVE_PERIOD_MS: u64 = 2;

/// One job: a single host task that occupies its in-flight slot for
/// `service_ms` and stamps its completion instant.
fn job(
    name: &str,
    service_ms: u64,
    done: &Arc<std::sync::Mutex<Option<Instant>>>,
) -> Heteroflow {
    let g = Heteroflow::new(name);
    let done = Arc::clone(done);
    g.host("serve", move || {
        std::thread::sleep(Duration::from_millis(service_ms));
        *done.lock().expect("unpoisoned") = Some(Instant::now());
    });
    g
}

struct Outcome {
    interactive_mean_ms: f64,
    interactive_worst_ms: f64,
    batch_total_ms: f64,
}

/// Runs the batch-vs-interactive workload on `fleet` and measures the
/// interactive tenant's completion latency.
fn run_workload(fleet: &Fleet) -> Outcome {
    let batch = fleet.register("batch", TenantConfig::default());
    let interactive = fleet.register(
        "interactive",
        TenantConfig {
            weight: 8,
            ..TenantConfig::default()
        },
    );

    let t0 = Instant::now();
    let mut batch_done = Vec::new();
    for i in 0..BATCH_JOBS {
        let done = Arc::new(std::sync::Mutex::new(None));
        let g = job(&format!("batch_{i}"), BATCH_MS, &done);
        fleet.submit(&batch, &g).expect("batch submit");
        batch_done.push(done);
    }
    let mut inter = Vec::new();
    for i in 0..INTERACTIVE_JOBS {
        std::thread::sleep(Duration::from_millis(INTERACTIVE_PERIOD_MS));
        let done = Arc::new(std::sync::Mutex::new(None));
        let g = job(&format!("interactive_{i}"), INTERACTIVE_MS, &done);
        fleet.submit(&interactive, &g).expect("interactive submit");
        inter.push((Instant::now(), done));
    }
    fleet.wait_idle();

    let latencies: Vec<f64> = inter
        .iter()
        .map(|(submitted, done)| {
            done.lock()
                .expect("unpoisoned")
                .expect("completed")
                .duration_since(*submitted)
                .as_secs_f64()
                * 1e3
        })
        .collect();
    Outcome {
        interactive_mean_ms: latencies.iter().sum::<f64>() / latencies.len() as f64,
        interactive_worst_ms: latencies.iter().cloned().fold(f64::MIN, f64::max),
        batch_total_ms: batch_done
            .iter()
            .map(|d| {
                d.lock()
                    .expect("unpoisoned")
                    .expect("completed")
                    .duration_since(t0)
                    .as_secs_f64()
                    * 1e3
            })
            .fold(f64::MIN, f64::max),
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect health endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out.split_once("\r\n\r\n")
        .expect("well-formed response")
        .1
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let outdir = args
        .iter()
        .find(|a| *a != "--check")
        .cloned()
        .unwrap_or_else(|| ".".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");

    // ── Phase 1: FIFO — interactive starves behind the backlog ─────────
    let fifo_fleet = Fleet::new(
        Executor::new(2, 1),
        FleetConfig {
            max_inflight: 2,
            ..FleetConfig::default()
        },
    );
    let fifo = run_workload(&fifo_fleet);
    println!(
        "FIFO:          interactive mean {:6.2} ms, worst {:6.2} ms (backlog drained in {:.0} ms)",
        fifo.interactive_mean_ms, fifo.interactive_worst_ms, fifo.batch_total_ms
    );

    // ── Phase 2: weighted-fair — admitted at the next free slot ────────
    // This fleet also carries the telemetry wiring: the recorder folds
    // per-tenant latency histograms, and the health endpoint serves them.
    let recorder = FlightRecorder::shared();
    let wfq_fleet = Arc::new(Fleet::with_policy(
        Executor::builder(2, 1).observer(recorder.clone()).build(),
        FleetConfig {
            max_inflight: 2,
            ..FleetConfig::default()
        },
        Box::<WeightedFair>::default(),
    ));
    let hub = HealthHub::new(recorder);
    let fleet_for_scrape = Arc::clone(&wfq_fleet);
    hub.set_tenant_source(move || {
        serde_json::to_string(&fleet_for_scrape.snapshot()).expect("snapshot serializes")
    });
    let server = HealthServer::bind("127.0.0.1:0", hub).expect("bind endpoint");
    println!("tenant endpoint live at http://{}/tenants", server.addr());

    let wfq = run_workload(&wfq_fleet);
    println!(
        "weighted-fair: interactive mean {:6.2} ms, worst {:6.2} ms (backlog drained in {:.0} ms)",
        wfq.interactive_mean_ms, wfq.interactive_worst_ms, wfq.batch_total_ms
    );

    // ── Phase 3: metered tenant exhausts its GPU-time budget ───────────
    let metered = wfq_fleet.register(
        "metered",
        TenantConfig {
            // Each 1-task job is modeled at the 1000 ns default task
            // cost; a 2500 ns budget admits two jobs and rejects the
            // third with a structured error.
            gpu_ns_budget: Some(2_500),
            ..TenantConfig::default()
        },
    );
    let mut quota_err = None;
    for i in 0..3 {
        let done = Arc::new(std::sync::Mutex::new(None));
        let g = job(&format!("metered_{i}"), 1, &done);
        match wfq_fleet.submit(&metered, &g) {
            Ok(fut) => {
                fut.wait().expect("metered run");
            }
            Err(e) => {
                println!("metered job {i} rejected: {e}");
                quota_err = Some(e);
            }
        }
    }
    wfq_fleet.wait_idle();
    let quota_err = quota_err.expect("third metered job must exceed the budget");
    assert!(
        matches!(quota_err, HfError::QuotaExceeded { .. }),
        "expected QuotaExceeded, got {quota_err:?}"
    );

    // ── Scrape + write artifacts ───────────────────────────────────────
    let tenants = http_get(server.addr(), "/tenants");
    let metrics = http_get(server.addr(), "/metrics");
    let compare = json!({
        "schema": "hf-tenancy-example-v1",
        "fifo": json!({
            "interactive_mean_ms": fifo.interactive_mean_ms,
            "interactive_worst_ms": fifo.interactive_worst_ms,
            "batch_total_ms": fifo.batch_total_ms,
        }),
        "weighted_fair": json!({
            "interactive_mean_ms": wfq.interactive_mean_ms,
            "interactive_worst_ms": wfq.interactive_worst_ms,
            "batch_total_ms": wfq.batch_total_ms,
        }),
        "quota_rejection": quota_err.to_string(),
    });
    let w = |name: &str, body: &str| {
        std::fs::write(format!("{outdir}/{name}"), body).expect("write artifact");
    };
    w(
        "tenancy_compare.json",
        &serde_json::to_string_pretty(&compare).expect("serializes"),
    );
    w("tenants.json", &tenants);
    w("metrics_tenants.prom", &metrics);
    println!("artifacts written to {outdir}/");

    if !check {
        return;
    }

    // ── Validation (CI mode) ───────────────────────────────────────────
    let mut failures: Vec<String> = Vec::new();
    let mut ensure = |ok: bool, what: &str| {
        if !ok {
            failures.push(what.to_string());
        }
    };

    // Fairness: weighted-fair must cut the interactive tenant's worst
    // latency well below FIFO's (the backlog is ~30 ms deep; a fair slot
    // arrives within one batch job's service time).
    ensure(
        wfq.interactive_worst_ms < fifo.interactive_worst_ms,
        "fairness: weighted-fair worst interactive latency below FIFO",
    );
    // Conservation: fairness reshapes who waits, not how much work gets
    // done — the backlog still drains in the same ballpark (3x guard).
    ensure(
        wfq.batch_total_ms < fifo.batch_total_ms * 3.0,
        "conservation: backlog drain time not blown up by fairness",
    );
    // /tenants: per-tenant quantiles plus the live fleet quota snapshot.
    ensure(
        tenants.contains("\"hf-tenants-v1\""),
        "/tenants: schema marker present",
    );
    for t in ["batch", "interactive", "metered"] {
        ensure(
            tenants.contains(&format!("\"{t}\"")),
            "/tenants: all three tenants present",
        );
    }
    ensure(
        tenants.contains("\"weighted_fair\""),
        "/tenants: fleet snapshot merged (policy name)",
    );
    ensure(
        tenants.contains("\"rejected_quota\""),
        "/tenants: quota accounting present",
    );
    // /metrics: per-tenant labeled series alongside stable aggregates.
    ensure(
        metrics.contains("hf_run_latency_nanos_bucket{tenant=\"interactive\""),
        "metrics: per-tenant labeled run-latency buckets",
    );
    ensure(
        metrics.contains("hf_tenant_runs_total{tenant=\"batch\"}"),
        "metrics: per-tenant run counters",
    );
    ensure(
        metrics.contains("hf_run_latency_nanos_count"),
        "metrics: unlabeled aggregate histogram still present",
    );

    if failures.is_empty() {
        println!("check OK: all multi-tenant invariants hold");
    } else {
        eprintln!("check FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
