//! Executor scheduling statistics.
//!
//! Exposed for tests and for the A4 ablation (adaptive sleep vs
//! always-spin): wasted wakeups and sleep counts quantify the strategies.
//! The hot-path counters (injector batches, cache hits, coalesced
//! notifications) make the batched-scheduling optimizations observable.

use hf_sync::{GlobalCounter, ShardedCounter};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free `f64` gauge (bit-stored in an [`AtomicU64`]): last value
/// wins, no read-modify-write. Used for per-placement quantities like the
/// cost-weighted imbalance ratio.
#[derive(Debug)]
pub struct F64Gauge {
    bits: AtomicU64,
}

impl F64Gauge {
    /// Creates a gauge holding `v`.
    pub fn new(v: f64) -> Self {
        Self {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Stores a new value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Counters gathered by the executor's scheduling loop. Per-worker events
/// are sharded and summed on read; events raised from arbitrary threads
/// (submission path, device engine callbacks) use plain global counters.
/// Values are exact totals but not a consistent snapshot.
#[derive(Debug)]
pub struct ExecutorStats {
    /// Tasks executed (all kinds).
    pub tasks_executed: ShardedCounter,
    /// Successful steals (from peers or the injector).
    pub steals: ShardedCounter,
    /// Steal attempts, successful or not.
    pub steal_attempts: ShardedCounter,
    /// Times a worker committed to sleep.
    pub sleeps: ShardedCounter,
    /// Times a sleeping worker was woken.
    pub wakeups: ShardedCounter,
    /// Graph rounds completed (one per `run`, `n` per `run_n`). A round
    /// ends on whichever thread finishes the last node, so this is a
    /// global counter, not a per-worker one.
    pub rounds: GlobalCounter,
    /// GPU tasks dispatched as fused chain members (scheduling rounds
    /// saved by task fusion).
    pub fused: ShardedCounter,
    /// Multi-item sprays pushed to the shared injector in one batched
    /// operation (successor release / round start).
    pub injector_batches: GlobalCounter,
    /// Wakeup notifications saved by coalescing: for every batched
    /// `notify_n(k)` this grows by `k - 1` relative to issuing `k`
    /// serialized `notify_one` calls.
    pub notify_coalesced: GlobalCounter,
    /// Submissions that reused the cached freeze + placement + fusion plan
    /// of an unchanged graph.
    pub topo_cache_hits: GlobalCounter,
    /// Submissions that had to (re)run freeze + Algorithm 1 placement.
    pub topo_cache_misses: GlobalCounter,
    /// Injected device faults observed by task failures (see
    /// `hf_gpu::FaultPlan`).
    pub faults_injected: GlobalCounter,
    /// Task attempts re-scheduled by the retry policy.
    pub retries: GlobalCounter,
    /// Devices this executor has observed as lost (each device counted
    /// once).
    pub devices_lost: GlobalCounter,
    /// Submissions that finished as cancelled (`RunFuture::cancel`).
    pub cancelled: GlobalCounter,
    /// Host-to-device bytes actually copied by pull tasks (elided
    /// transfers contribute nothing).
    pub bytes_h2d: GlobalCounter,
    /// Device-to-host bytes copied by push tasks.
    pub bytes_d2h: GlobalCounter,
    /// Pull executions that skipped their H2D copy because the device
    /// buffer already held the source's current version.
    pub transfers_elided: GlobalCounter,
    /// Groups the locality policy placed onto a device already holding a
    /// warm copy of at least one of their pull buffers.
    pub placement_warm_hits: GlobalCounter,
    /// Transfer bytes placement expects its warm-hit decisions to save
    /// via elision (an estimate made at packing time).
    pub placement_est_bytes_saved: GlobalCounter,
    /// Successful steals that hit a topology-preferred victim (one whose
    /// last GPU task ran on the same device as the thief's).
    pub steals_affine: ShardedCounter,
    /// Cost-weighted imbalance (max/mean bin load) of the most recent
    /// placement computed by this executor.
    pub placement_imbalance: F64Gauge,
    /// Submissions admitted into the executor through a [`crate::Fleet`]
    /// front-end (direct `run`/`run_stream` submissions are not counted).
    pub fleet_admissions: GlobalCounter,
    /// Fleet submissions rejected with a structured error
    /// (`QuotaExceeded` / `FleetSaturated`) before admission.
    pub fleet_rejections: GlobalCounter,
}

impl ExecutorStats {
    pub(crate) fn new(workers: usize) -> Self {
        Self {
            tasks_executed: ShardedCounter::new(workers),
            steals: ShardedCounter::new(workers),
            steal_attempts: ShardedCounter::new(workers),
            sleeps: ShardedCounter::new(workers),
            wakeups: ShardedCounter::new(workers),
            rounds: GlobalCounter::new(),
            fused: ShardedCounter::new(workers),
            injector_batches: GlobalCounter::new(),
            notify_coalesced: GlobalCounter::new(),
            topo_cache_hits: GlobalCounter::new(),
            topo_cache_misses: GlobalCounter::new(),
            faults_injected: GlobalCounter::new(),
            retries: GlobalCounter::new(),
            devices_lost: GlobalCounter::new(),
            cancelled: GlobalCounter::new(),
            bytes_h2d: GlobalCounter::new(),
            bytes_d2h: GlobalCounter::new(),
            transfers_elided: GlobalCounter::new(),
            placement_warm_hits: GlobalCounter::new(),
            placement_est_bytes_saved: GlobalCounter::new(),
            steals_affine: ShardedCounter::new(workers),
            placement_imbalance: F64Gauge::new(1.0),
            fleet_admissions: GlobalCounter::new(),
            fleet_rejections: GlobalCounter::new(),
        }
    }

    /// Resets every counter (between benchmark phases).
    pub fn reset(&self) {
        self.tasks_executed.reset();
        self.steals.reset();
        self.steal_attempts.reset();
        self.sleeps.reset();
        self.wakeups.reset();
        self.rounds.reset();
        self.fused.reset();
        self.injector_batches.reset();
        self.notify_coalesced.reset();
        self.topo_cache_hits.reset();
        self.topo_cache_misses.reset();
        self.faults_injected.reset();
        self.retries.reset();
        self.devices_lost.reset();
        self.cancelled.reset();
        self.bytes_h2d.reset();
        self.bytes_d2h.reset();
        self.transfers_elided.reset();
        self.placement_warm_hits.reset();
        self.placement_est_bytes_saved.reset();
        self.steals_affine.reset();
        self.placement_imbalance.set(1.0);
        self.fleet_admissions.reset();
        self.fleet_rejections.reset();
    }

    /// Steal success rate in `[0, 1]`; 1.0 when no attempts were made.
    pub fn steal_success_rate(&self) -> f64 {
        let attempts = self.steal_attempts.sum();
        if attempts == 0 {
            1.0
        } else {
            self.steals.sum() as f64 / attempts as f64
        }
    }

    /// Sums every counter into a plain, serializable value snapshot.
    /// Each counter read is exact but the set is not atomic — take
    /// snapshots at quiescent points (after `wait()`) for consistent
    /// cross-counter ratios.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            tasks_executed: self.tasks_executed.sum(),
            steals: self.steals.sum(),
            steal_attempts: self.steal_attempts.sum(),
            steal_success_rate: self.steal_success_rate(),
            sleeps: self.sleeps.sum(),
            wakeups: self.wakeups.sum(),
            rounds: self.rounds.sum(),
            fused: self.fused.sum(),
            injector_batches: self.injector_batches.sum(),
            notify_coalesced: self.notify_coalesced.sum(),
            topo_cache_hits: self.topo_cache_hits.sum(),
            topo_cache_misses: self.topo_cache_misses.sum(),
            faults_injected: self.faults_injected.sum(),
            retries: self.retries.sum(),
            devices_lost: self.devices_lost.sum(),
            cancelled: self.cancelled.sum(),
            bytes_h2d: self.bytes_h2d.sum(),
            bytes_d2h: self.bytes_d2h.sum(),
            transfers_elided: self.transfers_elided.sum(),
            placement_warm_hits: self.placement_warm_hits.sum(),
            placement_est_bytes_saved: self.placement_est_bytes_saved.sum(),
            steals_affine: self.steals_affine.sum(),
            placement_imbalance: self.placement_imbalance.get(),
            fleet_admissions: self.fleet_admissions.sum(),
            fleet_rejections: self.fleet_rejections.sum(),
            inflight_tasks: 0,
            queue_depth: 0,
        }
    }
}

/// Plain-value copy of [`ExecutorStats`] taken by
/// [`ExecutorStats::snapshot`]: serializable (JSON via `serde`),
/// comparable, and detached from the live counters — suitable for
/// logging, metric export, and before/after diffing in benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct StatsSnapshot {
    /// Tasks executed (all kinds, fused members included).
    pub tasks_executed: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal attempts, successful or not.
    pub steal_attempts: u64,
    /// `steals / steal_attempts` (1.0 when no attempts).
    pub steal_success_rate: f64,
    /// Times a worker committed to sleep.
    pub sleeps: u64,
    /// Times a sleeping worker was woken.
    pub wakeups: u64,
    /// Graph rounds completed.
    pub rounds: u64,
    /// GPU tasks dispatched as fused chain members.
    pub fused: u64,
    /// Multi-item injector sprays.
    pub injector_batches: u64,
    /// Wakeup notifications saved by coalescing.
    pub notify_coalesced: u64,
    /// Cached freeze/placement/fusion plan reuses.
    pub topo_cache_hits: u64,
    /// Submissions that recomputed freeze + placement.
    pub topo_cache_misses: u64,
    /// Injected device faults observed by task failures.
    pub faults_injected: u64,
    /// Task attempts re-scheduled by the retry policy.
    pub retries: u64,
    /// Devices observed as lost (each counted once per executor).
    pub devices_lost: u64,
    /// Submissions that finished as cancelled.
    pub cancelled: u64,
    /// Host-to-device bytes actually copied (elisions excluded).
    pub bytes_h2d: u64,
    /// Device-to-host bytes copied.
    pub bytes_d2h: u64,
    /// Pull executions that skipped their H2D copy via residency.
    pub transfers_elided: u64,
    /// Groups placed warm by the locality policy.
    pub placement_warm_hits: u64,
    /// Transfer bytes placement estimated its warm hits would save.
    pub placement_est_bytes_saved: u64,
    /// Successful steals from topology-preferred victims.
    pub steals_affine: u64,
    /// Cost-weighted imbalance (max/mean) of the latest placement.
    pub placement_imbalance: f64,
    /// Submissions admitted through a [`crate::Fleet`] front-end.
    pub fleet_admissions: u64,
    /// Fleet submissions rejected before admission (quota/saturation).
    pub fleet_rejections: u64,
    /// Task bodies executing on workers at snapshot time. Live gauge
    /// filled by `Executor::snapshot`; `ExecutorStats::snapshot` (no
    /// executor in hand) leaves it at zero.
    pub inflight_tasks: u64,
    /// Tokens waiting in the injector plus all worker deques at snapshot
    /// time. Live gauge filled by `Executor::snapshot`; zero from
    /// `ExecutorStats::snapshot`. Together with `inflight_tasks` this
    /// makes watchdog no-progress detection externally visible: stuck
    /// runs show a non-draining queue with zero in-flight bodies.
    pub queue_depth: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_all() {
        let s = ExecutorStats::new(2);
        s.tasks_executed.incr(0);
        s.steals.incr(1);
        s.rounds.incr();
        s.injector_batches.incr();
        s.topo_cache_hits.incr();
        s.reset();
        assert_eq!(s.tasks_executed.sum(), 0);
        assert_eq!(s.steals.sum(), 0);
        assert_eq!(s.rounds.sum(), 0);
        assert_eq!(s.injector_batches.sum(), 0);
        assert_eq!(s.topo_cache_hits.sum(), 0);
        assert_eq!(s.steal_success_rate(), 1.0);
    }

    #[test]
    fn success_rate() {
        let s = ExecutorStats::new(1);
        s.steal_attempts.add(0, 10);
        s.steals.add(0, 4);
        assert!((s.steal_success_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn snapshot_copies_counters_and_serializes() {
        let s = ExecutorStats::new(2);
        s.tasks_executed.add(0, 5);
        s.tasks_executed.add(1, 2);
        s.steal_attempts.add(0, 4);
        s.steals.add(0, 1);
        s.rounds.incr();
        let snap = s.snapshot();
        assert_eq!(snap.tasks_executed, 7);
        assert_eq!(snap.rounds, 1);
        assert!((snap.steal_success_rate - 0.25).abs() < 1e-12);
        // Detached from the live counters.
        s.tasks_executed.incr(0);
        assert_eq!(snap.tasks_executed, 7);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"tasks_executed\":7"));
        assert!(json.contains("\"topo_cache_misses\":0"));
    }

    #[test]
    fn data_movement_counters_snapshot() {
        let s = ExecutorStats::new(1);
        s.bytes_h2d.add(1024);
        s.bytes_d2h.add(512);
        s.transfers_elided.add(9);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_h2d, 1024);
        assert_eq!(snap.bytes_d2h, 512);
        assert_eq!(snap.transfers_elided, 9);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"transfers_elided\":9"));
    }

    #[test]
    fn placement_counters_snapshot_and_reset() {
        let s = ExecutorStats::new(2);
        s.placement_warm_hits.add(4);
        s.placement_est_bytes_saved.add(65536);
        s.steals_affine.incr(1);
        s.placement_imbalance.set(1.75);
        let snap = s.snapshot();
        assert_eq!(snap.placement_warm_hits, 4);
        assert_eq!(snap.placement_est_bytes_saved, 65536);
        assert_eq!(snap.steals_affine, 1);
        assert!((snap.placement_imbalance - 1.75).abs() < 1e-12);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"placement_warm_hits\":4"));
        s.reset();
        assert_eq!(s.placement_warm_hits.sum(), 0);
        assert_eq!(s.placement_est_bytes_saved.sum(), 0);
        assert_eq!(s.steals_affine.sum(), 0);
        assert_eq!(s.placement_imbalance.get(), 1.0);
    }

    #[test]
    fn f64_gauge_round_trips() {
        let g = F64Gauge::new(0.0);
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn fault_counters_snapshot_and_reset() {
        let s = ExecutorStats::new(1);
        s.faults_injected.add(3);
        s.retries.add(2);
        s.devices_lost.incr();
        s.cancelled.incr();
        let snap = s.snapshot();
        assert_eq!(snap.faults_injected, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.devices_lost, 1);
        assert_eq!(snap.cancelled, 1);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"devices_lost\":1"));
        s.reset();
        assert_eq!(s.faults_injected.sum(), 0);
        assert_eq!(s.bytes_h2d.sum(), 0);
        assert_eq!(s.retries.sum(), 0);
        assert_eq!(s.devices_lost.sum(), 0);
        assert_eq!(s.cancelled.sum(), 0);
    }
}
