//! Placement database: layout grid, cells, nets, wirelength.
//!
//! The paper places `bigblue4` (2.2M cells, 2.2M nets), a proprietary
//! ISPD benchmark. [`PlacementDb::synthesize`] generates circuits with the
//! same statistics that drive the experiment: a legal row/site grid, unit
//! cells, 2–5-pin nets with strong spatial locality, parameterized to any
//! size. The objective is half-perimeter wirelength (HPWL).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One standard cell occupying a single site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Site x-coordinate.
    pub x: u32,
    /// Row index.
    pub y: u32,
    /// Cell is fixed (not movable by detailed placement).
    pub fixed: bool,
}

/// A multi-pin net over cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Cells connected by this net.
    pub pins: Vec<u32>,
}

/// Parameters for [`PlacementDb::synthesize`].
#[derive(Debug, Clone, Copy)]
pub struct PlacementConfig {
    /// Number of movable cells (bigblue4: 2.2M).
    pub num_cells: usize,
    /// Number of nets (~= cells for bigblue4).
    pub num_nets: usize,
    /// Layout utilization (cells / sites).
    pub utilization: f64,
    /// Mean net locality radius in sites.
    pub locality: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            num_cells: 5_000,
            num_nets: 5_000,
            utilization: 0.7,
            locality: 12,
            seed: 0xB16B1E4,
        }
    }
}

/// The placement database.
#[derive(Debug, Clone)]
pub struct PlacementDb {
    /// All cells (movable and fixed).
    pub cells: Vec<Cell>,
    /// All nets.
    pub nets: Vec<Net>,
    /// Nets incident to each cell.
    pub nets_of: Vec<Vec<u32>>,
    /// Rows in the layout.
    pub num_rows: u32,
    /// Sites per row.
    pub sites_per_row: u32,
}

impl PlacementDb {
    /// Generates a legal synthetic placement. Deterministic per seed.
    pub fn synthesize(cfg: &PlacementConfig) -> PlacementDb {
        assert!(cfg.num_cells >= 4, "need at least 4 cells");
        assert!(
            (0.05..=1.0).contains(&cfg.utilization),
            "utilization out of range"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Near-square grid with the requested utilization.
        let sites_needed = (cfg.num_cells as f64 / cfg.utilization).ceil() as u64;
        let side = (sites_needed as f64).sqrt().ceil() as u32;
        let (num_rows, sites_per_row) = (side, side);

        // Legal initial placement: scatter cells over distinct sites.
        let total_sites = (num_rows as u64 * sites_per_row as u64) as usize;
        let mut site_perm: Vec<usize> = (0..total_sites).collect();
        // Partial Fisher-Yates: we only need the first num_cells picks.
        for i in 0..cfg.num_cells {
            let j = rng.gen_range(i..total_sites);
            site_perm.swap(i, j);
        }
        let mut cells: Vec<Cell> = site_perm[..cfg.num_cells]
            .iter()
            .map(|&s| Cell {
                x: (s % sites_per_row as usize) as u32,
                y: (s / sites_per_row as usize) as u32,
                fixed: false,
            })
            .collect();
        // A small fraction of fixed cells (pads/macros pins).
        let n_fixed = cfg.num_cells / 50;
        for c in cells.iter_mut().take(n_fixed) {
            c.fixed = true;
        }

        // Nets: pick a pivot cell, then 1-4 more cells near it.
        let mut nets = Vec::with_capacity(cfg.num_nets);
        let mut nets_of: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_cells];
        for ni in 0..cfg.num_nets {
            let pivot = rng.gen_range(0..cfg.num_cells);
            let degree = rng.gen_range(2..=5usize);
            let mut pins = vec![pivot as u32];
            let (px, py) = (cells[pivot].x as i64, cells[pivot].y as i64);
            let mut guard = 0;
            while pins.len() < degree && guard < 50 {
                guard += 1;
                // Local candidate: jitter around the pivot, snapped to a
                // real cell by sampling and checking distance.
                let cand = rng.gen_range(0..cfg.num_cells) as u32;
                let (cx, cy) = (cells[cand as usize].x as i64, cells[cand as usize].y as i64);
                let near = (cx - px).abs() + (cy - py).abs() <= cfg.locality as i64 * 4;
                let accept = near || rng.gen_bool(0.05);
                if accept && !pins.contains(&cand) {
                    pins.push(cand);
                }
            }
            if pins.len() < 2 {
                // Fall back to any second pin.
                let c2 = ((pivot + 1 + ni) % cfg.num_cells) as u32;
                if !pins.contains(&c2) {
                    pins.push(c2);
                }
            }
            for &p in &pins {
                nets_of[p as usize].push(nets.len() as u32);
            }
            nets.push(Net { pins });
        }

        PlacementDb {
            cells,
            nets,
            nets_of,
            num_rows,
            sites_per_row,
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// HPWL of one net under the current positions.
    pub fn net_hpwl(&self, net: &Net) -> u64 {
        let mut min_x = u32::MAX;
        let mut max_x = 0u32;
        let mut min_y = u32::MAX;
        let mut max_y = 0u32;
        for &p in &net.pins {
            let c = &self.cells[p as usize];
            min_x = min_x.min(c.x);
            max_x = max_x.max(c.x);
            min_y = min_y.min(c.y);
            max_y = max_y.max(c.y);
        }
        (max_x - min_x) as u64 + (max_y - min_y) as u64
    }

    /// HPWL of one net with cell `cell` hypothetically at `(x, y)`.
    pub fn net_hpwl_with(&self, net: &Net, cell: u32, x: u32, y: u32) -> u64 {
        let mut min_x = u32::MAX;
        let mut max_x = 0u32;
        let mut min_y = u32::MAX;
        let mut max_y = 0u32;
        for &p in &net.pins {
            let (cx, cy) = if p == cell {
                (x, y)
            } else {
                let c = &self.cells[p as usize];
                (c.x, c.y)
            };
            min_x = min_x.min(cx);
            max_x = max_x.max(cx);
            min_y = min_y.min(cy);
            max_y = max_y.max(cy);
        }
        (max_x - min_x) as u64 + (max_y - min_y) as u64
    }

    /// Total HPWL over all nets — the detailed-placement objective.
    pub fn total_hpwl(&self) -> u64 {
        self.nets.iter().map(|n| self.net_hpwl(n)).sum()
    }

    /// Cost of placing `cell` at `(x, y)`: summed HPWL of its incident
    /// nets with the move applied.
    pub fn cell_cost_at(&self, cell: u32, x: u32, y: u32) -> u64 {
        self.nets_of[cell as usize]
            .iter()
            .map(|&ni| self.net_hpwl_with(&self.nets[ni as usize], cell, x, y))
            .sum()
    }

    /// Verifies legality: every position on-grid and no two cells share a
    /// site.
    pub fn check_legal(&self) -> Result<(), String> {
        let mut used = std::collections::HashSet::new();
        for (i, c) in self.cells.iter().enumerate() {
            if c.x >= self.sites_per_row || c.y >= self.num_rows {
                return Err(format!("cell {i} off grid at ({}, {})", c.x, c.y));
            }
            if !used.insert((c.x, c.y)) {
                return Err(format!("site ({}, {}) double-occupied", c.x, c.y));
            }
        }
        Ok(())
    }

    /// Two cells *conflict* (cannot move in the same independent set)
    /// when they share a net.
    pub fn conflict_adjacency(&self) -> (Vec<u32>, Vec<u32>) {
        // CSR over cells; neighbors = cells sharing any net.
        let n = self.num_cells();
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); n];
        for net in &self.nets {
            for (i, &a) in net.pins.iter().enumerate() {
                for &b in &net.pins[i + 1..] {
                    sets[a as usize].insert(b);
                    sets[b as usize].insert(a);
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for s in &sets {
            neighbors.extend(s.iter().copied());
            offsets.push(neighbors.len() as u32);
        }
        (offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_legal_and_deterministic() {
        let cfg = PlacementConfig {
            num_cells: 2000,
            num_nets: 2500,
            ..Default::default()
        };
        let a = PlacementDb::synthesize(&cfg);
        let b = PlacementDb::synthesize(&cfg);
        a.check_legal().unwrap();
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.nets.len(), 2500);
        for net in &a.nets {
            assert!(net.pins.len() >= 2 && net.pins.len() <= 5);
        }
    }

    #[test]
    fn hpwl_basics() {
        let db = PlacementDb {
            cells: vec![
                Cell { x: 0, y: 0, fixed: false },
                Cell { x: 3, y: 4, fixed: false },
                Cell { x: 1, y: 1, fixed: false },
            ],
            nets: vec![Net { pins: vec![0, 1, 2] }],
            nets_of: vec![vec![0], vec![0], vec![0]],
            num_rows: 10,
            sites_per_row: 10,
        };
        assert_eq!(db.net_hpwl(&db.nets[0]), 3 + 4);
        assert_eq!(db.total_hpwl(), 7);
        // Moving cell 1 to (0,0) shrinks the box to the other two pins.
        assert_eq!(db.net_hpwl_with(&db.nets[0], 1, 0, 0), 1 + 1);
        assert_eq!(db.cell_cost_at(1, 0, 0), 2);
    }

    #[test]
    fn conflict_adjacency_is_symmetric() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 300,
            num_nets: 400,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        assert_eq!(off.len(), db.num_cells() + 1);
        let has = |a: usize, b: u32| {
            nbr[off[a] as usize..off[a + 1] as usize].contains(&b)
        };
        for a in 0..db.num_cells() {
            for &b in &nbr[off[a] as usize..off[a + 1] as usize] {
                assert!(has(b as usize, a as u32), "asymmetric edge {a}-{b}");
                assert_ne!(b as usize, a, "self loop");
            }
        }
    }

    #[test]
    fn locality_keeps_nets_short() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 4000,
            num_nets: 4000,
            locality: 8,
            ..Default::default()
        });
        let mean: f64 =
            db.nets.iter().map(|n| db.net_hpwl(n) as f64).sum::<f64>() / db.nets.len() as f64;
        let diag = (db.sites_per_row + db.num_rows) as f64;
        assert!(
            mean < diag * 0.6,
            "nets are not local: mean {mean:.1} vs diag {diag:.1}"
        );
    }
}
