//! The multi-view timing-correlation workload — the paper's Figure 5
//! task graph, generalized to V views.
//!
//! Per view: a CPU task generates the analysis dataset (STA sweep,
//! critical-path extraction, CPPR credits, feature standardization);
//! pull tasks move features/labels/weights to a GPU; a kernel task fits a
//! logistic-regression model; a push task returns the weights; a CPU task
//! computes per-view statistics. A final synchronization task correlates
//! the per-view models into one report (§IV-A).

use crate::cppr::{apply_cppr, ClockTree};
use crate::netlist::Circuit;
use crate::paths::k_critical_paths;
use crate::regression::{self, NUM_FEATURES};
use crate::views::View;
use hf_core::data::HostVec;
use hf_core::{Executor, Heteroflow};
use parking_lot::Mutex;
use std::sync::Arc;

/// Workload parameters for the correlation experiment.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationConfig {
    /// Critical paths extracted per view (the per-view sample size; the
    /// paper controls it "such that each analysis view takes
    /// approximately the same runtime").
    pub paths_per_view: usize,
    /// Gradient-descent epochs per view.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Slack margin defining the "violating" label. Ignored when
    /// `auto_margin` is set.
    pub slack_margin: f32,
    /// Label against the per-view *median* path slack instead of the
    /// fixed margin, keeping the two classes balanced regardless of the
    /// view's corner and clock.
    pub auto_margin: bool,
    /// Clock-tree segment delay for CPPR.
    pub clock_seg_delay: f32,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        Self {
            paths_per_view: 256,
            epochs: 50,
            learning_rate: 0.3,
            slack_margin: 0.0,
            auto_margin: true,
            clock_seg_delay: 0.04,
        }
    }
}

/// Result of the synchronization step.
#[derive(Debug, Clone, Default)]
pub struct CorrelationReport {
    /// Fitted weights per view.
    pub weights: Vec<Vec<f32>>,
    /// Training accuracy per view.
    pub accuracy: Vec<f64>,
    /// Pairwise Pearson correlations of view weights (upper triangle,
    /// row-major).
    pub pairwise: Vec<f64>,
    /// Mean pairwise correlation.
    pub mean_correlation: f64,
}

/// The labeling margin for one view's dataset: the median path slack
/// under `auto_margin`, else the configured constant.
pub(crate) fn effective_margin(paths: &[crate::paths::TimingPath], cfg: &CorrelationConfig) -> f32 {
    if !cfg.auto_margin || paths.is_empty() {
        return cfg.slack_margin;
    }
    let mut slacks: Vec<f32> = paths.iter().map(|p| p.slack).collect();
    slacks.sort_by(|a, b| a.partial_cmp(b).expect("finite slacks"));
    slacks[slacks.len() / 2]
}

/// Handles to the built graph (for inspection/DOT) plus the report slot
/// filled by the final task.
pub struct CorrelationGraph {
    /// The Heteroflow graph, ready to run.
    pub graph: Heteroflow,
    /// Filled by the `report` task when the graph finishes.
    pub report: Arc<Mutex<CorrelationReport>>,
}

/// Builds the Fig 5 task graph for `views.len()` views over `circuit`.
pub fn build_correlation_graph(
    circuit: Arc<Circuit>,
    views: &[View],
    cfg: CorrelationConfig,
) -> CorrelationGraph {
    let g = Heteroflow::new("timing-correlation");
    let report = Arc::new(Mutex::new(CorrelationReport::default()));

    // Shared per-view result storage read by the final report task.
    let all_weights: Arc<Vec<HostVec<f32>>> =
        Arc::new((0..views.len()).map(|_| HostVec::new()).collect());
    let all_stats: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut stats_tasks = Vec::with_capacity(views.len());

    for (vi, view) in views.iter().enumerate() {
        let features: HostVec<f32> = HostVec::new();
        let labels: HostVec<f32> = HostVec::new();
        let weights = all_weights[vi].clone();

        // 1) CPU: generate the per-view dataset.
        let gen = g.host(&format!("gen_v{vi}"), {
            let (circuit, view, features, labels, weights) = (
                Arc::clone(&circuit),
                view.clone(),
                features.clone(),
                labels.clone(),
                weights.clone(),
            );
            move || {
                let mut paths = k_critical_paths(&circuit, &view, cfg.paths_per_view);
                let tree = ClockTree::build(&circuit, cfg.clock_seg_delay);
                let credits = apply_cppr(&mut paths, &tree, &view);
                let margin = effective_margin(&paths, &cfg);
                let (x, y) = regression::make_dataset(&paths, &credits, margin);
                *features.write() = x;
                *labels.write() = y;
                *weights.write() = vec![0.0f32; NUM_FEATURES + 1];
            }
        });

        // 2) H2D pulls (sizes bind at execution — stateful).
        let pull_x = g.pull(&format!("pull_x_v{vi}"), &features);
        let pull_y = g.pull(&format!("pull_y_v{vi}"), &labels);
        let pull_w = g.pull(&format!("pull_w_v{vi}"), &weights);

        // 3) GPU: logistic regression over the pulled data.
        let kernel = g.kernel(
            &format!("regress_v{vi}"),
            &[&pull_x, &pull_y, &pull_w],
            regression::logistic_kernel(NUM_FEATURES, cfg.epochs, cfg.learning_rate),
        );
        kernel
            .cover(cfg.paths_per_view, 256)
            .work_units((cfg.paths_per_view * cfg.epochs * NUM_FEATURES) as f64);

        // 4) D2H push of the fitted weights.
        let push_w = g.push(&format!("push_w_v{vi}"), &pull_w, &weights);

        // 5) CPU: per-view statistics.
        let stats = g.host(&format!("stats_v{vi}"), {
            let (features, labels, weights, all_stats) = (
                features.clone(),
                labels.clone(),
                weights.clone(),
                Arc::clone(&all_stats),
            );
            move || {
                let x = features.read();
                let y = labels.read();
                let w = weights.read();
                let acc = regression::accuracy(&w, &x, &y, NUM_FEATURES);
                all_stats.lock().push((vi, acc));
            }
        });

        // Explicit dependencies (Heteroflow never adds implicit ones).
        gen.precede_all(&[&pull_x, &pull_y, &pull_w]);
        kernel.succeed_all(&[&pull_x, &pull_y, &pull_w]);
        kernel.precede(&push_w);
        push_w.precede(&stats);
        stats_tasks.push(stats);
    }

    // 6) Synchronization: combine all views into the report.
    let nviews = views.len();
    let report_task = g.host("report", {
        let (all_weights, all_stats, report) = (
            Arc::clone(&all_weights),
            Arc::clone(&all_stats),
            Arc::clone(&report),
        );
        move || {
            let weights: Vec<Vec<f32>> =
                all_weights.iter().map(|w| w.to_vec()).collect();
            let mut acc = vec![0.0f64; nviews];
            for &(vi, a) in all_stats.lock().iter() {
                acc[vi] = a;
            }
            let mut pairwise = Vec::new();
            for i in 0..nviews {
                for j in (i + 1)..nviews {
                    pairwise.push(regression::pearson(&weights[i], &weights[j]));
                }
            }
            let mean = if pairwise.is_empty() {
                1.0
            } else {
                pairwise.iter().sum::<f64>() / pairwise.len() as f64
            };
            *report.lock() = CorrelationReport {
                weights,
                accuracy: acc,
                pairwise,
                mean_correlation: mean,
            };
        }
    });
    for s in &stats_tasks {
        s.precede(&report_task);
    }

    CorrelationGraph { graph: g, report }
}

/// Convenience: builds and runs the workload, returning the report.
pub fn run_correlation(
    executor: &Executor,
    circuit: Arc<Circuit>,
    views: &[View],
    cfg: CorrelationConfig,
) -> Result<CorrelationReport, hf_core::HfError> {
    let built = build_correlation_graph(circuit, views, cfg);
    executor.run(&built.graph).wait()?;
    let r = built.report.lock().clone();
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::views::make_views;
    use hf_core::TaskKind;

    fn small_circuit() -> Arc<Circuit> {
        Arc::new(Circuit::synthesize(&CircuitConfig {
            num_gates: 600,
            ..Default::default()
        }))
    }

    #[test]
    fn graph_has_fig5_structure() {
        let views = make_views(2, 0.4);
        let built = build_correlation_graph(small_circuit(), &views, CorrelationConfig::default());
        let info = built.graph.info().unwrap();
        // Per view: 1 gen + 3 pulls + 1 kernel + 1 push + 1 stats = 7,
        // plus 1 report.
        assert_eq!(info.num_tasks(), 2 * 7 + 1);
        assert_eq!(info.count_kind(TaskKind::Pull), 6);
        assert_eq!(info.count_kind(TaskKind::Kernel), 2);
        assert_eq!(info.count_kind(TaskKind::Push), 2);
        assert_eq!(info.count_kind(TaskKind::Host), 5);
        // gen -> 3 pulls -> kernel -> push -> stats -> report.
        assert_eq!(info.critical_path_len(), 6);
        // The report task depends on every view's stats.
        let report = info
            .nodes
            .iter()
            .position(|n| n.name == "report")
            .expect("report exists");
        assert_eq!(info.nodes[report].num_deps, 2);
    }

    #[test]
    fn end_to_end_correlation_runs() {
        let views = make_views(3, 0.4);
        let ex = Executor::new(2, 2);
        let report = run_correlation(
            &ex,
            small_circuit(),
            &views,
            CorrelationConfig {
                paths_per_view: 64,
                epochs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.weights.len(), 3);
        assert_eq!(report.accuracy.len(), 3);
        assert_eq!(report.pairwise.len(), 3); // C(3,2)
        for w in &report.weights {
            assert_eq!(w.len(), NUM_FEATURES + 1);
            assert!(w.iter().any(|&v| v != 0.0), "weights were never trained");
        }
        for &a in &report.accuracy {
            assert!((0.0..=1.0).contains(&a));
        }
        assert!(report.mean_correlation.abs() <= 1.0 + 1e-9);
    }

    /// The GPU-trained weights must match the CPU reference bit-for-bit
    /// path (same float operations in the same order).
    #[test]
    fn kernel_matches_cpu_reference() {
        let circuit = small_circuit();
        let views = make_views(1, 0.4);
        let cfg = CorrelationConfig {
            paths_per_view: 64,
            epochs: 25,
            ..Default::default()
        };
        let ex = Executor::new(1, 1);
        let report = run_correlation(&ex, Arc::clone(&circuit), &views, cfg).unwrap();

        // Recompute the dataset on the CPU and train with the reference.
        let mut paths = k_critical_paths(&circuit, &views[0], cfg.paths_per_view);
        let tree = ClockTree::build(&circuit, cfg.clock_seg_delay);
        let credits = apply_cppr(&mut paths, &tree, &views[0]);
        let margin = effective_margin(&paths, &cfg);
        let (x, y) = regression::make_dataset(&paths, &credits, margin);
        let w_ref = regression::train_cpu(&x, &y, NUM_FEATURES, cfg.epochs, cfg.learning_rate);

        assert_eq!(report.weights[0].len(), w_ref.len());
        for (a, b) in report.weights[0].iter().zip(&w_ref) {
            assert!(
                (a - b).abs() < 1e-4,
                "GPU {a} vs CPU {b} — kernel diverged from reference"
            );
        }
    }
}
