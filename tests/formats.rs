//! Format round-trips through the filesystem, feeding the real
//! applications — the "load a benchmark, run the tool" path a user hits
//! first.

use heteroflow::place::{parse_bookshelf, write_bookshelf, PlacementConfig, PlacementDb};
use heteroflow::prelude::*;
use heteroflow::timing::views::make_views;
use heteroflow::timing::{parse_bench, run_sta, write_bench, Circuit, CircuitConfig};
use std::sync::Arc;

#[test]
fn bench_file_through_disk_and_parallel_sta() {
    let dir = std::env::temp_dir().join("hf_fmt_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("circuit.bench");

    let orig = Circuit::synthesize(&CircuitConfig {
        num_gates: 800,
        ..Default::default()
    });
    std::fs::write(&path, write_bench(&orig)).expect("write netlist");
    let text = std::fs::read_to_string(&path).expect("read back");
    let loaded = parse_bench(&text).expect("parse own file");

    // The loaded circuit times identically (modulo per-instance variation
    // the format doesn't carry) under both engines.
    let view = &make_views(1, 0.5)[0];
    let seq = run_sta(&loaded, view);
    let ex = Executor::new(2, 0);
    let par =
        heteroflow::timing::parallel::run_sta_parallel(&ex, &Arc::new(loaded), view, 64)
            .expect("parallel sweep");
    assert!((par.wns - seq.wns).abs() < 1e-5);
    for (a, b) in par.arrival.iter().zip(&seq.arrival) {
        assert!((a - b).abs() < 1e-5);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bookshelf_through_disk_and_detailed_placement() {
    let dir = std::env::temp_dir().join("hf_fmt_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    let orig = PlacementDb::synthesize(&PlacementConfig {
        num_cells: 300,
        num_nets: 350,
        ..Default::default()
    });
    let (nodes, pl, nets) = write_bookshelf(&orig);
    for (name, content) in [("t.nodes", &nodes), ("t.pl", &pl), ("t.nets", &nets)] {
        std::fs::write(dir.join(name), content).expect("write bookshelf part");
    }
    let read = |n: &str| std::fs::read_to_string(dir.join(n)).expect("read back");
    let db = parse_bookshelf(&read("t.nodes"), &read("t.pl"), &read("t.nets"))
        .expect("parse own files");
    assert_eq!(db.total_hpwl(), orig.total_hpwl());

    // Runs through the real Heteroflow detailed placer.
    let ex = Executor::new(2, 1);
    let out = heteroflow::place::detailed_place(
        &ex,
        db,
        heteroflow::place::PlaceConfig {
            iterations: 2,
            ..Default::default()
        },
    )
    .expect("placement runs");
    assert!(out.hpwl_after <= out.hpwl_before);
    out.db.check_legal().expect("legal");
    for n in ["t.nodes", "t.pl", "t.nets"] {
        std::fs::remove_file(dir.join(n)).ok();
    }
}

#[test]
fn dot_dumps_are_renderable_text() {
    // Both DOT forms for a mixed graph: structurally valid digraph text.
    let g = Heteroflow::new("dots");
    let d: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let h = g.host("h", || {});
    let p = g.pull("p", &d);
    let k = g.kernel("k", &[&p], |_, _| {});
    h.precede(&p);
    p.precede(&k);
    let plain = g.dump();
    let placed = g.dump_placed(2).expect("placeable");
    for dot in [&plain, &placed] {
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
    assert!(placed.contains("cluster_gpu"));
}
