//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small API surface it actually uses — `Mutex`, `RwLock`, `Condvar` with
//! guard-returning (non-`Result`) lock methods — implemented over
//! `std::sync`. Poisoned locks are recovered transparently, matching
//! parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as ss;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(ss::Mutex<T>);

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<ss::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(ss::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(ss::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn inner(&self) -> &ss::MutexGuard<'a, T> {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }

    fn inner_mut(&mut self) -> &mut ss::MutexGuard<'a, T> {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

/// A condition variable paired with [`Mutex`] (parking_lot signature:
/// `wait` takes `&mut MutexGuard`).
#[derive(Default)]
pub struct Condvar(ss::Condvar);

/// Result of a timed wait: whether the timeout elapsed before a notify.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(ss::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses; returns whether the
    /// wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(ss::RwLock<T>);

/// Shared-access guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(ss::RwLockReadGuard<'a, T>);

/// Exclusive-access guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(ss::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(ss::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = 5;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 5 {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_guards() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
