//! Cross-crate integration: the two paper applications end-to-end on the
//! real executor, plus sim/real consistency.

use heteroflow::place::{detailed_place, detailed_place_sequential, PlaceConfig};
use heteroflow::prelude::*;
use heteroflow::sim::{simulate, Machine};
use heteroflow::timing::correlation::{run_correlation, CorrelationConfig};
use heteroflow::timing::views::make_views;
use heteroflow::timing::{Circuit, CircuitConfig};
use std::sync::Arc;

#[test]
fn timing_correlation_end_to_end() {
    let circuit = Arc::new(Circuit::synthesize(&CircuitConfig {
        num_gates: 1500,
        ..Default::default()
    }));
    let views = make_views(4, 0.4);
    let ex = Executor::new(2, 2);
    let report = run_correlation(
        &ex,
        circuit,
        &views,
        CorrelationConfig {
            paths_per_view: 64,
            epochs: 25,
            ..Default::default()
        },
    )
    .expect("correlation runs");
    assert_eq!(report.weights.len(), 4);
    assert_eq!(report.pairwise.len(), 6);
    // With the median-slack margin the classes are balanced and the
    // model must beat chance on its training set.
    for &a in &report.accuracy {
        assert!(a > 0.55, "accuracy {a} no better than chance");
    }
    // Views of the same circuit correlate positively.
    assert!(
        report.mean_correlation > 0.0,
        "mean correlation {}",
        report.mean_correlation
    );
}

#[test]
fn placement_end_to_end_parallel_equals_sequential() {
    let cfg = PlaceConfig {
        iterations: 2,
        ..Default::default()
    };
    let db = heteroflow::place::PlacementDb::synthesize(&heteroflow::place::PlacementConfig {
        num_cells: 500,
        num_nets: 600,
        ..Default::default()
    });
    let seq = detailed_place_sequential(db.clone(), cfg);
    let ex = Executor::new(4, 2);
    let par = detailed_place(&ex, db, cfg).expect("placement runs");
    assert_eq!(par.hpwl_trace, seq.hpwl_trace);
    assert!(par.hpwl_after <= par.hpwl_before);
    par.db.check_legal().expect("legal");
}

/// The DES model and the real executor agree on a real application graph
/// at 1 core / 1 GPU within a loose factor (costs measured vs modeled).
#[test]
fn sim_and_real_agree_on_application_graph() {
    use heteroflow::timing::correlation::build_correlation_graph;
    let circuit = Arc::new(Circuit::synthesize(&CircuitConfig {
        num_gates: 3000,
        ..Default::default()
    }));
    let views = make_views(6, 0.4);
    let cfg = CorrelationConfig {
        paths_per_view: 128,
        epochs: 100,
        ..Default::default()
    };

    // Measure the real gen cost once.
    let v0 = &views[0];
    let (_, gen_cost) = heteroflow::sim::measure(|| {
        let mut ps = heteroflow::timing::k_critical_paths(&circuit, v0, cfg.paths_per_view);
        let tree = heteroflow::timing::cppr::ClockTree::build(&circuit, cfg.clock_seg_delay);
        let credits = heteroflow::timing::cppr::apply_cppr(&mut ps, &tree, v0);
        heteroflow::timing::regression::make_dataset(&ps, &credits, 0.0)
    });

    // Real run on 1 worker, 1 GPU.
    let built = build_correlation_graph(Arc::clone(&circuit), &views, cfg);
    let ex = Executor::new(1, 1);
    let t0 = std::time::Instant::now();
    ex.run(&built.graph).wait().expect("runs");
    let real = t0.elapsed().as_secs_f64();

    // Simulated run with the measured gen cost (other host tasks are
    // negligible here).
    let info = built.graph.info().expect("acyclic");
    let r = simulate(
        &info,
        &Machine::new(1, 1),
        PlacementPolicy::BalancedLoad,
        |id| {
            if info.nodes[id].name.starts_with("gen_v") {
                gen_cost
            } else {
                heteroflow::gpu::SimDuration::from_micros(20)
            }
        },
    )
    .expect("simulates");

    // The model has no thread/dispatch noise; require agreement within
    // 10x in both directions (typically much closer) to catch gross
    // divergence without flaking on a loaded 1-core CI box.
    let ratio = real / r.makespan_secs.max(1e-9);
    assert!(
        (0.1..10.0).contains(&ratio),
        "real {real:.4}s vs sim {:.4}s",
        r.makespan_secs
    );
}
