//! Multi-tenant fleet acceptance tests: concurrent submission semantics,
//! structured quota errors, queued-cancel guarantees, retry billing,
//! deterministic weighted-fair vs FIFO admission order, and per-tenant
//! telemetry labels.

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(30);

/// A single-host-task graph that appends `label` to the shared log when
/// it executes; when `gate` is set, the task additionally spins until
/// the gate opens (so the run holds its in-flight slot).
fn logging_graph(
    label: &str,
    log: &Arc<Mutex<Vec<String>>>,
    gate: Option<Arc<AtomicBool>>,
) -> Heteroflow {
    let g = Heteroflow::new(label);
    let log = Arc::clone(log);
    let label = label.to_string();
    g.host("work", move || {
        log.lock().unwrap().push(label.clone());
        if let Some(gate) = &gate {
            while !gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    });
    g
}

/// Satellite: concurrent submission of *different* graphs from many
/// threads is safe, and `wait_for_all` entered afterwards drains every
/// one of them.
#[test]
fn multi_threaded_submission_of_different_graphs_drains() {
    let ex = Arc::new(Executor::new(4, 1));
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..4 {
        let ex = Arc::clone(&ex);
        let log = Arc::clone(&log);
        handles.push(std::thread::spawn(move || {
            let mut futs = Vec::new();
            for i in 0..8 {
                let g = logging_graph(&format!("g{t}_{i}"), &log, None);
                futs.push(ex.run(&g));
            }
            futs
        }));
    }
    let futs: Vec<RunFuture> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter thread"))
        .collect();
    // Every future above was returned before this call, so the contract
    // guarantees wait_for_all observes them all.
    ex.wait_for_all();
    for f in &futs {
        assert!(f.is_done(), "wait_for_all returned with a run still open");
        assert_eq!(f.wait(), Ok(()));
    }
    assert_eq!(log.lock().unwrap().len(), 32);
}

/// Satellite: re-submitting an **unchanged** graph concurrently from
/// many threads never yields `GraphBusy` (submissions queue on the run
/// claim); mutating the graph while a run is active does.
#[test]
fn unchanged_graph_resubmission_never_busy_mutation_is() {
    let ex = Arc::new(Executor::new(4, 1));
    let log = Arc::new(Mutex::new(Vec::new()));
    let g = logging_graph("shared", &log, None);

    let mut handles = Vec::new();
    for _ in 0..4 {
        let ex = Arc::clone(&ex);
        let g = g.clone();
        handles.push(std::thread::spawn(move || {
            (0..8).map(|_| ex.run(&g)).collect::<Vec<_>>()
        }));
    }
    for h in handles {
        for f in h.join().expect("submitter thread") {
            assert_eq!(
                f.wait_timeout(DEADLINE),
                Some(Ok(())),
                "unchanged-graph concurrent resubmission must never fail"
            );
        }
    }
    assert_eq!(log.lock().unwrap().len(), 32);

    // Mutation while a run is active is the one way to get GraphBusy.
    let gate = Arc::new(AtomicBool::new(false));
    let busy = logging_graph("busy", &log, Some(Arc::clone(&gate)));
    let running = ex.run(&busy);
    busy.host("added_mid_run", || {});
    let rejected = ex.run(&busy);
    assert_eq!(
        rejected.wait_timeout(DEADLINE),
        Some(Err(HfError::GraphBusy)),
        "mutated-while-active graph must fail with GraphBusy"
    );
    gate.store(true, Ordering::Release);
    assert_eq!(running.wait_timeout(DEADLINE), Some(Ok(())));
    ex.wait_for_all();
}

/// Satellite: quota exhaustion surfaces as a structured error at submit
/// time — never a hang, never a silent drop.
#[test]
fn gpu_budget_exhaustion_returns_quota_exceeded() {
    let fleet = Fleet::new(Executor::new(2, 1), FleetConfig::default());
    // Three host tasks at the 1000 ns default modeled cost => 3000 ns
    // per run; a 7000 ns budget admits two runs and rejects the third.
    let tenant = fleet.register(
        "metered",
        TenantConfig {
            gpu_ns_budget: Some(7_000),
            ..TenantConfig::default()
        },
    );
    let g = Heteroflow::new("three_tasks");
    for i in 0..3 {
        g.host(&format!("t{i}"), || {});
    }
    let f1 = fleet.submit(&tenant, &g).expect("within budget");
    let f2 = fleet.submit(&tenant, &g).expect("within budget");
    let err = fleet.submit(&tenant, &g).expect_err("budget exhausted");
    match &err {
        HfError::QuotaExceeded {
            tenant: t,
            resource,
            needed,
            limit,
        } => {
            assert_eq!(t, "metered");
            assert_eq!(resource, "gpu_ns_budget");
            assert_eq!((*needed, *limit), (9_000, 7_000));
        }
        other => panic!("expected QuotaExceeded, got {other}"),
    }
    assert_eq!(err.tenant(), Some("metered"));
    assert_eq!(f1.wait_timeout(DEADLINE), Some(Ok(())));
    assert_eq!(f2.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    let snap = fleet.snapshot();
    let ts = &snap.tenants[0];
    assert_eq!(ts.rejected_quota, 1);
    assert_eq!(ts.completed, 2);
    assert_eq!(ts.gpu_ns_charged, 6_000);
}

/// Satellite: a full tenant queue rejects with `FleetSaturated` instead
/// of parking unboundedly.
#[test]
fn queue_bound_returns_fleet_saturated() {
    let fleet = Fleet::new(
        Executor::new(2, 1),
        FleetConfig {
            max_inflight: 1,
            ..FleetConfig::default()
        },
    );
    let tenant = fleet.register(
        "bounded",
        TenantConfig {
            max_queued: 1,
            ..TenantConfig::default()
        },
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = logging_graph("blocker", &log, Some(Arc::clone(&gate)));
    let quick = logging_graph("quick", &log, None);

    let f_block = fleet.submit(&tenant, &blocker).expect("admitted");
    // Wait for the blocker to actually occupy the in-flight slot.
    while log.lock().unwrap().is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let f_queued = fleet.submit(&tenant, &quick).expect("parks in queue");
    let err = fleet.submit(&tenant, &quick).expect_err("queue full");
    match &err {
        HfError::FleetSaturated { tenant: t, queued, limit } => {
            assert_eq!(t, "bounded");
            assert_eq!((*queued, *limit), (1, 1));
        }
        other => panic!("expected FleetSaturated, got {other}"),
    }
    gate.store(true, Ordering::Release);
    assert_eq!(f_block.wait_timeout(DEADLINE), Some(Ok(())));
    assert_eq!(f_queued.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    assert_eq!(fleet.snapshot().tenants[0].rejected_saturated, 1);
}

/// Satellite: cancelling a still-queued submission settles its future
/// with `Cancelled` and the run never dispatches.
#[test]
fn cancelled_queued_submission_never_dispatches() {
    let fleet = Fleet::new(
        Executor::new(2, 1),
        FleetConfig {
            max_inflight: 1,
            ..FleetConfig::default()
        },
    );
    let tenant = fleet.register("t", TenantConfig::default());
    let log = Arc::new(Mutex::new(Vec::new()));
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = logging_graph("blocker", &log, Some(Arc::clone(&gate)));
    let victim = logging_graph("victim", &log, None);

    let f_block = fleet.submit(&tenant, &blocker).expect("admitted");
    while log.lock().unwrap().is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let f_victim = fleet.submit(&tenant, &victim).expect("parks in queue");
    f_victim.cancel();
    gate.store(true, Ordering::Release);
    assert_eq!(
        f_victim.wait_timeout(DEADLINE),
        Some(Err(HfError::Cancelled)),
        "queued-then-cancelled future settles Cancelled"
    );
    assert_eq!(f_block.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    let runs = log.lock().unwrap().clone();
    assert_eq!(runs, vec!["blocker".to_string()], "victim never dispatched");
    let ts = &fleet.snapshot().tenants[0];
    assert_eq!(ts.cancelled_queued, 1);
    assert_eq!(ts.completed, 1);
    // The cancelled entry refunded its budget reservation: only the
    // blocker's single 1000 ns task remains charged.
    assert_eq!(ts.gpu_ns_charged, 1_000);
}

/// Satellite: retry-policy re-dispatches under injected device faults
/// are billed to the tenant that owns the faulting run — a co-tenant
/// doing host-only work is never charged.
#[test]
fn fault_retries_billed_to_owning_tenant() {
    let ex = Executor::builder(2, 1)
        .retry_policy(RetryPolicy::new(3))
        .build();
    ex.gpu_runtime().set_fault_plan(Some(
        FaultPlan::seeded(0x7e57_b111).fail(FaultSite::Kernel, 1.0).max_faults(2),
    ));
    let fleet = Fleet::new(ex, FleetConfig::default());
    let gpu_tenant = fleet.register("gpu", TenantConfig::default());
    let host_tenant = fleet.register("host", TenantConfig::default());

    let data: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
    let g = Heteroflow::new("faulty_kernel");
    let p = g.pull("pull", &data);
    let k = g.kernel("double", &[&p], |cfg, args| {
        let xs = args.slice_mut::<i32>(0).unwrap();
        for t in cfg.threads() {
            if t < xs.len() {
                xs[t] *= 2;
            }
        }
    });
    k.block_x(64);
    let s = g.push("push", &p, &data);
    p.precede(&k);
    k.precede(&s);

    let quiet = Heteroflow::new("host_only");
    quiet.host("noop", || {});

    let f_gpu = fleet.submit(&gpu_tenant, &g).expect("submitted");
    let f_host = fleet.submit(&host_tenant, &quiet).expect("submitted");
    assert_eq!(
        f_gpu.wait_timeout(DEADLINE),
        Some(Ok(())),
        "bounded fault budget retries to success"
    );
    assert_eq!(f_host.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    assert!(data.read().iter().all(|&v| v == 2));

    let snap = fleet.snapshot();
    let gpu = snap.tenants.iter().find(|t| t.tenant == "gpu").unwrap();
    let host = snap.tenants.iter().find(|t| t.tenant == "host").unwrap();
    assert!(gpu.retries >= 1, "kernel faults must surface as retries");
    assert_eq!(host.retries, 0, "co-tenant is never billed for them");
    assert!(
        gpu.gpu_ns_charged > host.gpu_ns_charged,
        "retry work charges the faulting tenant's budget"
    );
}

/// Submits the deterministic mixed workload and returns the execution
/// order: one batch job is admitted and held in flight, three more batch
/// jobs and one small-tenant job queue behind it, then the gate opens.
fn admission_order(policy: Box<dyn AdmissionPolicy>) -> Vec<String> {
    let fleet = Fleet::with_policy(
        Executor::new(2, 1),
        FleetConfig {
            max_inflight: 1,
            ..FleetConfig::default()
        },
        policy,
    );
    let batch = fleet.register(
        "batch",
        TenantConfig {
            weight: 1,
            ..TenantConfig::default()
        },
    );
    let small = fleet.register(
        "small",
        TenantConfig {
            weight: 4,
            ..TenantConfig::default()
        },
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    let gate = Arc::new(AtomicBool::new(false));
    let mut futs = Vec::new();
    let b1 = logging_graph("b1", &log, Some(Arc::clone(&gate)));
    futs.push(fleet.submit(&batch, &b1).expect("submitted"));
    while log.lock().unwrap().is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }
    for name in ["b2", "b3", "b4"] {
        let g = logging_graph(name, &log, None);
        futs.push(fleet.submit(&batch, &g).expect("submitted"));
    }
    let s1 = logging_graph("s1", &log, None);
    futs.push(fleet.submit(&small, &s1).expect("submitted"));
    gate.store(true, Ordering::Release);
    for f in futs {
        assert_eq!(f.wait_timeout(DEADLINE), Some(Ok(())));
    }
    fleet.wait_idle();
    let order = log.lock().unwrap().clone();
    order
}

/// Tentpole: with one in-flight slot and a batch backlog, FIFO admits
/// strictly by arrival (the small tenant waits out the whole backlog);
/// weighted-fair interleaves the small tenant right after the in-flight
/// job — deterministically, by start-time fair queueing.
#[test]
fn weighted_fair_admits_small_tenant_ahead_of_backlog() {
    let fifo = admission_order(Box::new(Fifo));
    assert_eq!(fifo, ["b1", "b2", "b3", "b4", "s1"], "FIFO is arrival order");
    let wfq = admission_order(Box::<WeightedFair>::default());
    assert_eq!(
        wfq,
        ["b1", "s1", "b2", "b3", "b4"],
        "SFQ admits the idle small tenant at the virtual clock, ahead of \
         the batch tenant's accumulated finish tag"
    );
}

/// Satellite: runs submitted through the fleet carry their tenant into
/// the flight recorder — labeled Prometheus series appear per tenant
/// while the unlabeled aggregates keep counting every run.
#[test]
fn per_tenant_prometheus_labels_with_stable_aggregates() {
    let recorder = FlightRecorder::shared();
    let ex = Executor::builder(2, 1).observer(recorder.clone()).build();
    let fleet = Fleet::new(ex, FleetConfig::default());
    let a = fleet.register("alpha", TenantConfig::default());
    let b = fleet.register("beta", TenantConfig::default());

    let log = Arc::new(Mutex::new(Vec::new()));
    let ga = logging_graph("ga", &log, None);
    let gb = logging_graph("gb", &log, None);
    let fa = fleet.submit(&a, &ga).expect("submitted");
    let fb = fleet.submit(&b, &gb).expect("submitted");
    // One direct (untenanted) run through the same executor.
    let gd = logging_graph("gd", &log, None);
    let fd = fleet.executor().run(&gd);
    assert_eq!(fa.wait_timeout(DEADLINE), Some(Ok(())));
    assert_eq!(fb.wait_timeout(DEADLINE), Some(Ok(())));
    assert_eq!(fd.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    recorder.pump();

    let reg = MetricsRegistry::new();
    recorder.export_into(&reg);
    let prom = reg.prometheus_text();
    assert!(
        prom.contains("hf_run_latency_nanos_bucket{tenant=\"alpha\""),
        "per-tenant labeled histogram missing:\n{prom}"
    );
    assert!(prom.contains("hf_tenant_runs_total{tenant=\"beta\"} 1"), "{prom}");
    assert!(
        prom.contains("hf_run_latency_nanos_count 3"),
        "unlabeled aggregate must keep counting all runs (2 fleet + 1 direct):\n{prom}"
    );

    let summaries = recorder.summaries();
    let tenants: Vec<Option<String>> = summaries.iter().map(|s| s.tenant.clone()).collect();
    assert!(tenants.contains(&Some("alpha".to_string())));
    assert!(tenants.contains(&Some("beta".to_string())));
    assert!(tenants.contains(&None), "direct run stays untenanted");
}

/// Fleet stats surface on the shared executor: admissions and structured
/// rejections are counted globally.
#[test]
fn fleet_counters_in_executor_stats() {
    let fleet = Fleet::new(Executor::new(2, 1), FleetConfig::default());
    let tenant = fleet.register(
        "counted",
        TenantConfig {
            gpu_ns_budget: Some(1_500),
            ..TenantConfig::default()
        },
    );
    let g = Heteroflow::new("one");
    g.host("t", || {});
    let f = fleet.submit(&tenant, &g).expect("within budget");
    assert!(fleet.submit(&tenant, &g).is_err(), "second exceeds budget");
    assert_eq!(f.wait_timeout(DEADLINE), Some(Ok(())));
    fleet.wait_idle();
    let snap = fleet.executor().stats().snapshot();
    assert_eq!(snap.fleet_admissions, 1);
    assert_eq!(snap.fleet_rejections, 1);
}
