//! Kernel launches: launch configuration and the execution context handed
//! to Rust "kernels".
//!
//! The paper launches native CUDA kernels as `f<<<grid, block, shm, s>>>
//! (args...)` (Listing 8). Here a kernel is a Rust closure
//! `Fn(&LaunchConfig, &mut KernelArgs)`; the launch configuration carries
//! the same `grid`/`block`/`shm` triple, and [`KernelArgs`] resolves the
//! bound [`DevicePtr`]s (the paper's pull-task gateways) to typed device
//! slices — the role `PointerCaster` plays in Listing 9.

use crate::arena::{ArenaView, DevicePtr};
use crate::error::GpuError;
use crate::plain::Plain;
use std::sync::Arc;

/// A 3-component grid or block dimension, like CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDim {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Default for GridDim {
    fn default() -> Self {
        Self { x: 1, y: 1, z: 1 }
    }
}

impl GridDim {
    /// Total number of indices in the dimension.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

/// Kernel launch configuration: grid dimensions, block dimensions, and
/// shared-memory bytes — the `<<<grid, block, shm, stream>>>` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub struct LaunchConfig {
    /// Grid (blocks per launch).
    pub grid: GridDim,
    /// Block (threads per block).
    pub block: GridDim,
    /// Dynamic shared memory per block, in bytes (modelled, not enforced).
    pub shm: u32,
}


impl LaunchConfig {
    /// A 1-D launch with `grid_x` blocks of `block_x` threads.
    pub fn one_d(grid_x: u32, block_x: u32) -> Self {
        Self {
            grid: GridDim { x: grid_x, y: 1, z: 1 },
            block: GridDim { x: block_x, y: 1, z: 1 },
            shm: 0,
        }
    }

    /// A launch covering at least `n` linear threads with the given block
    /// size (`grid_x = ceil(n / block_x)`), the idiom in Listing 1.
    pub fn cover(n: usize, block_x: u32) -> Self {
        let bx = block_x.max(1);
        let grid_x = n.div_ceil(bx as usize).max(1) as u32;
        Self::one_d(grid_x, bx)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Iterator over global linear thread indices `0..total_threads()` —
    /// the software stand-in for `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn threads(&self) -> impl Iterator<Item = usize> {
        0..self.total_threads() as usize
    }
}

/// The argument environment of an executing kernel: the device arena plus
/// the device pointers gathered from the kernel's source pull tasks.
pub struct KernelArgs<'a, 'v> {
    view: &'a mut ArenaView<'v>,
    ptrs: &'a [DevicePtr],
}

impl<'a, 'v> KernelArgs<'a, 'v> {
    /// Creates the environment (called by the stream engine at launch).
    pub fn new(view: &'a mut ArenaView<'v>, ptrs: &'a [DevicePtr]) -> Self {
        Self { view, ptrs }
    }

    /// Number of bound device arguments.
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    /// True if the kernel has no device arguments.
    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }

    /// Raw device pointer of argument `i`.
    pub fn ptr(&self, i: usize) -> DevicePtr {
        self.ptrs[i]
    }

    /// Immutable typed view of argument `i`.
    pub fn slice<T: Plain>(&self, i: usize) -> Result<&[T], GpuError> {
        self.view.slice(self.ptrs[i])
    }

    /// Mutable typed view of argument `i`.
    pub fn slice_mut<T: Plain>(&mut self, i: usize) -> Result<&mut [T], GpuError> {
        self.view.slice_mut(self.ptrs[i])
    }

    /// Two disjoint mutable typed views of arguments `i` and `j`.
    pub fn slice2_mut<A: Plain, B: Plain>(
        &mut self,
        i: usize,
        j: usize,
    ) -> Result<(&mut [A], &mut [B]), GpuError> {
        self.view.slice2_mut(self.ptrs[i], self.ptrs[j])
    }

    /// Three disjoint mutable typed views.
    #[allow(clippy::type_complexity)]
    pub fn slice3_mut<A: Plain, B: Plain, C: Plain>(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
    ) -> Result<(&mut [A], &mut [B], &mut [C]), GpuError> {
        self.view.slice3_mut(self.ptrs[i], self.ptrs[j], self.ptrs[k])
    }

    /// Direct access to the underlying arena view (for kernels that manage
    /// scratch allocations themselves).
    pub fn view_mut(&mut self) -> &mut ArenaView<'v> {
        self.view
    }
}

/// A kernel function object: shareable, sendable, launched by engines.
pub type KernelFn = Arc<dyn Fn(&LaunchConfig, &mut KernelArgs<'_, '_>) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;

    #[test]
    fn cover_rounds_up() {
        let c = LaunchConfig::cover(65536, 256);
        assert_eq!(c.grid.x, 256);
        assert_eq!(c.block.x, 256);
        assert_eq!(c.total_threads(), 65536);
        let c2 = LaunchConfig::cover(100, 256);
        assert_eq!(c2.grid.x, 1);
        assert_eq!(c2.total_threads(), 256);
        let c0 = LaunchConfig::cover(0, 256);
        assert_eq!(c0.grid.x, 1);
    }

    #[test]
    fn threads_iterates_linear_space() {
        let c = LaunchConfig::one_d(2, 4);
        let v: Vec<usize> = c.threads().collect();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn saxpy_through_kernel_args() {
        let mut arena = Arena::new(0, 1024);
        let px = DevicePtr { device: 0, offset: 0, len: 16, capacity: 16 };
        let py = DevicePtr { device: 0, offset: 16, len: 16, capacity: 16 };
        {
            let mut view = arena.view();
            view.slice_mut::<i32>(px).unwrap().copy_from_slice(&[1; 4]);
            view.slice_mut::<i32>(py).unwrap().copy_from_slice(&[2; 4]);
        }
        let cfg = LaunchConfig::cover(4, 2);
        let mut view = arena.view();
        let ptrs = [px, py];
        let mut args = KernelArgs::new(&mut view, &ptrs);
        let (x, y) = args.slice2_mut::<i32, i32>(0, 1).unwrap();
        let a = 2;
        for i in cfg.threads() {
            if i < 4 {
                y[i] += a * x[i];
            }
        }
        assert_eq!(args.slice::<i32>(1).unwrap(), &[4, 4, 4, 4]);
    }
}
