//! Bookshelf-style placement reader/writer (`.nodes` / `.pl` / `.nets`).
//!
//! DREAMPlace consumes the ISPD Bookshelf benchmark suite (bigblue4 et
//! al.); this module reads/writes the subset of the format the detailed
//! placer needs — unit-site cells, fixed terminals, positions, and
//! multi-pin nets:
//!
//! ```text
//! # .nodes                 # .pl                   # .nets
//! NumNodes : 3             o0 0 0 : N              NumNets : 1
//! o0 1 1                   o1 4 2 : N              NetDegree : 2 n0
//! o1 1 1                   o2 7 7 : N                o0 I
//! o2 1 1 terminal                                    o1 O
//! ```

use crate::db::{Cell, Net, PlacementDb};
use std::collections::HashMap;
use std::fmt;

/// Parse failure with file kind and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BookshelfError {
    /// Which of the three inputs failed ("nodes", "pl", "nets").
    pub file: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for BookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{} line {}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for BookshelfError {}

fn err(file: &'static str, line: usize, message: impl Into<String>) -> BookshelfError {
    BookshelfError {
        file,
        line,
        message: message.into(),
    }
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, l)| {
        let l = l.split('#').next().unwrap_or("").trim();
        if l.is_empty() || l.starts_with("UCLA") {
            None
        } else {
            Some((i + 1, l))
        }
    })
}

/// Parses the three Bookshelf sections into a [`PlacementDb`].
pub fn parse_bookshelf(
    nodes: &str,
    pl: &str,
    nets: &str,
) -> Result<PlacementDb, BookshelfError> {
    // --- .nodes: names, order, fixedness. ---
    let mut names: Vec<String> = Vec::new();
    let mut fixed: Vec<bool> = Vec::new();
    for (lineno, l) in content_lines(nodes) {
        if l.starts_with("NumNodes") || l.starts_with("NumTerminals") {
            continue;
        }
        let mut it = l.split_whitespace();
        let name = it.next().ok_or_else(|| err("nodes", lineno, "empty node line"))?;
        // width/height accepted but must be 1x1 (unit sites).
        let w: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("nodes", lineno, "missing width"))?;
        let h: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("nodes", lineno, "missing height"))?;
        if w != 1 || h != 1 {
            return Err(err(
                "nodes",
                lineno,
                format!("only unit cells supported, got {w}x{h}"),
            ));
        }
        let is_fixed = it.next().is_some_and(|t| t.eq_ignore_ascii_case("terminal"));
        names.push(name.to_string());
        fixed.push(is_fixed);
    }
    if names.is_empty() {
        return Err(err("nodes", 0, "no nodes declared"));
    }
    let index: HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    if index.len() != names.len() {
        return Err(err("nodes", 0, "duplicate node names"));
    }

    // --- .pl: positions. ---
    let mut cells: Vec<Option<Cell>> = vec![None; names.len()];
    for (lineno, l) in content_lines(pl) {
        let mut it = l.split_whitespace();
        let name = it.next().ok_or_else(|| err("pl", lineno, "empty line"))?;
        let id = *index
            .get(name)
            .ok_or_else(|| err("pl", lineno, format!("unknown node '{name}'")))?;
        let x: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("pl", lineno, "missing x"))?;
        let y: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("pl", lineno, "missing y"))?;
        cells[id as usize] = Some(Cell {
            x,
            y,
            fixed: fixed[id as usize],
        });
    }
    let cells: Vec<Cell> = cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.ok_or_else(|| err("pl", 0, format!("node '{}' has no position", names[i]))))
        .collect::<Result<_, _>>()?;

    // --- .nets: pin lists. ---
    let mut nets_v: Vec<Net> = Vec::new();
    let mut current: Option<(usize, Vec<u32>)> = None; // (expected degree, pins)
    for (lineno, l) in content_lines(nets) {
        if l.starts_with("NumNets") || l.starts_with("NumPins") {
            continue;
        }
        if let Some(rest) = l.strip_prefix("NetDegree") {
            if let Some((deg, pins)) = current.take() {
                if pins.len() != deg {
                    return Err(err(
                        "nets",
                        lineno,
                        format!("net declared degree {deg} but has {} pins", pins.len()),
                    ));
                }
                nets_v.push(Net { pins });
            }
            let deg: usize = rest
                .trim_start()
                .trim_start_matches(':')
                .split_whitespace()
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("nets", lineno, "malformed NetDegree"))?;
            current = Some((deg, Vec::new()));
            continue;
        }
        let (_, pins) = current
            .as_mut()
            .ok_or_else(|| err("nets", lineno, "pin before any NetDegree"))?;
        let name = l
            .split_whitespace()
            .next()
            .ok_or_else(|| err("nets", lineno, "empty pin line"))?;
        let id = *index
            .get(name)
            .ok_or_else(|| err("nets", lineno, format!("unknown node '{name}'")))?;
        if !pins.contains(&id) {
            pins.push(id);
        }
    }
    if let Some((deg, pins)) = current.take() {
        if pins.len() != deg {
            return Err(err(
                "nets",
                0,
                format!("net declared degree {deg} but has {} pins", pins.len()),
            ));
        }
        nets_v.push(Net { pins });
    }

    // Derived layout extents and incidence lists.
    let max_x = cells.iter().map(|c| c.x).max().unwrap_or(0);
    let max_y = cells.iter().map(|c| c.y).max().unwrap_or(0);
    let mut nets_of: Vec<Vec<u32>> = vec![Vec::new(); cells.len()];
    for (ni, net) in nets_v.iter().enumerate() {
        for &p in &net.pins {
            nets_of[p as usize].push(ni as u32);
        }
    }

    let db = PlacementDb {
        cells,
        nets: nets_v,
        nets_of,
        num_rows: max_y + 1,
        sites_per_row: max_x + 1,
    };
    db.check_legal()
        .map_err(|m| err("pl", 0, format!("illegal placement: {m}")))?;
    Ok(db)
}

/// Serializes a [`PlacementDb`] to the three Bookshelf sections
/// `(.nodes, .pl, .nets)`. Cells are named `o<i>`.
pub fn write_bookshelf(db: &PlacementDb) -> (String, String, String) {
    let mut nodes = format!("NumNodes : {}\n", db.cells.len());
    let mut pl = String::new();
    for (i, c) in db.cells.iter().enumerate() {
        let term = if c.fixed { " terminal" } else { "" };
        nodes.push_str(&format!("o{i} 1 1{term}\n"));
        pl.push_str(&format!("o{i} {} {} : N\n", c.x, c.y));
    }
    let mut nets = format!("NumNets : {}\n", db.nets.len());
    for (ni, net) in db.nets.iter().enumerate() {
        nets.push_str(&format!("NetDegree : {} n{ni}\n", net.pins.len()));
        for &p in &net.pins {
            nets.push_str(&format!("  o{p} I\n"));
        }
    }
    (nodes, pl, nets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PlacementConfig;

    #[test]
    fn parses_minimal_example() {
        let nodes = "NumNodes : 3\no0 1 1\no1 1 1\no2 1 1 terminal\n";
        let pl = "o0 0 0 : N\no1 4 2 : N\no2 7 7 : N\n";
        let nets = "NumNets : 1\nNetDegree : 2 n0\n  o0 I\n  o1 O\n";
        let db = parse_bookshelf(nodes, pl, nets).expect("valid");
        assert_eq!(db.num_cells(), 3);
        assert!(db.cells[2].fixed);
        assert_eq!(db.nets.len(), 1);
        assert_eq!(db.net_hpwl(&db.nets[0]), 4 + 2);
        assert_eq!(db.sites_per_row, 8);
        assert_eq!(db.num_rows, 8);
    }

    #[test]
    fn round_trip_preserves_everything() {
        let orig = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 400,
            num_nets: 450,
            ..Default::default()
        });
        let (nodes, pl, nets) = write_bookshelf(&orig);
        let back = parse_bookshelf(&nodes, &pl, &nets).expect("own output parses");
        assert_eq!(back.cells, orig.cells);
        assert_eq!(back.nets, orig.nets);
        assert_eq!(back.total_hpwl(), orig.total_hpwl());
    }

    #[test]
    fn detailed_placement_runs_on_parsed_db() {
        let orig = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 200,
            num_nets: 220,
            ..Default::default()
        });
        let (nodes, pl, nets) = write_bookshelf(&orig);
        let db = parse_bookshelf(&nodes, &pl, &nets).expect("valid");
        let out = crate::algo::detailed_place_sequential(
            db,
            crate::algo::PlaceConfig {
                iterations: 2,
                ..Default::default()
            },
        );
        assert!(out.hpwl_after <= out.hpwl_before);
        out.db.check_legal().expect("legal");
    }

    #[test]
    fn errors_name_file_and_line() {
        let e = parse_bookshelf("o0 2 1\n", "", "").unwrap_err();
        assert_eq!(e.file, "nodes");
        assert!(e.message.contains("unit"));

        let e = parse_bookshelf("o0 1 1\n", "oX 0 0 : N\n", "").unwrap_err();
        assert_eq!(e.file, "pl");
        assert!(e.message.contains("oX"));

        let e = parse_bookshelf("o0 1 1\n", "o0 0 0 : N\n", "o0 I\n").unwrap_err();
        assert_eq!(e.file, "nets");
        assert!(e.message.contains("NetDegree"));
    }

    #[test]
    fn degree_mismatch_rejected() {
        let nodes = "o0 1 1\no1 1 1\n";
        let pl = "o0 0 0 : N\no1 1 0 : N\n";
        let nets = "NetDegree : 3 n0\n o0 I\n o1 O\n";
        let e = parse_bookshelf(nodes, pl, nets).unwrap_err();
        assert!(e.message.contains("degree 3"));
    }

    #[test]
    fn overlapping_placement_rejected() {
        let nodes = "o0 1 1\no1 1 1\n";
        let pl = "o0 0 0 : N\no1 0 0 : N\n";
        let e = parse_bookshelf(nodes, pl, "").unwrap_err();
        assert!(e.message.contains("illegal"));
    }

    #[test]
    fn missing_position_rejected() {
        let e = parse_bookshelf("o0 1 1\n", "", "").unwrap_err();
        assert!(e.message.contains("no position"));
    }
}
