//! Knowlton buddy allocator.
//!
//! The paper's executor "keeps a memory pool for each GPU device to reduce
//! the scheduling overhead of frequent allocations by pull tasks. We
//! implement the famous Buddy allocator algorithm [22]" (§III-C). This is
//! that algorithm: power-of-two block sizes, split on demand, coalesce
//! buddies on free (K. C. Knowlton, *A Fast Storage Allocator*, CACM 1965).

use crate::error::GpuError;
use std::collections::{HashMap, HashSet};

/// Statistics maintained by a [`BuddyAllocator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuddyStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Block splits performed.
    pub splits: u64,
    /// Buddy coalesces performed.
    pub merges: u64,
    /// Bytes currently handed out (rounded block sizes).
    pub bytes_in_use: usize,
    /// High-water mark of `bytes_in_use`.
    pub peak_bytes: usize,
    /// Allocation failures (out of memory).
    pub failures: u64,
}

/// A buddy allocator over the byte range `0..capacity`.
///
/// `capacity` and `min_block` must be powers of two. Order-`k` blocks have
/// size `min_block << k`; the whole arena is the single block of maximum
/// order. All returned offsets are multiples of `min_block` and naturally
/// aligned to their block size.
#[derive(Debug)]
pub struct BuddyAllocator {
    capacity: usize,
    min_block: usize,
    max_order: usize,
    /// Free blocks per order, keyed by offset (set for O(1) buddy lookup).
    free: Vec<HashSet<u64>>,
    /// Live allocations: offset -> order.
    live: HashMap<u64, u8>,
    stats: BuddyStats,
}

impl BuddyAllocator {
    /// Creates an allocator managing `capacity` bytes with the given
    /// minimum block size.
    ///
    /// # Panics
    /// If either argument is not a power of two, or `min_block > capacity`.
    pub fn new(capacity: usize, min_block: usize) -> Self {
        assert!(capacity.is_power_of_two(), "capacity must be a power of two");
        assert!(min_block.is_power_of_two(), "min_block must be a power of two");
        assert!(min_block <= capacity, "min_block exceeds capacity");
        let max_order = (capacity / min_block).trailing_zeros() as usize;
        let mut free: Vec<HashSet<u64>> = (0..=max_order).map(|_| HashSet::new()).collect();
        free[max_order].insert(0);
        Self {
            capacity,
            min_block,
            max_order,
            free,
            live: HashMap::new(),
            stats: BuddyStats::default(),
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Smallest allocatable block size.
    pub fn min_block(&self) -> usize {
        self.min_block
    }

    /// Bytes not currently handed out (may be fragmented across orders).
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.stats.bytes_in_use
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BuddyStats {
        self.stats
    }

    fn order_for(&self, size: usize) -> Option<usize> {
        let size = size.max(1).max(self.min_block).next_power_of_two();
        if size > self.capacity {
            return None;
        }
        Some((size / self.min_block).trailing_zeros() as usize)
    }

    fn block_size(&self, order: usize) -> usize {
        self.min_block << order
    }

    /// Allocates at least `size` bytes; returns the byte offset.
    pub fn alloc(&mut self, size: usize) -> Result<u64, GpuError> {
        let want = match self.order_for(size) {
            Some(o) => o,
            None => {
                self.stats.failures += 1;
                return Err(GpuError::OutOfMemory {
                    requested: size,
                    free: self.free_bytes(),
                });
            }
        };
        // Find the smallest order >= want with a free block.
        let mut from = want;
        while from <= self.max_order && self.free[from].is_empty() {
            from += 1;
        }
        if from > self.max_order {
            self.stats.failures += 1;
            return Err(GpuError::OutOfMemory {
                requested: size,
                free: self.free_bytes(),
            });
        }
        // Take one block and split it down to the wanted order.
        let off = *self.free[from].iter().next().expect("non-empty free list");
        self.free[from].remove(&off);
        let mut order = from;
        while order > want {
            order -= 1;
            let buddy = off + self.block_size(order) as u64;
            self.free[order].insert(buddy);
            self.stats.splits += 1;
            // Keep the lower half (`off` unchanged).
        }
        self.live.insert(off, order as u8);
        self.stats.allocs += 1;
        self.stats.bytes_in_use += self.block_size(order);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_in_use);
        Ok(off)
    }

    /// Frees the allocation at `offset`, coalescing with free buddies.
    pub fn free(&mut self, offset: u64) -> Result<(), GpuError> {
        let order = self
            .live
            .remove(&offset)
            .ok_or(GpuError::InvalidFree(offset))? as usize;
        self.stats.frees += 1;
        self.stats.bytes_in_use -= self.block_size(order);

        let mut off = offset;
        let mut order = order;
        while order < self.max_order {
            let buddy = off ^ self.block_size(order) as u64;
            if self.free[order].remove(&buddy) {
                off = off.min(buddy);
                order += 1;
                self.stats.merges += 1;
            } else {
                break;
            }
        }
        self.free[order].insert(off);
        Ok(())
    }

    /// Rounded block size that `alloc(size)` would hand out, if it fits.
    pub fn rounded_size(&self, size: usize) -> Option<usize> {
        self.order_for(size).map(|o| self.block_size(o))
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// True when every byte is free again (fully coalesced back to one
    /// maximal block) — the key buddy invariant after balanced alloc/free.
    pub fn is_pristine(&self) -> bool {
        self.live.is_empty()
            && self.free[self.max_order].len() == 1
            && self.free[..self.max_order].iter().all(|s| s.is_empty())
    }

    /// Size in bytes of the live allocation at `offset`, if any.
    pub fn allocation_size(&self, offset: u64) -> Option<usize> {
        self.live.get(&offset).map(|&o| self.block_size(o as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_single() {
        let mut b = BuddyAllocator::new(1024, 64);
        let off = b.alloc(100).unwrap();
        assert_eq!(off % 128, 0, "aligned to rounded block size");
        assert_eq!(b.allocation_size(off), Some(128));
        b.free(off).unwrap();
        assert!(b.is_pristine());
    }

    #[test]
    fn splits_and_coalesces() {
        let mut b = BuddyAllocator::new(1024, 64);
        let a = b.alloc(64).unwrap();
        let c = b.alloc(64).unwrap();
        assert_ne!(a, c);
        assert!(b.stats().splits > 0);
        b.free(a).unwrap();
        b.free(c).unwrap();
        assert!(b.is_pristine());
        assert!(b.stats().merges >= b.stats().splits);
    }

    #[test]
    fn exhausts_and_recovers() {
        let mut b = BuddyAllocator::new(256, 64);
        let offs: Vec<u64> = (0..4).map(|_| b.alloc(64).unwrap()).collect();
        assert!(matches!(b.alloc(64), Err(GpuError::OutOfMemory { .. })));
        assert_eq!(b.stats().failures, 1);
        for o in offs {
            b.free(o).unwrap();
        }
        assert!(b.is_pristine());
        assert!(b.alloc(256).is_ok());
    }

    #[test]
    fn too_large_rejected() {
        let mut b = BuddyAllocator::new(256, 64);
        assert!(b.alloc(512).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let mut b = BuddyAllocator::new(256, 64);
        let o = b.alloc(64).unwrap();
        b.free(o).unwrap();
        assert_eq!(b.free(o), Err(GpuError::InvalidFree(o)));
    }

    #[test]
    fn zero_size_gets_min_block() {
        let mut b = BuddyAllocator::new(256, 64);
        let o = b.alloc(0).unwrap();
        assert_eq!(b.allocation_size(o), Some(64));
    }

    #[test]
    fn offsets_never_overlap() {
        let mut b = BuddyAllocator::new(4096, 64);
        let mut spans: Vec<(u64, usize)> = Vec::new();
        for sz in [64, 100, 256, 65, 512, 64, 128] {
            let o = b.alloc(sz).unwrap();
            let len = b.allocation_size(o).unwrap();
            for &(po, plen) in &spans {
                let disjoint = o + len as u64 <= po || po + plen as u64 <= o;
                assert!(disjoint, "overlap: ({o},{len}) vs ({po},{plen})");
            }
            spans.push((o, len));
        }
    }

    #[test]
    fn peak_tracking() {
        let mut b = BuddyAllocator::new(1024, 64);
        let a = b.alloc(512).unwrap();
        let c = b.alloc(256).unwrap();
        b.free(a).unwrap();
        b.free(c).unwrap();
        assert_eq!(b.stats().peak_bytes, 768);
        assert_eq!(b.stats().bytes_in_use, 0);
    }
}
