//! A software GPU device: memory arena + pool + engine thread.

use crate::arena::{Arena, DevicePtr};
use crate::cost::{CostModel, SimDuration};
use crate::error::GpuError;
use crate::event::Event;
use crate::fault::{FaultInjector, FaultSite};
use crate::pool::{MemoryPool, PoolStats};
use crate::stream::{Op, OpBody};
use crate::trace::{GpuOpKind, GpuTraceEvent, GpuTraceSink};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of a device within a [`crate::GpuRuntime`].
pub type DeviceId = u32;

/// Aggregate device counters (modeled time, traffic) for tests and
/// calibration.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Modeled busy nanoseconds accumulated by executed ops.
    pub busy_nanos: AtomicU64,
    /// Host-to-device bytes copied.
    pub h2d_bytes: AtomicU64,
    /// Device-to-host bytes copied.
    pub d2h_bytes: AtomicU64,
    /// Kernels launched.
    pub kernels: AtomicU64,
    /// Total ops executed.
    pub ops: AtomicU64,
}

/// One stream's FIFO state inside the engine.
#[derive(Default)]
pub(crate) struct StreamQueue {
    pub(crate) ops: VecDeque<Op>,
    pub(crate) enqueued: u64,
    pub(crate) completed: u64,
    /// When tracing: the instant the current head op was first observed
    /// blocked (a `WaitEvent` whose event has not fired yet).
    pub(crate) blocked_since: Option<Instant>,
}

pub(crate) struct EngineShared {
    pub(crate) streams: Mutex<Vec<StreamQueue>>,
    pub(crate) cv: Condvar,
    pub(crate) shutdown: AtomicBool,
}

/// Inner state of a device, shared between user handles and the engine
/// thread.
pub struct DeviceInner {
    id: DeviceId,
    arena: Mutex<Arena>,
    pool: MemoryPool,
    cost: CostModel,
    pub(crate) engine: Arc<EngineShared>,
    stats: DeviceStats,
    last_error: Mutex<Option<GpuError>>,
    /// Fast-path gate for device-side tracing: one relaxed load per op.
    trace_on: AtomicBool,
    /// Installed trace sink (see [`crate::trace`]).
    trace: Mutex<Option<Arc<dyn GpuTraceSink>>>,
    /// The device has failed as a whole: every subsequent operation
    /// returns [`GpuError::DeviceLost`].
    lost: AtomicBool,
    /// Fast-path gate for fault injection: one relaxed load per op.
    fault_on: AtomicBool,
    /// Installed fault injector, shared across the runtime's devices.
    fault: Mutex<Option<Arc<FaultInjector>>>,
    /// Exec ops executed, for scheduled device-loss triggers.
    op_seq: AtomicU64,
}

/// A handle to a software GPU device. Clones share the same device.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device").field("id", &self.inner.id).finish()
    }
}

impl Device {
    pub(crate) fn create(id: DeviceId, mem_capacity: usize, min_block: usize, cost: CostModel) -> (Device, JoinHandle<()>) {
        let inner = Arc::new(DeviceInner {
            id,
            arena: Mutex::new(Arena::new(id, mem_capacity)),
            pool: MemoryPool::new(id, mem_capacity, min_block),
            cost,
            engine: Arc::new(EngineShared {
                streams: Mutex::new(Vec::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            stats: DeviceStats::default(),
            last_error: Mutex::new(None),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
            lost: AtomicBool::new(false),
            fault_on: AtomicBool::new(false),
            fault: Mutex::new(None),
            op_seq: AtomicU64::new(0),
        });
        let engine_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name(format!("hf-gpu-engine-{id}"))
            .spawn(move || engine_loop(engine_inner))
            .expect("spawn device engine thread");
        (Device { inner }, handle)
    }

    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.inner.id
    }

    /// Allocates device memory from the pool.
    pub fn alloc(&self, bytes: usize) -> Result<DevicePtr, GpuError> {
        self.fault_check(FaultSite::Alloc)?;
        let res = self.inner.pool.alloc(bytes);
        if res.is_ok() {
            self.inner.trace_instant(GpuOpKind::Alloc, bytes as u64);
        }
        res
    }

    /// Frees a pool allocation.
    pub fn free(&self, ptr: DevicePtr) -> Result<(), GpuError> {
        let bytes = ptr.len;
        let res = self.inner.pool.free(ptr);
        if res.is_ok() {
            self.inner.trace_instant(GpuOpKind::Free, bytes);
        }
        res
    }

    /// Installs (or removes, with `None`) the device-side trace sink.
    /// While a sink is installed, the engine timestamps every stream op
    /// around its execution and reports alloc/free pool traffic; with no
    /// sink, the only cost on the op path is one relaxed atomic load.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn GpuTraceSink>>) {
        let mut slot = self.inner.trace.lock();
        self.inner.trace_on.store(sink.is_some(), Ordering::Release);
        *slot = sink;
    }

    /// True when a device-side trace sink is installed.
    pub fn tracing(&self) -> bool {
        self.inner.trace_on.load(Ordering::Relaxed)
    }

    /// Installs (or removes, with `None`) the fault injector. Installing
    /// a new injector also revives a lost device and resets its op
    /// counter, so plans compose cleanly across test runs.
    pub(crate) fn set_fault_injector(&self, inj: Option<Arc<FaultInjector>>) {
        let mut slot = self.inner.fault.lock();
        self.inner.fault_on.store(inj.is_some(), Ordering::Release);
        self.inner.lost.store(false, Ordering::Release);
        self.inner.op_seq.store(0, Ordering::Relaxed);
        *slot = inj;
    }

    /// Marks this device lost: every subsequent operation on it fails
    /// with [`GpuError::DeviceLost`] until a new fault plan is installed.
    /// Safe to call from any thread (chaos tests, health monitors).
    pub fn mark_lost(&self) {
        self.inner.lost.store(true, Ordering::Release);
    }

    /// True once the device has been marked lost.
    pub fn is_lost(&self) -> bool {
        self.inner.lost.load(Ordering::Acquire)
    }

    /// Checks whether an operation at `site` may proceed: fails with
    /// [`GpuError::DeviceLost`] on a lost device, or with
    /// [`GpuError::FaultInjected`] when the installed plan's next draw for
    /// the site fires. Callers invoke this *before* performing the
    /// operation's effect, which is what makes retries safe.
    pub fn fault_check(&self, site: FaultSite) -> Result<(), GpuError> {
        if self.is_lost() {
            return Err(GpuError::DeviceLost(self.id()));
        }
        if self.inner.fault_on.load(Ordering::Relaxed) {
            let inj = self.inner.fault.lock().clone();
            if let Some(inj) = inj {
                // Stall before the failure draw: the op wedges for the
                // plan's delay, then proceeds (or faults) as usual —
                // exercising the no-progress windows a watchdog must see.
                if let Some(delay) = inj.stall_duration(site) {
                    std::thread::sleep(delay);
                }
                if inj.should_fail(site) {
                    return Err(GpuError::FaultInjected {
                        device: self.id(),
                        site,
                    });
                }
            }
        }
        Ok(())
    }

    /// Memory pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// True when `other` is a handle to this same device instance (not
    /// merely the same id on another runtime). Residency checks use this to
    /// tell a cached device pointer still belongs to the live runtime.
    pub fn same_device(&self, other: &Device) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Flushes the memory pool's magazine caches back into the buddy
    /// allocator so parked blocks can coalesce. Called by the executor at
    /// topology completion.
    pub fn trim_pool(&self) {
        self.inner.pool.flush();
    }

    /// Modeled busy time accumulated by this device's ops.
    pub fn busy_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.inner.stats.busy_nanos.load(Ordering::Relaxed))
    }

    /// Raw statistics counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    /// Cost model used by this device.
    pub fn cost_model(&self) -> CostModel {
        self.inner.cost
    }

    /// First op error since the last [`Device::take_error`], if any —
    /// `cudaGetLastError` semantics.
    pub fn take_error(&self) -> Option<GpuError> {
        self.inner.last_error.lock().take()
    }

    /// Registers a new stream on this device; returns its index.
    pub(crate) fn register_stream(&self) -> usize {
        let mut qs = self.inner.engine.streams.lock();
        qs.push(StreamQueue::default());
        qs.len() - 1
    }

    pub(crate) fn enqueue(&self, stream: usize, op: Op) {
        let eng = &self.inner.engine;
        {
            let mut qs = eng.streams.lock();
            let q = &mut qs[stream];
            q.ops.push_back(op);
            q.enqueued += 1;
        }
        eng.cv.notify_all();
    }

    /// Blocks until stream `stream` has executed everything enqueued so far.
    pub(crate) fn synchronize_stream(&self, stream: usize) {
        let eng = &self.inner.engine;
        let mut qs = eng.streams.lock();
        let target = qs[stream].enqueued;
        while qs[stream].completed < target {
            eng.cv.wait(&mut qs);
        }
    }

    /// Blocks until every stream on this device has drained.
    pub fn synchronize(&self) {
        let eng = &self.inner.engine;
        let mut qs = eng.streams.lock();
        loop {
            let pending = qs.iter().any(|q| q.completed < q.enqueued);
            if !pending {
                return;
            }
            eng.cv.wait(&mut qs);
        }
    }

    /// Runs `f` with a mutable view of this device's memory, synchronously
    /// on the calling thread (testing/debug aid; real work goes through
    /// streams).
    pub fn with_memory<R>(&self, f: impl FnOnce(&mut crate::arena::ArenaView<'_>) -> R) -> R {
        let mut arena = self.inner.arena.lock();
        f(&mut arena.view())
    }
}

impl DeviceInner {
    /// Clone of the installed sink, if tracing is on.
    fn sink(&self) -> Option<Arc<dyn GpuTraceSink>> {
        if !self.trace_on.load(Ordering::Relaxed) {
            return None;
        }
        self.trace.lock().clone()
    }

    /// Emits a zero-duration event (pool alloc/free bookkeeping).
    fn trace_instant(&self, kind: GpuOpKind, bytes: u64) {
        if let Some(sink) = self.sink() {
            let now = Instant::now();
            sink.record(GpuTraceEvent {
                device: self.id,
                stream: None,
                label: None,
                kind,
                start: now,
                end: now,
                modeled_ns: 0,
                bytes,
            });
        }
    }
}

/// The engine loop: drains stream queues in order, honoring event waits.
/// One engine thread per device serializes that device's ops (a
/// single-compute-unit GPU); concurrency across devices is real.
fn engine_loop(dev: Arc<DeviceInner>) {
    let eng = Arc::clone(&dev.engine);
    let mut next_start = 0usize;
    loop {
        let tracing = dev.trace_on.load(Ordering::Relaxed);
        // Find a runnable head op, round-robin across streams for fairness.
        let mut op: Option<Op> = None;
        // When tracing: the instant the popped op's stream head first
        // blocked on an unfired event (the event-wait span start).
        let mut blocked_since: Option<Instant> = None;
        {
            let mut qs = eng.streams.lock();
            let n = qs.len();
            let mut any_pending = false;
            for k in 0..n {
                let i = (next_start + k) % n;
                let q = &mut qs[i];
                match q.ops.front() {
                    None => {}
                    Some(head) => {
                        any_pending = true;
                        if head.is_runnable() {
                            blocked_since = q.blocked_since.take();
                            op = Some(q.ops.pop_front().expect("head exists"));
                            next_start = (i + 1) % n.max(1);
                            break;
                        } else if tracing && q.blocked_since.is_none() {
                            q.blocked_since = Some(Instant::now());
                        }
                    }
                }
            }
            if op.is_none() {
                if eng.shutdown.load(Ordering::Acquire) && !any_pending {
                    return;
                }
                // Timed wait: an event this device is blocked on may be
                // fired by another device's engine or by the host, which
                // notifies no one here.
                eng.cv.wait_for(&mut qs, Duration::from_micros(200));
                continue;
            }
        }

        let mut op = op.expect("checked above");
        // Scheduled device loss: the plan loses this device after it has
        // executed a configured number of exec ops. The op still runs —
        // its closure observes the lost flag and fails fast — so stream
        // completion accounting never skips a beat.
        if dev.fault_on.load(Ordering::Relaxed) && matches!(op.body, OpBody::Exec(_)) {
            let seq = dev.op_seq.fetch_add(1, Ordering::Relaxed);
            let inj = dev.fault.lock().clone();
            if let Some(inj) = inj {
                if inj.loses(dev.id, seq) {
                    dev.lost.store(true, Ordering::Release);
                }
            }
        }
        let stream = op.stream;
        let label = op.label.take();
        let t0 = tracing.then(Instant::now);
        let (dur, kind, bytes) = execute(&dev, op);
        dev.stats.busy_nanos.fetch_add(dur.as_nanos(), Ordering::Relaxed);
        dev.stats.ops.fetch_add(1, Ordering::Relaxed);

        if let (Some(t0), Some(sink)) = (t0, dev.sink()) {
            // An event-wait span starts when the stream head blocked, not
            // when the engine finally consumed the (now runnable) op.
            let start = match kind {
                GpuOpKind::EventWait => blocked_since.unwrap_or(t0),
                _ => t0,
            };
            sink.record(GpuTraceEvent {
                device: dev.id,
                stream: Some(stream),
                label,
                kind,
                start,
                end: Instant::now(),
                modeled_ns: dur.as_nanos(),
                bytes,
            });
        }

        let mut qs = eng.streams.lock();
        qs[stream].completed += 1;
        drop(qs);
        eng.cv.notify_all();
    }
}

/// Executes one op; returns its modeled duration, trace category, and
/// bytes moved.
fn execute(dev: &Arc<DeviceInner>, op: Op) -> (SimDuration, GpuOpKind, u64) {
    match op.body {
        OpBody::Exec(f) => {
            let mut arena = dev.arena.lock();
            let mut view = arena.view();
            match f(&mut view, &dev.cost) {
                Ok(report) => {
                    dev.stats.h2d_bytes.fetch_add(report.h2d_bytes, Ordering::Relaxed);
                    dev.stats.d2h_bytes.fetch_add(report.d2h_bytes, Ordering::Relaxed);
                    dev.stats.kernels.fetch_add(report.kernels, Ordering::Relaxed);
                    (
                        report.duration,
                        GpuOpKind::Exec,
                        report.h2d_bytes + report.d2h_bytes,
                    )
                }
                Err(e) => {
                    let mut slot = dev.last_error.lock();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    (SimDuration::ZERO, GpuOpKind::Exec, 0)
                }
            }
        }
        OpBody::Host(f) => {
            f();
            (SimDuration::ZERO, GpuOpKind::HostFn, 0)
        }
        OpBody::Record(ev) => {
            ev.fire();
            (SimDuration::ZERO, GpuOpKind::EventRecord, 0)
        }
        // WaitEvent ops are consumed only when already runnable.
        OpBody::WaitEvent { .. } => (SimDuration::ZERO, GpuOpKind::EventWait, 0),
    }
}

thread_local! {
    static DEVICE_STACK: RefCell<Vec<DeviceId>> = const { RefCell::new(Vec::new()) };
}

/// RAII device scope: the software analogue of the paper's
/// `ScopedDeviceContext` over `cudaSetDevice` (Listing 13). Pushes the
/// device onto a thread-local stack; [`current_device`] reports the top.
pub struct ScopedDeviceContext {
    _private: (),
}

impl ScopedDeviceContext {
    /// Enters `device`'s context on this thread.
    pub fn new(device: DeviceId) -> Self {
        DEVICE_STACK.with(|s| s.borrow_mut().push(device));
        Self { _private: () }
    }
}

impl Drop for ScopedDeviceContext {
    fn drop(&mut self) {
        DEVICE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The device the calling thread is currently scoped to, if any.
pub fn current_device() -> Option<DeviceId> {
    DEVICE_STACK.with(|s| s.borrow().last().copied())
}

/// An [`Event`] wait marker used inside op queues.
#[derive(Debug, Clone)]
pub struct EventWait {
    pub(crate) event: Event,
    pub(crate) generation: u64,
}

impl EventWait {
    pub(crate) fn ready(&self) -> bool {
        self.event.reached(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_context_nests() {
        assert_eq!(current_device(), None);
        {
            let _a = ScopedDeviceContext::new(1);
            assert_eq!(current_device(), Some(1));
            {
                let _b = ScopedDeviceContext::new(3);
                assert_eq!(current_device(), Some(3));
            }
            assert_eq!(current_device(), Some(1));
        }
        assert_eq!(current_device(), None);
    }
}
