//! Device-side execution tracing.
//!
//! CUDA profilers (CUPTI, Nsight) observe *device-side* activity: when a
//! kernel or copy actually ran on the GPU, not when the host enqueued it.
//! This module is the software equivalent for the simulated devices: when
//! a [`GpuTraceSink`] is installed, each device engine timestamps every
//! stream operation around its real execution — op start/finish, the time
//! a stream spent blocked on an event wait, and pool alloc/free traffic —
//! and hands the events to the sink.
//!
//! Recording is gated by one relaxed atomic load per op
//! ([`crate::Device`] keeps a `trace_on` flag), so the engine hot loop
//! pays ~nothing when tracing is off. Sinks must be non-blocking: the
//! executor's trace collector pushes into lock-free event rings.
//!
//! Enqueuers can attach an [`OpLabel`] to device work
//! ([`crate::Stream::exec_labeled`]) so device events can be stitched
//! back to the task that issued them; the `tag` travels opaquely (the
//! Heteroflow executor packs the task kind into it).

use std::sync::Arc;
use std::time::Instant;

/// Category of a device-side trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuOpKind {
    /// Device work: a copy or kernel executed through the arena.
    Exec,
    /// A stream-ordered host callback (`cudaLaunchHostFunc`).
    HostFn,
    /// An event fire (`cudaEventRecord` reached the head of the stream).
    EventRecord,
    /// Time a stream spent blocked at the head on `cudaStreamWaitEvent`.
    EventWait,
    /// A pool allocation.
    Alloc,
    /// A pool free.
    Free,
}

impl GpuOpKind {
    /// Stable lowercase name (trace category).
    pub fn name(self) -> &'static str {
        match self {
            GpuOpKind::Exec => "exec",
            GpuOpKind::HostFn => "host_fn",
            GpuOpKind::EventRecord => "event_record",
            GpuOpKind::EventWait => "event_wait",
            GpuOpKind::Alloc => "alloc",
            GpuOpKind::Free => "free",
        }
    }
}

/// Identity attached by the enqueuer to a device op so the trace can be
/// stitched back to the submitting task.
#[derive(Debug, Clone)]
pub struct OpLabel {
    /// Task (or op) name.
    pub name: Arc<str>,
    /// Opaque tag; the Heteroflow executor packs the task kind here.
    pub tag: u32,
    /// Epoch index of the submitting streaming epoch, if any; travels
    /// opaquely into the trace so overlap across pipelined epochs can be
    /// attributed without renaming spans.
    pub epoch: Option<u64>,
}

/// One device-side event. Timestamps are raw [`Instant`]s — the sink
/// converts them to its own epoch, so devices and CPU workers share one
/// timeline without agreeing on a zero point up front.
#[derive(Debug, Clone)]
pub struct GpuTraceEvent {
    /// Device the event occurred on.
    pub device: u32,
    /// Stream index, when the event belongs to a stream.
    pub stream: Option<usize>,
    /// Label attached at enqueue time, if any.
    pub label: Option<OpLabel>,
    /// Event category.
    pub kind: GpuOpKind,
    /// Wall-clock start (for [`GpuOpKind::EventWait`], when the stream
    /// head first blocked).
    pub start: Instant,
    /// Wall-clock end.
    pub end: Instant,
    /// Modeled duration reported by the cost model, in nanoseconds
    /// (0 for host callbacks and bookkeeping ops).
    pub modeled_ns: u64,
    /// Bytes moved/allocated, when meaningful (copy traffic, alloc size).
    pub bytes: u64,
}

/// Receiver of device-side trace events. Implementations must be cheap
/// and non-blocking — they are called from engine threads between ops.
pub trait GpuTraceSink: Send + Sync {
    /// Records one device-side event.
    fn record(&self, ev: GpuTraceEvent);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{GpuConfig, GpuRuntime};
    use crate::stream::Stream;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Capture {
        events: Mutex<Vec<GpuTraceEvent>>,
    }

    impl GpuTraceSink for Capture {
        fn record(&self, ev: GpuTraceEvent) {
            self.events.lock().push(ev);
        }
    }

    #[test]
    fn engine_records_exec_and_callbacks_with_labels() {
        let rt = GpuRuntime::new(1, GpuConfig::default());
        let sink = Arc::new(Capture::default());
        rt.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn GpuTraceSink>));
        assert!(rt.tracing_enabled());

        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        let ptr = dev.alloc(64).unwrap();
        s.exec_labeled(
            Some(OpLabel {
                name: Arc::from("fill"),
                tag: 7,
                epoch: None,
            }),
            Box::new(move |view, cost| {
                view.bytes_mut(ptr)?.fill(3);
                Ok(crate::stream::OpReport {
                    duration: cost.h2d(64),
                    h2d_bytes: 64,
                    ..Default::default()
                })
            }),
        );
        s.host_fn(|| {});
        s.synchronize();
        dev.free(ptr).unwrap();

        let events = sink.events.lock();
        let exec = events
            .iter()
            .find(|e| e.kind == GpuOpKind::Exec)
            .expect("exec event");
        assert_eq!(exec.device, 0);
        assert_eq!(exec.stream, Some(0));
        assert_eq!(exec.label.as_ref().unwrap().name.as_ref(), "fill");
        assert_eq!(exec.label.as_ref().unwrap().tag, 7);
        assert!(exec.end >= exec.start);
        assert!(exec.modeled_ns > 0);
        assert_eq!(exec.bytes, 64);
        assert!(events.iter().any(|e| e.kind == GpuOpKind::HostFn));
        assert!(events.iter().any(|e| e.kind == GpuOpKind::Alloc && e.bytes == 64));
        assert!(events.iter().any(|e| e.kind == GpuOpKind::Free));
    }

    #[test]
    fn event_wait_blocking_time_is_traced() {
        // The waiter lives on device 0, whose engine is otherwise idle —
        // it observes the blocked head while device 1 sleeps before
        // recording the event.
        let rt = GpuRuntime::new(2, GpuConfig::default());
        let sink = Arc::new(Capture::default());
        rt.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn GpuTraceSink>));
        let s1 = Stream::new(&rt.device(1).unwrap());
        let s2 = Stream::new(&rt.device(0).unwrap());
        let ev = crate::Event::new();
        s1.host_fn(|| std::thread::sleep(std::time::Duration::from_millis(15)));
        s1.record_event(&ev);
        s2.wait_event(&ev);
        s2.synchronize();
        s1.synchronize();

        let events = sink.events.lock();
        let wait = events
            .iter()
            .find(|e| e.kind == GpuOpKind::EventWait)
            .expect("wait event");
        assert!(
            wait.end.duration_since(wait.start).as_millis() >= 5,
            "wait span covers the blocked time"
        );
        assert!(events.iter().any(|e| e.kind == GpuOpKind::EventRecord));
    }

    #[test]
    fn uninstalling_sink_stops_recording() {
        let rt = GpuRuntime::new(1, GpuConfig::default());
        let sink = Arc::new(Capture::default());
        rt.set_trace_sink(Some(Arc::clone(&sink) as Arc<dyn GpuTraceSink>));
        rt.set_trace_sink(None);
        assert!(!rt.tracing_enabled());
        let dev = rt.device(0).unwrap();
        let s = Stream::new(&dev);
        s.host_fn(|| {});
        s.synchronize();
        assert!(sink.events.lock().is_empty());
    }
}
