//! Critical path extraction: the k longest register-to-register /
//! IO-to-IO paths of a view.
//!
//! Implements a best-first deviation search (the strategy behind
//! UI-Timer-class path engines, paper refs [27][28][30]): states carry an
//! exact completion estimate (prefix delay + precomputed max downstream
//! delay), so paths are produced in exactly descending total-delay order —
//! an A* search with a perfect heuristic.

use crate::netlist::Circuit;
use crate::sta::gate_delay;
use crate::views::View;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One extracted timing path.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Gate ids from a primary input to a primary output.
    pub gates: Vec<u32>,
    /// Total path delay (ns).
    pub delay: f32,
    /// Endpoint slack under the view's clock period (ns).
    pub slack: f32,
}

impl TimingPath {
    /// Number of gates on the path.
    pub fn depth(&self) -> usize {
        self.gates.len()
    }
}

#[derive(Debug)]
struct State {
    /// Exact total delay of the best completion of this prefix.
    est: f32,
    /// Delay of the prefix (up to and including `node`).
    prefix: f32,
    /// Current gate.
    node: u32,
    /// Index of the parent state in the search arena.
    parent: usize,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.est == other.est
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by estimate; ties by node id for determinism.
        self.est
            .partial_cmp(&other.est)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Extracts the `k` longest complete paths under `view`, in descending
/// delay order.
pub fn k_critical_paths(c: &Circuit, view: &View, k: usize) -> Vec<TimingPath> {
    if k == 0 || c.num_gates() == 0 {
        return Vec::new();
    }

    // Max downstream remaining delay from each gate to any PO.
    let mut down = vec![f32::NEG_INFINITY; c.num_gates()];
    for &po in &c.primary_outputs {
        down[po as usize] = 0.0;
    }
    for level in c.levels.iter().rev() {
        for &g in level {
            let g = g as usize;
            for &s in &c.fanout[g] {
                let s = s as usize;
                let cand = gate_delay(c, s, view) + down[s];
                if cand > down[g] {
                    down[g] = cand;
                }
            }
        }
    }

    // Arena of search-tree states for path reconstruction.
    let mut arena: Vec<(u32, usize)> = Vec::new(); // (node, parent)
    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    for &pi in &c.primary_inputs {
        if down[pi as usize].is_finite() {
            let prefix = gate_delay(c, pi as usize, view);
            arena.push((pi, usize::MAX));
            heap.push(State {
                est: prefix + down[pi as usize],
                prefix,
                node: pi,
                parent: arena.len() - 1,
            });
        }
    }

    let mut out = Vec::with_capacity(k);
    // Expansion cap guards against pathological fan-out explosions.
    let cap = 200_000usize.max(k * 64);
    let mut expansions = 0usize;

    while let Some(st) = heap.pop() {
        expansions += 1;
        if expansions > cap {
            break;
        }
        let node = st.node as usize;
        if c.fanout[node].is_empty() {
            // Complete path; reconstruct from parent links.
            let mut gates = Vec::new();
            let mut cur = st.parent;
            while cur != usize::MAX {
                gates.push(arena[cur].0);
                cur = arena[cur].1;
            }
            gates.reverse();
            out.push(TimingPath {
                gates,
                delay: st.prefix,
                slack: view.mode.clock_period - st.prefix,
            });
            if out.len() >= k {
                break;
            }
            continue;
        }
        for &s in &c.fanout[node] {
            let sd = down[s as usize];
            if !sd.is_finite() {
                continue;
            }
            let prefix = st.prefix + gate_delay(c, s as usize, view);
            arena.push((s, st.parent));
            heap.push(State {
                est: prefix + sd,
                prefix,
                node: s,
                parent: arena.len() - 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CircuitConfig, Gate, GateKind};
    use crate::views::{Corner, Mode};

    fn test_view(period: f32) -> View {
        View {
            corner: Corner {
                name: "t".into(),
                delay_scale: 1.0,
                ocv: 0.05,
            },
            mode: Mode {
                name: "m".into(),
                clock_period: period,
            },
            seed: 0,
        }
    }

    /// Exhaustive path enumeration for small circuits.
    fn brute_force(c: &Circuit, view: &View) -> Vec<(Vec<u32>, f32)> {
        let mut all = Vec::new();
        fn dfs(
            c: &Circuit,
            view: &View,
            g: usize,
            path: &mut Vec<u32>,
            delay: f32,
            all: &mut Vec<(Vec<u32>, f32)>,
        ) {
            let d = delay + gate_delay(c, g, view);
            path.push(g as u32);
            if c.fanout[g].is_empty() {
                all.push((path.clone(), d));
            } else {
                for &s in &c.fanout[g] {
                    dfs(c, view, s as usize, path, d, all);
                }
            }
            path.pop();
        }
        for &pi in &c.primary_inputs {
            dfs(c, view, pi as usize, &mut Vec::new(), 0.0, &mut all);
        }
        // Only paths ending at primary outputs are timing paths; logic
        // dead-ends are not endpoints.
        all.retain(|(p, _)| c.primary_outputs.contains(p.last().unwrap()));
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        all
    }

    #[test]
    fn matches_brute_force_on_random_circuits() {
        for seed in 0..5 {
            let c = Circuit::synthesize(&CircuitConfig {
                num_gates: 60,
                window: 16,
                seed,
                ..Default::default()
            });
            let v = test_view(1.0);
            let truth = brute_force(&c, &v);
            let k = truth.len().min(12);
            let got = k_critical_paths(&c, &v, k);
            assert_eq!(got.len(), k, "seed {seed}");
            for (i, p) in got.iter().enumerate() {
                assert!(
                    (p.delay - truth[i].1).abs() < 1e-5,
                    "seed {seed} rank {i}: {} vs {}",
                    p.delay,
                    truth[i].1
                );
            }
        }
    }

    #[test]
    fn descending_order_and_valid_paths() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 500,
            ..Default::default()
        });
        let v = test_view(0.5);
        let ps = k_critical_paths(&c, &v, 20);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].delay >= w[1].delay - 1e-6);
        }
        for p in &ps {
            // Path starts at a PI, ends at a PO, edges exist.
            assert!(c.primary_inputs.contains(&p.gates[0]));
            assert!(c.primary_outputs.contains(p.gates.last().unwrap()));
            for e in p.gates.windows(2) {
                assert!(c.fanout[e[0] as usize].contains(&e[1]));
            }
            assert!((p.slack - (0.5 - p.delay)).abs() < 1e-6);
        }
    }

    #[test]
    fn k_zero_and_k_larger_than_paths() {
        let gates = vec![
            Gate { kind: GateKind::Input, delay_factor: 1.0 },
            Gate { kind: GateKind::Output, delay_factor: 1.0 },
        ];
        let fanin = vec![vec![], vec![0]];
        let fanout = vec![vec![1], vec![]];
        let c = Circuit {
            gates,
            fanin,
            fanout,
            primary_inputs: vec![0],
            primary_outputs: vec![1],
            levels: vec![vec![0], vec![1]],
        };
        let v = test_view(1.0);
        assert!(k_critical_paths(&c, &v, 0).is_empty());
        let ps = k_critical_paths(&c, &v, 10);
        assert_eq!(ps.len(), 1, "only one path exists");
    }
}
