//! Virtual machine description.

use hf_gpu::CostModel;

/// How workers relate to GPUs in the simulated scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// The paper's design: every worker runs every task kind; GPU ops are
    /// scoped to the assigned device through per-worker streams ("we do
    /// not dedicate a worker to manage a target GPU", §III-C).
    Unified,
    /// The baseline of prior systems (StarPU-style, paper refs [8], [19]):
    /// one worker per GPU runs only that device's tasks; the remaining
    /// workers run only CPU tasks. The A2 ablation.
    DedicatedGpuWorkers,
}

/// A virtual CPU-GPU machine for the discrete-event model.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// CPU worker threads (the paper sweeps 1..40).
    pub cores: usize,
    /// GPU devices (the paper sweeps 1..4).
    pub gpus: u32,
    /// Device-op cost model (copies, kernel throughput).
    pub cost: CostModel,
    /// Scheduler style.
    pub mode: SchedulerMode,
    /// Worker-side cost of dispatching one asynchronous GPU op
    /// (enqueue + completion-callback bookkeeping). GPU tasks occupy a
    /// worker only this long; the op itself runs on the device and
    /// releases successors on completion, as in the real executor.
    pub dispatch_overhead: hf_gpu::SimDuration,
}

impl Machine {
    /// A unified-scheduler machine with the default cost model.
    pub fn new(cores: usize, gpus: u32) -> Self {
        Self {
            cores: cores.max(1),
            gpus,
            cost: CostModel::default(),
            mode: SchedulerMode::Unified,
            dispatch_overhead: hf_gpu::SimDuration::from_micros(5),
        }
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the scheduler mode.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Self {
        self.mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cores_clamped() {
        let m = Machine::new(0, 1);
        assert_eq!(m.cores, 1);
        assert_eq!(m.mode, SchedulerMode::Unified);
    }
}
