//! Topologies: per-submission execution state, and the future returned to
//! callers.
//!
//! "When a graph is submitted to an executor, a special data structure
//! called *topology* is created to marshal execution parameters and
//! runtime metadata ... The communication is based on a shared state
//! managed by a pair of C++ promise and future objects" (§III-C).
//!
//! Beyond the paper's promise/future pair, the topology carries the
//! fault-tolerance state of one submission: per-node attempt counters for
//! the retry policy, per-node `round_ok` flags that let device failover
//! replay exactly the invalidated part of a round, and the cooperative
//! cancellation flag shared with every clone of the [`RunFuture`].
//!
//! ## The epoch model
//!
//! Since the streaming redesign, one topology executes exactly **one
//! epoch** — a single pass over the frozen graph. The sequential drivers
//! (`run`, `run_n`, `run_until`) and the streaming [`crate::Session`]
//! both create a fresh topology per epoch and chain them through the
//! [`Topology::on_finish`] hook, so there is a single execution code
//! path. All wait/cancel state lives in the shared [`Completion`] core,
//! which both [`RunFuture`] and [`crate::EpochFuture`] wrap.

use crate::error::HfError;
use crate::graph::{FrozenGraph, PullState};
use crate::placement::Placement;
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Poll, Waker};
use std::time::{Duration, Instant};

/// Shared promise state of one run or epoch (the C++ promise half).
pub(crate) struct Promise {
    state: Mutex<PromiseState>,
    cv: Condvar,
}

#[derive(Default)]
struct PromiseState {
    result: Option<Result<(), HfError>>,
    wakers: Vec<Waker>,
}

impl Promise {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PromiseState::default()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<(), HfError>) {
        let mut st = self.state.lock();
        if st.result.is_some() {
            return;
        }
        st.result = Some(result);
        let wakers = std::mem::take(&mut st.wakers);
        self.cv.notify_all();
        drop(st);
        for w in wakers {
            w.wake();
        }
    }

    fn wait(&self) -> Result<(), HfError> {
        let mut st = self.state.lock();
        while st.result.is_none() {
            self.cv.wait(&mut st);
        }
        st.result.clone().expect("checked above")
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(r) = &st.result {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut st, deadline - now);
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().result.is_some()
    }

    fn poll(&self, cx: &mut std::task::Context<'_>) -> Poll<Result<(), HfError>> {
        let mut st = self.state.lock();
        if let Some(r) = &st.result {
            Poll::Ready(r.clone())
        } else {
            if !st.wakers.iter().any(|w| w.will_wake(cx.waker())) {
                st.wakers.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }
}

/// The shared wait/cancel core behind every run- and epoch-future.
///
/// This is the *blessed* completion surface (see DESIGN.md): one promise,
/// one cooperative cancellation flag, the submission's process-unique
/// `run_id`, and — for streaming epochs — the epoch index. [`RunFuture`]
/// and [`crate::EpochFuture`] are thin newtypes over a `Completion`;
/// detached monitor handles (watchdogs, deadline enforcers) hold a clone
/// of the same core, so `wait`, `wait_timeout`, deadline-cancel, and
/// watchdog cancellation all observe identical state.
#[derive(Clone)]
pub struct Completion {
    pub(crate) promise: Arc<Promise>,
    /// Cooperative cancellation flag, shared with the topology: checked
    /// at task boundaries, round boundaries, and inside pending GPU
    /// stream operations.
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) run_id: u64,
    pub(crate) epoch: Option<u64>,
}

impl Completion {
    /// A fresh, incomplete core for one run.
    pub(crate) fn new(run_id: u64) -> Self {
        Self {
            promise: Promise::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id,
            epoch: None,
        }
    }

    /// A fresh, incomplete core for one streaming epoch.
    pub(crate) fn new_epoch(run_id: u64, epoch: u64) -> Self {
        Self {
            promise: Promise::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id,
            epoch: Some(epoch),
        }
    }

    /// An already-completed core (empty graphs, rejected submissions).
    /// Carries run id `0`: such futures never execute and never emit
    /// lifecycle events.
    pub(crate) fn ready(result: Result<(), HfError>) -> Self {
        let c = Self::new(0);
        c.promise.complete(result);
        c
    }

    /// Blocks until the run/epoch finishes; returns its result.
    pub fn wait(&self) -> Result<(), HfError> {
        self.promise.wait()
    }

    /// Blocks for at most `timeout`. Returns `None` when the deadline
    /// expired with the work still in flight (it keeps going — call
    /// `wait*` again or [`Completion::cancel`]), otherwise the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        self.promise.wait_timeout(timeout)
    }

    /// Requests cooperative cancellation. Non-blocking: in-flight task
    /// bodies finish, everything not yet started is skipped (including
    /// ops already enqueued on GPU streams), and the run/epoch completes
    /// with [`HfError::Cancelled`]. Cancelling finished work is a no-op.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// True once cancellation has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// True once the run/epoch has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.promise.is_done()
    }

    /// Process-unique id of the owning submission. Lifecycle events
    /// recorded by a flight recorder carry the same id (`0` for
    /// immediately-ready futures, which never emit events). Every epoch
    /// of one stream shares the stream's run id.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The epoch index within a stream, `None` for one-shot runs.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("run_id", &self.run_id)
            .field("epoch", &self.epoch)
            .field("done", &self.is_done())
            .field("cancel_requested", &self.cancel.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::future::Future for Completion {
    type Output = Result<(), HfError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> Poll<Self::Output> {
        self.promise.poll(cx)
    }
}

/// Superseded by [`Completion`], which a `CancelHandle` now is: the
/// detached handle used by health monitors to watch progress and trip
/// cooperative cancellation is the same shared core the futures wrap.
#[doc(hidden)]
pub type CancelHandle = Completion;

/// Future returned by [`crate::Executor::run`] and friends. All run
/// methods are non-blocking: "issuing a run on a graph returns immediately
/// with a C++ future object" (§III-B). Supports blocking
/// ([`RunFuture::wait`]), deadline-bounded ([`RunFuture::wait_timeout`]),
/// and async (`.await`) consumption, plus cooperative cancellation
/// ([`RunFuture::cancel`]). Clones share the same run.
#[derive(Clone)]
pub struct RunFuture {
    pub(crate) core: Completion,
}

impl std::fmt::Debug for RunFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunFuture")
            .field("done", &self.is_done())
            .field(
                "cancel_requested",
                &self.core.cancel.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl RunFuture {
    /// Blocks until the run finishes; returns its result.
    pub fn wait(&self) -> Result<(), HfError> {
        self.core.wait()
    }

    /// Blocks for at most `timeout`. Returns `None` when the deadline
    /// expired with the run still in flight (the run keeps going — call
    /// `wait*` again or [`RunFuture::cancel`] it), otherwise the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<(), HfError>> {
        self.core.wait_timeout(timeout)
    }

    /// Requests cooperative cancellation. Non-blocking: in-flight task
    /// bodies finish, everything not yet started is skipped (including
    /// ops already enqueued on GPU streams), and the run completes with
    /// [`HfError::Cancelled`]. Cancelling a finished run is a no-op.
    pub fn cancel(&self) {
        self.core.cancel();
    }

    /// True once the run has finished (success or error).
    pub fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// Process-unique id of this submission. Lifecycle events recorded by
    /// a flight recorder carry the same id, so a health monitor can map a
    /// future to its event stream (`0` for immediately-ready futures,
    /// which never execute and never emit events).
    pub fn run_id(&self) -> u64 {
        self.core.run_id()
    }

    /// A detached, cloneable handle to this run's completion and
    /// cancellation state — for monitor threads (watchdogs, deadline
    /// enforcers) that run beside whoever owns the future itself. Since
    /// the wait-semantics unification this is simply a clone of the
    /// shared [`Completion`] core.
    pub fn handle(&self) -> CancelHandle {
        self.core.clone()
    }

    /// An already-completed future (empty graphs, zero repeats).
    pub(crate) fn ready(result: Result<(), HfError>) -> Self {
        Self {
            core: Completion::ready(result),
        }
    }
}

impl std::future::Future for RunFuture {
    type Output = Result<(), HfError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> Poll<Self::Output> {
        self.core.promise.poll(cx)
    }
}

/// Admission gate of one streaming epoch: the epoch's *body* (kernels,
/// pushes, and their descendants) stays parked — via join-counter
/// inflation on the gate heads — until the previous epoch of the stream
/// completes. The *prologue* (host tasks and pulls) runs immediately, so
/// epoch N+1's H2D transfers overlap epoch N's kernels.
pub(crate) struct EpochGate {
    /// Body nodes with no body predecessor (the inflated entry points).
    pub(crate) heads: Vec<usize>,
    /// Per-node flag for O(1) "is this a gate head" checks.
    pub(crate) is_head: Vec<bool>,
    /// Set once the gate opened; opening is idempotent.
    pub(crate) opened: AtomicBool,
}

/// Tracks the prologue (non-body) portion of a streaming epoch so the
/// session can admit the next epoch — and apply its input mutation — as
/// soon as every host task and pull of this epoch has drained.
pub(crate) struct PrologueTrack {
    /// True for prologue members (host tasks / pulls not downstream of a
    /// kernel or push).
    pub(crate) is_prologue: Arc<Vec<bool>>,
    /// Prologue nodes not yet finished this epoch. Saturating: failover
    /// replay may re-finish a prologue node.
    pub(crate) pending: AtomicUsize,
    /// Fired exactly once when `pending` reaches zero.
    pub(crate) hook: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

/// Guards failover replay against superseded host inputs: once the
/// session has admitted a later epoch (and run its input mutator), this
/// epoch's pulls must not be replayed — they would read the *next*
/// epoch's data. `gen` is the session's input generation counter;
/// `admitted_gen` its value when this epoch was admitted.
pub(crate) struct InputGuard {
    pub(crate) gen: Arc<AtomicU64>,
    pub(crate) admitted_gen: u64,
}

/// Optional epoch-execution context for [`Topology::new`]. Sequential
/// one-shot epochs use `TopoExtras::default()`; streaming sessions fill
/// in the gate, prologue tracking, ring-slot residency, and hooks.
/// Hook invoked once by `finish_topology` after an epoch resolves;
/// sequential drivers and stream sessions chain the next epoch here.
pub(crate) type EpochFinishHook = Box<dyn FnOnce(&Arc<Topology>) + Send>;

#[derive(Default)]
pub(crate) struct TopoExtras {
    /// Epoch index within a stream; `None` for sequential runs.
    pub(crate) epoch: Option<u64>,
    /// Ring-slot pull residency replacing the frozen graph's own
    /// `PullState`s (double buffering across in-flight epochs).
    pub(crate) pull_override: Option<Arc<Vec<Mutex<PullState>>>>,
    /// Body admission gate (streaming pipelining).
    pub(crate) gate: Option<EpochGate>,
    /// Prologue drain tracking (streaming admission).
    pub(crate) prologue: Option<PrologueTrack>,
    /// Invoked by `finish_topology` after the epoch resolved; drivers and
    /// sessions chain the next epoch here.
    pub(crate) on_finish: Option<EpochFinishHook>,
    /// Failover input-hazard guard (streaming).
    pub(crate) input_guard: Option<InputGuard>,
    /// Tenant the submission is attributed to ([`crate::Fleet`]
    /// submissions); stamped onto every lifecycle event of the epoch.
    pub(crate) tenant: Option<Arc<str>>,
}

/// Per-submission runtime state: join counters, round bookkeeping, device
/// placement, the stopping predicate, and the epoch-completion hook. One
/// topology executes one epoch (a single pass over the frozen graph);
/// drivers chain topologies for multi-epoch runs.
pub(crate) struct Topology {
    pub(crate) frozen: Arc<FrozenGraph>,
    /// Process-unique submission id (shared with the [`RunFuture`] /
    /// [`crate::Session`] and every lifecycle event of this run).
    pub(crate) run_id: u64,
    /// Graph name as a shared string, cloned into lifecycle events
    /// without reallocating.
    pub(crate) graph_label: Arc<str>,
    /// Current device placement. Initially shared with the graph's
    /// scheduling cache; device failover swaps in a re-placed plan.
    pub(crate) placement: RwLock<Arc<Placement>>,
    /// Remaining unmet dependencies per node, reset each round.
    pub(crate) join: Vec<AtomicUsize>,
    /// Nodes not yet finished this round.
    pub(crate) pending: AtomicUsize,
    /// Stopping predicate: `true` means stop (checked before each round).
    pub(crate) predicate: Mutex<Box<dyn FnMut() -> bool + Send>>,
    /// First error observed during execution.
    pub(crate) error: Mutex<Option<HfError>>,
    /// Set once an error occurs: remaining task bodies are skipped while
    /// the round drains.
    pub(crate) cancelled: AtomicBool,
    /// Cooperative cancellation requested via [`Completion::cancel`];
    /// shared with the owning future's core.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Rounds completed (diagnostic).
    pub(crate) rounds: AtomicUsize,
    /// Task fusion plan (§III-C "task fusing"). Initially shared with the
    /// graph's scheduling cache; failover swaps in a replay-masked plan.
    pub(crate) fusion: RwLock<Arc<FusionPlan>>,
    /// The fusion plan is a failover replay mask and must be recomputed
    /// for the new placement before the next full round.
    pub(crate) fusion_stale: AtomicBool,
    /// Failed attempts per node this round (retry-policy bookkeeping).
    pub(crate) attempts: Vec<AtomicU32>,
    /// Whether each node completed successfully this round. Device
    /// failover uses this to replay exactly the unfinished/invalidated
    /// part of the round.
    pub(crate) round_ok: Vec<AtomicBool>,
    /// A device loss requested failover; handled when the round drains.
    /// Holds the triggering error so a failed failover reports it.
    pub(crate) failover: Mutex<Option<HfError>>,
    /// Fast-path mirror of `failover.is_some()`: workers skip task bodies
    /// while a failover is pending so half-failed state never propagates.
    pub(crate) failover_pending: AtomicBool,
    /// Failovers performed for this submission (bounded by the policy).
    pub(crate) failovers: AtomicU32,
    /// Slot in the executor's topology registry while this topology is in
    /// flight; `u32::MAX` before registration. Work tokens pack this slot
    /// with a node index, so queued items carry no heap pointer.
    pub(crate) slot: AtomicU32,
    /// Epoch index within a stream; `None` for sequential epochs.
    pub(crate) epoch: Option<u64>,
    /// Ring-slot pull residency (streaming double buffering); `None`
    /// falls back to the frozen nodes' own `PullState`s.
    pub(crate) pull_override: Option<Arc<Vec<Mutex<PullState>>>>,
    /// Streaming body admission gate.
    pub(crate) gate: Option<EpochGate>,
    /// Streaming prologue drain tracking.
    pub(crate) prologue: Option<PrologueTrack>,
    /// Invoked (once) by `finish_topology` after the epoch resolved.
    pub(crate) on_finish: Mutex<Option<EpochFinishHook>>,
    /// Failover input-hazard guard (streaming).
    pub(crate) input_guard: Option<InputGuard>,
    /// Tenant attribution (fleet submissions); cloned into lifecycle
    /// events so per-tenant latency histograms can be folded downstream.
    pub(crate) tenant: Option<Arc<str>>,
    /// Retry-policy re-dispatches performed within this epoch. Drivers
    /// accumulate it across chained epochs so a fleet can charge the
    /// retry work to the owning tenant's budget.
    pub(crate) retries: AtomicU32,
}

impl Topology {
    pub(crate) fn new(
        frozen: Arc<FrozenGraph>,
        run_id: u64,
        placement: Arc<Placement>,
        fusion: Arc<FusionPlan>,
        predicate: Box<dyn FnMut() -> bool + Send>,
        cancel: Arc<AtomicBool>,
        extras: TopoExtras,
    ) -> Arc<Self> {
        let n = frozen.nodes.len();
        let join = frozen
            .nodes
            .iter()
            .map(|nd| AtomicUsize::new(nd.num_deps))
            .collect();
        let graph_label: Arc<str> = Arc::from(frozen.name.as_str());
        Arc::new(Self {
            frozen: Arc::clone(&frozen),
            run_id,
            graph_label,
            placement: RwLock::new(placement),
            join,
            pending: AtomicUsize::new(n),
            predicate: Mutex::new(predicate),
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
            cancel,
            rounds: AtomicUsize::new(0),
            fusion: RwLock::new(fusion),
            fusion_stale: AtomicBool::new(false),
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            round_ok: (0..n).map(|_| AtomicBool::new(false)).collect(),
            failover: Mutex::new(None),
            failover_pending: AtomicBool::new(false),
            failovers: AtomicU32::new(0),
            slot: AtomicU32::new(u32::MAX),
            epoch: extras.epoch,
            pull_override: extras.pull_override,
            gate: extras.gate,
            prologue: extras.prologue,
            on_finish: Mutex::new(extras.on_finish),
            input_guard: extras.input_guard,
            tenant: extras.tenant,
            retries: AtomicU32::new(0),
        })
    }

    /// Current placement (failover may swap it between rounds).
    pub(crate) fn placement(&self) -> Arc<Placement> {
        Arc::clone(&self.placement.read())
    }

    /// Current fusion plan (failover may swap it between rounds).
    pub(crate) fn fusion(&self) -> Arc<FusionPlan> {
        Arc::clone(&self.fusion.read())
    }

    /// The pull residency of `node` for this epoch: the ring slot when
    /// streaming double buffering is active, otherwise the frozen node's
    /// own persistent `PullState` (sequential epochs, where residency
    /// carries across epochs and re-freezes).
    pub(crate) fn pull_state(&self, node: usize) -> &Mutex<PullState> {
        match &self.pull_override {
            Some(ring) => &ring[node],
            None => &self.frozen.nodes[node].pull_state,
        }
    }

    /// True once the caller requested cancellation.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// Records a device-loss failover request; the first cause wins.
    pub(crate) fn request_failover(&self, cause: HfError) {
        let mut f = self.failover.lock();
        if f.is_none() {
            *f = Some(cause);
        }
        self.failover_pending.store(true, Ordering::Release);
    }

    /// Resets per-round counters for the next repetition. When a
    /// still-closed epoch gate is present, the gate heads' join counters
    /// are inflated by one: the extra dependency is consumed by
    /// `open_gate` when the previous epoch of the stream completes.
    pub(crate) fn reset_round(&self) {
        for (j, n) in self.join.iter().zip(&self.frozen.nodes) {
            j.store(n.num_deps, Ordering::Relaxed);
        }
        if let Some(g) = &self.gate {
            if !g.opened.load(Ordering::Acquire) {
                for &h in &g.heads {
                    self.join[h].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for a in &self.attempts {
            a.store(0, Ordering::Relaxed);
        }
        for ok in &self.round_ok {
            ok.store(false, Ordering::Relaxed);
        }
        self.pending
            .store(self.frozen.nodes.len(), Ordering::Release);
    }

    /// Records the first error and cancels remaining bodies.
    pub(crate) fn fail(&self, e: HfError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.cancelled.store(true, Ordering::Release);
    }

    /// The final result for the completion promise.
    pub(crate) fn result(&self) -> Result<(), HfError> {
        match self.error.lock().clone() {
            Some(e) => Err(e),
            None if self.cancel_requested() => Err(HfError::Cancelled),
            None => Ok(()),
        }
    }
}

/// Precomputed GPU task-fusion chains (§III-C "task fusing"). Pure
/// function of (frozen graph, placement, fusion flag), so the executor
/// caches it alongside the placement and reuses it across submissions of
/// an unchanged graph.
pub(crate) struct FusionPlan {
    /// `next[v]` chains v to a GPU successor dispatched on the same
    /// stream submission; members of a chain (non-heads) are never
    /// scheduled individually.
    pub(crate) next: Vec<Option<u32>>,
    /// True for chain members (every node with a fused predecessor).
    pub(crate) member: Vec<bool>,
}

impl FusionPlan {
    /// Identifies fusible GPU chains: node `v` fuses to its successor `w`
    /// when `v` is a GPU task, `w` is a *kernel or push* task whose only
    /// dependency is `v`, and both are placed on the same device. Pull
    /// tasks are never fused as members (their device allocation sizes
    /// bind at dispatch time and must observe their host-side
    /// predecessors).
    pub(crate) fn compute(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
    ) -> Self {
        Self::plan(frozen, placement, enabled, None)
    }

    /// [`FusionPlan::compute`] restricted to the `active` nodes — the
    /// failover replay plan, and the streaming body plan (a chain must
    /// never lead from a prologue pull into a gated body kernel, or the
    /// member would bypass the epoch gate). A chain must not lead from an
    /// already-finished head into a replayed member (the head would never
    /// be dispatched again), so both endpoints must be active.
    pub(crate) fn compute_masked(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
        active: &[bool],
    ) -> Self {
        Self::plan(frozen, placement, enabled, Some(active))
    }

    fn plan(
        frozen: &FrozenGraph,
        placement: &crate::placement::Placement,
        enabled: bool,
        active: Option<&[bool]>,
    ) -> Self {
        use crate::graph::TaskKind;
        let n = frozen.nodes.len();
        let mut next = vec![None; n];
        let mut member = vec![false; n];
        if !enabled {
            return Self { next, member };
        }
        let is_active = |i: usize| active.is_none_or(|a| a[i]);
        #[allow(clippy::needless_range_loop)] // v indexes three parallel arrays
        for v in 0..n {
            if !is_active(v) {
                continue;
            }
            let vk = frozen.nodes[v].work.kind();
            let v_gpu = matches!(vk, TaskKind::Pull | TaskKind::Push | TaskKind::Kernel);
            if !v_gpu || frozen.nodes[v].succ.len() != 1 {
                continue;
            }
            let w = frozen.nodes[v].succ[0];
            let wk = frozen.nodes[w].work.kind();
            let w_fusible = matches!(wk, TaskKind::Push | TaskKind::Kernel);
            if w_fusible
                && is_active(w)
                && frozen.nodes[w].num_deps == 1
                && placement.device_of[v] == placement.device_of[w]
                && !member[w]
            {
                next[v] = Some(w as u32);
                member[w] = true;
            }
        }
        Self { next, member }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_future(c: &Arc<Promise>) -> RunFuture {
        RunFuture {
            core: Completion {
                promise: Arc::clone(c),
                cancel: Arc::new(AtomicBool::new(false)),
                run_id: 0,
                epoch: None,
            },
        }
    }

    #[test]
    fn completion_wait_and_poll() {
        let c = Promise::new();
        let fut = test_future(&c);
        assert!(!fut.is_done());
        c.complete(Ok(()));
        assert!(fut.is_done());
        assert!(fut.wait().is_ok());
        // Second completion is ignored.
        c.complete(Err(HfError::ExecutorShutDown));
        assert!(fut.wait().is_ok());
    }

    #[test]
    fn ready_future() {
        let f = RunFuture::ready(Err(HfError::ExecutorShutDown));
        assert!(f.is_done());
        assert_eq!(f.wait(), Err(HfError::ExecutorShutDown));
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let c = Promise::new();
        let fut = test_future(&c);
        assert_eq!(fut.wait_timeout(Duration::from_millis(20)), None);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            c2.complete(Ok(()));
        });
        assert_eq!(fut.wait_timeout(Duration::from_secs(10)), Some(Ok(())));
        // Completed future: any timeout returns immediately.
        assert_eq!(fut.wait_timeout(Duration::ZERO), Some(Ok(())));
        t.join().unwrap();
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let c = Promise::new();
        let fut = test_future(&c);
        let clone = fut.clone();
        clone.cancel();
        assert!(fut.core.cancel.load(Ordering::Acquire));
        // The detached handle observes and controls the same core.
        let h = fut.handle();
        assert!(h.cancel_requested());
        assert!(!h.is_done());
    }

    #[test]
    fn future_is_pollable() {
        // Poll with a no-op waker through a minimal block_on.
        let c = Promise::new();
        let fut = test_future(&c);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            c2.complete(Ok(()));
        });
        let result = pollster_block_on(fut);
        assert!(result.is_ok());
        t.join().unwrap();
    }

    #[test]
    fn completion_core_is_awaitable_and_tagged() {
        let c = Promise::new();
        let core = Completion {
            promise: Arc::clone(&c),
            cancel: Arc::new(AtomicBool::new(false)),
            run_id: 7,
            epoch: Some(3),
        };
        assert_eq!(core.run_id(), 7);
        assert_eq!(core.epoch(), Some(3));
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            c2.complete(Ok(()));
        });
        assert!(pollster_block_on(core).is_ok());
        t.join().unwrap();
    }

    /// Minimal executor for testing `impl Future` without external deps.
    fn pollster_block_on<F: std::future::Future>(fut: F) -> F::Output {
        use std::sync::mpsc;
        use std::task::{Context, RawWaker, RawWakerVTable};
        let (tx, rx) = mpsc::channel::<()>();

        fn raw(tx: *const ()) -> RawWaker {
            RawWaker::new(tx, &VTABLE)
        }
        unsafe fn clone(tx: *const ()) -> RawWaker {
            let t = &*(tx as *const mpsc::Sender<()>);
            let boxed = Box::new(t.clone());
            raw(Box::into_raw(boxed) as *const ())
        }
        unsafe fn wake(tx: *const ()) {
            let t = Box::from_raw(tx as *mut mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn wake_by_ref(tx: *const ()) {
            let t = &*(tx as *const mpsc::Sender<()>);
            let _ = t.send(());
        }
        unsafe fn drop_waker(tx: *const ()) {
            drop(Box::from_raw(tx as *mut mpsc::Sender<()>));
        }
        static VTABLE: RawWakerVTable =
            RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);

        let boxed = Box::new(tx);
        let waker =
            unsafe { std::task::Waker::from_raw(raw(Box::into_raw(boxed) as *const ())) };
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    let _ = rx.recv();
                }
            }
        }
    }
}
