//! Figure 6: VLSI timing-correlation runtime vs CPU/GPU counts and vs
//! problem size (number of views).
//!
//! Reproduces both panels of Fig 6 (§IV-A): the paper analyzes `netcard`
//! (1.5M gates) across 1024 views on 1–40 cores and 1–4 GPUs, reporting
//! 99 min at 1c/1g down to 13 min at 40c/4g (7.7×).
//!
//! Method (see DESIGN.md): the real multi-view correlation task graph is
//! built at a scaled circuit size; the CPU task bodies are *executed and
//! timed* on this machine, then scaled to netcard size; the discrete-event
//! model replays the graph — with the real Algorithm 1 placement — on
//! virtual (cores, gpus) machines. GPU kernel throughput is tuned so the
//! per-view GPU share matches the paper's observed CPU/GPU balance
//! ("we ... control the sample size such that each analysis view takes
//! approximately the same runtime").
//!
//! Usage:
//!   cargo run --release -p hf-bench --bin fig6_timing
//!     [--views 1024] [--gates 20000] [--paths 256] [--epochs 60]
//!     [--placement balanced|roundrobin|random]   (A1 ablation)
//!     [--sweep cores|views|both] [--json]

use hf_bench::{print_matrix, Args, NameCosts, Row};
use hf_core::placement::PlacementPolicy;
use hf_core::{GraphInfo, TaskKind};
use hf_gpu::{CostModel, SimDuration};
use hf_sim::{simulate, Machine, SchedulerMode};
use hf_timing::correlation::{build_correlation_graph, CorrelationConfig};
use hf_timing::cppr::{apply_cppr, ClockTree};
use hf_timing::regression::NUM_FEATURES;
use hf_timing::views::make_views;
use hf_timing::{k_critical_paths, Circuit, CircuitConfig};
use std::sync::Arc;

/// Paper's netcard size, for cost scaling.
const NETCARD_GATES: f64 = 1_500_000.0;
/// Core counts of the Fig 6 upper panel.
const CORE_SWEEP: [usize; 6] = [1, 8, 16, 24, 32, 40];
/// GPU counts of the Fig 6 upper panel.
const GPU_SWEEP: [u32; 4] = [1, 2, 3, 4];
/// View counts of the Fig 6 lower panel.
const VIEW_SWEEP: [usize; 6] = [32, 64, 128, 256, 512, 1024];

struct Setup {
    circuit: Arc<Circuit>,
    cfg: CorrelationConfig,
    costs: NameCosts,
    cost_model: CostModel,
    policy: PlacementPolicy,
}

/// Fills pull/push byte sizes that are only known after the gen task
/// runs (the dataset shapes are deterministic from the config).
fn patch_dataset_bytes(info: &mut GraphInfo, paths: usize) {
    let bx = paths * NUM_FEATURES * 4;
    let by = paths * 4;
    let bw = (NUM_FEATURES + 1) * 4;
    for n in &mut info.nodes {
        if n.kind == TaskKind::Pull || n.kind == TaskKind::Push {
            if n.name.starts_with("pull_x") {
                n.bytes = bx;
            } else if n.name.starts_with("pull_y") {
                n.bytes = by;
            } else if n.name.starts_with("pull_w") || n.name.starts_with("push_w") {
                n.bytes = bw;
            }
        }
    }
}

fn build_info(setup: &Setup, views: usize) -> GraphInfo {
    let vs = make_views(views, 0.4);
    let built = build_correlation_graph(Arc::clone(&setup.circuit), &vs, setup.cfg);
    let mut info = built.graph.info().expect("acyclic by construction");
    patch_dataset_bytes(&mut info, setup.cfg.paths_per_view);
    info
}

fn minutes(info: &GraphInfo, setup: &Setup, cores: usize, gpus: u32) -> f64 {
    let m = Machine::new(cores, gpus)
        .with_cost(setup.cost_model)
        .with_mode(SchedulerMode::Unified);
    let r = simulate(info, &m, setup.policy, setup.costs.for_graph(info))
        .expect("valid graph and machine");
    r.makespan_secs / 60.0
}

fn main() {
    let args = Args::parse();
    let views: usize = args.get("views", 1024);
    let gates: usize = args.get("gates", 20_000);
    let paths: usize = args.get("paths", 256);
    let epochs: usize = args.get("epochs", 60);
    let sweep = args.get_str("sweep").unwrap_or("both").to_string();
    let policy = match args.get_str("placement").unwrap_or("balanced") {
        "roundrobin" => PlacementPolicy::RoundRobin,
        "random" => PlacementPolicy::Random { seed: 1 },
        _ => PlacementPolicy::BalancedLoad,
    };

    eprintln!("[fig6] synthesizing circuit ({gates} gates) ...");
    let circuit = Arc::new(Circuit::synthesize(&CircuitConfig {
        num_gates: gates,
        ..Default::default()
    }));
    let cfg = CorrelationConfig {
        paths_per_view: paths,
        epochs,
        ..Default::default()
    };

    // --- Calibrate CPU task costs by running the real task bodies. ---
    eprintln!("[fig6] calibrating host-task costs ...");
    let view0 = &make_views(1, 0.4)[0];
    let (dataset, gen_raw) = hf_sim::measure(|| {
        let mut ps = k_critical_paths(&circuit, view0, cfg.paths_per_view);
        let tree = ClockTree::build(&circuit, cfg.clock_seg_delay);
        let credits = apply_cppr(&mut ps, &tree, view0);
        hf_timing::regression::make_dataset(&ps, &credits, cfg.slack_margin)
    });
    let (_, stats_raw) = hf_sim::measure(|| {
        let w = vec![0.1f32; NUM_FEATURES + 1];
        std::hint::black_box(hf_timing::regression::accuracy(
            &w, &dataset.0, &dataset.1, NUM_FEATURES,
        ))
    });
    // Scale the dominant gen cost from our circuit to netcard size (the
    // path search is linear in gate count).
    let scale = NETCARD_GATES / gates as f64;
    let gen_cost = SimDuration::from_secs_f64(gen_raw.as_secs_f64() * scale);
    let stats_cost = SimDuration::from_nanos(stats_raw.as_nanos().max(1_000));
    let report_cost = SimDuration::from_micros(50);

    // Balance the GPU share: per-view kernel time ~= 1.2x gen time, the
    // ratio implied by the paper's 40-core GPU sweep (36/21/15/13 min).
    let wu_per_kernel = (paths * epochs * NUM_FEATURES) as f64;
    let kernel_target = gen_cost.as_secs_f64() * 1.2;
    let cost_model = CostModel {
        kernel_units_per_sec: wu_per_kernel / kernel_target.max(1e-9),
        ..CostModel::default()
    };
    eprintln!(
        "[fig6] gen={:.1}ms (scaled {:.2}s) kernel target {:.2}s",
        gen_raw.as_secs_f64() * 1e3,
        gen_cost.as_secs_f64(),
        kernel_target
    );

    let costs = NameCosts::new()
        .set("gen_v", gen_cost)
        .set("stats_v", stats_cost)
        .set("report", report_cost);
    let setup = Setup {
        circuit,
        cfg,
        costs,
        cost_model,
        policy,
    };

    let mut json = serde_json::Map::new();

    // --- Upper panel: runtime vs cores, one series per GPU count. ---
    if sweep == "cores" || sweep == "both" {
        eprintln!("[fig6] building {views}-view graph and sweeping cores x gpus ...");
        let info = build_info(&setup, views);
        let mut rows = Vec::new();
        for &g in &GPU_SWEEP {
            let values: Vec<f64> = CORE_SWEEP
                .iter()
                .map(|&c| minutes(&info, &setup, c, g))
                .collect();
            rows.push(Row {
                label: format!("{g} GPU{}", if g > 1 { "s" } else { "" }),
                values,
            });
        }
        print_matrix(
            &format!("Fig 6 (upper): runtime [min] vs cores, {views} views"),
            "cores",
            &CORE_SWEEP.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
            &rows,
            "",
        );
        let t_1c1g = rows[0].values[0];
        let t_40c4g = rows[3].values[CORE_SWEEP.len() - 1];
        println!(
            "\nbaseline 1 core/1 GPU: {t_1c1g:.1} min;  40 cores/4 GPUs: {t_40c4g:.1} min;  speed-up {:.1}x (paper: 99 -> 13 min, 7.7x)",
            t_1c1g / t_40c4g
        );
        json.insert(
            "upper".into(),
            serde_json::json!(rows
                .iter()
                .map(|r| serde_json::json!({"label": r.label, "minutes": r.values}))
                .collect::<Vec<_>>()),
        );
    }

    // --- Lower panel: runtime vs problem size (views). ---
    if sweep == "views" || sweep == "both" {
        eprintln!("[fig6] sweeping problem size ...");
        // Series over cores at 4 GPUs, and over GPUs at 40 cores.
        let mut rows = Vec::new();
        let infos: Vec<(usize, GraphInfo)> = VIEW_SWEEP
            .iter()
            .map(|&v| (v, build_info(&setup, v)))
            .collect();
        for &c in &[1usize, 16, 40] {
            rows.push(Row {
                label: format!("{c} cores, 4 GPUs"),
                values: infos.iter().map(|(_, i)| minutes(i, &setup, c, 4)).collect(),
            });
        }
        for &g in &[1u32, 2] {
            rows.push(Row {
                label: format!("40 cores, {g} GPU{}", if g > 1 { "s" } else { "" }),
                values: infos.iter().map(|(_, i)| minutes(i, &setup, 40, g)).collect(),
            });
        }
        print_matrix(
            "Fig 6 (lower): runtime [min] vs problem size (views)",
            "views",
            &VIEW_SWEEP.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
            &rows,
            "",
        );
        json.insert(
            "lower".into(),
            serde_json::json!(rows
                .iter()
                .map(|r| serde_json::json!({"label": r.label, "minutes": r.values}))
                .collect::<Vec<_>>()),
        );
    }

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::Value::Object(json)).expect("serializable")
        );
    }
}
