//! Microbenchmark + A3 ablation: the buddy-allocator memory pool vs raw
//! per-pull allocation.
//!
//! The paper's executor "keeps a memory pool for each GPU device to
//! reduce the scheduling overhead of frequent allocations by pull tasks"
//! (§III-C). This bench quantifies that choice: pooled buddy alloc/free
//! vs allocating a fresh zeroed buffer per operation (what `cudaMalloc` +
//! `cudaMemset` per pull would amount to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_gpu::BuddyAllocator;

/// The pull-task allocation pattern: bursts of allocations with
/// interleaved frees, varied sizes.
fn pool_pattern(b: &mut BuddyAllocator, sizes: &[usize]) {
    let mut live = Vec::with_capacity(sizes.len());
    for (i, &sz) in sizes.iter().enumerate() {
        live.push(b.alloc(sz).expect("pool sized for the pattern"));
        if i % 3 == 2 {
            b.free(live.swap_remove(0)).expect("valid");
        }
    }
    for off in live {
        b.free(off).expect("valid");
    }
}

fn raw_pattern(sizes: &[usize]) -> usize {
    // The no-pool baseline: a fresh zeroed buffer per "pull".
    let mut total = 0usize;
    let mut live: Vec<Vec<u8>> = Vec::with_capacity(sizes.len());
    for (i, &sz) in sizes.iter().enumerate() {
        let buf = vec![0u8; sz];
        total += buf.len();
        live.push(buf);
        if i % 3 == 2 {
            drop(live.swap_remove(0));
        }
    }
    total
}

fn ablation_a3(c: &mut Criterion) {
    let mut g = c.benchmark_group("A3/pool_vs_raw");
    for &n in &[64usize, 512] {
        let sizes: Vec<usize> = (0..n).map(|i| 256 + (i * 977) % 65536).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("buddy_pool", n), &sizes, |bch, sizes| {
            let mut b = BuddyAllocator::new(1 << 28, 256);
            bch.iter(|| pool_pattern(&mut b, sizes));
        });
        g.bench_with_input(BenchmarkId::new("raw_alloc", n), &sizes, |bch, sizes| {
            bch.iter(|| std::hint::black_box(raw_pattern(sizes)));
        });
    }
    g.finish();
}

fn buddy_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("buddy/alloc_free");
    for &order_spread in &[4usize, 10] {
        g.bench_with_input(
            BenchmarkId::new("spread", order_spread),
            &order_spread,
            |bch, &spread| {
                let mut b = BuddyAllocator::new(1 << 26, 256);
                bch.iter(|| {
                    let offs: Vec<u64> = (0..128)
                        .map(|i| b.alloc(256 << (i % spread)).expect("fits"))
                        .collect();
                    for o in offs {
                        b.free(o).expect("valid");
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, ablation_a3, buddy_scaling);
criterion_main!(benches);
