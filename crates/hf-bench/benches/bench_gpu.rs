//! Microbenchmarks of the software GPU substrate: stream op throughput,
//! copy staging, event synchronization latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hf_gpu::{Event, GpuConfig, GpuRuntime, LaunchConfig, Stream};
use std::sync::Arc;

fn stream_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/stream_ops");
    g.sample_size(10);
    for &n in &[100usize, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("host_fns", n), &n, |b, &n| {
            let rt = GpuRuntime::new(1, GpuConfig::default());
            let s = Stream::new(&rt.device(0).expect("device 0"));
            b.iter(|| {
                for _ in 0..n {
                    s.host_fn(|| {});
                }
                s.synchronize();
            });
        });
    }
    g.finish();
}

fn copy_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/h2d_d2h");
    g.sample_size(10);
    for &bytes in &[4 * 1024usize, 1024 * 1024] {
        g.throughput(Throughput::Bytes(bytes as u64 * 2));
        g.bench_with_input(BenchmarkId::new("bytes", bytes), &bytes, |b, &bytes| {
            let rt = GpuRuntime::new(1, GpuConfig::default());
            let dev = rt.device(0).expect("device 0");
            let s = Stream::new(&dev);
            let ptr = dev.alloc(bytes).expect("fits");
            let data = vec![7u8; bytes];
            b.iter(|| {
                s.h2d_async(ptr, data.clone());
                let sink = Arc::new(std::sync::Mutex::new(0usize));
                let sk = Arc::clone(&sink);
                s.d2h_with(ptr, move |b| {
                    *sk.lock().expect("unpoisoned") = b.len();
                });
                s.synchronize();
                assert_eq!(*sink.lock().expect("unpoisoned"), bytes);
            });
            dev.free(ptr).expect("valid");
        });
    }
    g.finish();
}

fn event_sync_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/event");
    g.sample_size(10);
    g.bench_function("record_sync", |b| {
        let rt = GpuRuntime::new(1, GpuConfig::default());
        let s = Stream::new(&rt.device(0).expect("device 0"));
        b.iter(|| {
            let e = Event::new();
            s.record_event(&e);
            e.synchronize();
        });
    });
    g.finish();
}

fn kernel_launch(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu/kernel");
    g.sample_size(10);
    for &n in &[1024usize, 65536] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("saxpy_threads", n), &n, |b, &n| {
            let rt = GpuRuntime::new(1, GpuConfig::default());
            let dev = rt.device(0).expect("device 0");
            let s = Stream::new(&dev);
            let x = dev.alloc(n * 4).expect("fits");
            let y = dev.alloc(n * 4).expect("fits");
            s.memset_async(x, 1);
            s.memset_async(y, 2);
            let kernel: hf_gpu::KernelFn = Arc::new(move |cfg: &LaunchConfig, args: &mut hf_gpu::KernelArgs<'_, '_>| {
                let (xs, ys) = args.slice2_mut::<f32, f32>(0, 1).expect("disjoint");
                for i in cfg.threads() {
                    if i < xs.len() {
                        ys[i] += 2.0 * xs[i];
                    }
                }
            });
            b.iter(|| {
                s.launch_kernel(LaunchConfig::cover(n, 256), Arc::clone(&kernel), vec![x, y], n as f64);
                s.synchronize();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, stream_throughput, copy_round_trip, event_sync_latency, kernel_launch);
criterion_main!(benches);
