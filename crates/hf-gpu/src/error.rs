//! Error type for the GPU substrate.

use crate::fault::FaultSite;
use std::fmt;

/// Errors surfaced by the software GPU runtime.
///
/// Non-exhaustive: match with a wildcard arm; new failure modes (like the
/// fault-injection variants) may be added without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuError {
    /// The device memory pool could not satisfy an allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently free in the pool (may be fragmented).
        free: usize,
    },
    /// A device id outside `0..num_devices` was used.
    InvalidDevice(u32),
    /// A device pointer was used on a device other than the one that
    /// allocated it — the software analogue of CUDA's
    /// `cudaErrorInvalidDevicePointer`.
    WrongDevice {
        /// Device owning the pointer.
        owner: u32,
        /// Device the operation ran on.
        used_on: u32,
    },
    /// A typed view was requested whose element size/alignment does not
    /// divide the underlying allocation.
    TypeMismatch {
        /// Bytes in the allocation.
        bytes: usize,
        /// Element size requested.
        elem: usize,
    },
    /// Copy size exceeds the device allocation or the host buffer.
    SizeMismatch {
        /// Bytes the destination can hold.
        dst: usize,
        /// Bytes the source provides.
        src: usize,
    },
    /// Operation on a runtime that has been shut down.
    ShutDown,
    /// A freed or never-allocated pointer was passed to `free`.
    InvalidFree(u64),
    /// The device has been marked lost (hardware failure, fault plan):
    /// every operation on it fails until the runtime is rebuilt.
    DeviceLost(u32),
    /// A fault injected by an installed [`crate::FaultPlan`]. Fires
    /// *before* the operation has any effect, so retrying is always safe.
    FaultInjected {
        /// Device the faulted operation targeted.
        device: u32,
        /// Where the fault fired.
        site: FaultSite,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory { requested, free } => write!(
                f,
                "device out of memory: requested {requested} bytes, {free} free"
            ),
            GpuError::InvalidDevice(d) => write!(f, "invalid device id {d}"),
            GpuError::WrongDevice { owner, used_on } => write!(
                f,
                "device pointer owned by device {owner} used on device {used_on}"
            ),
            GpuError::TypeMismatch { bytes, elem } => write!(
                f,
                "allocation of {bytes} bytes cannot be viewed as elements of {elem} bytes"
            ),
            GpuError::SizeMismatch { dst, src } => {
                write!(f, "copy size mismatch: dst {dst} bytes, src {src} bytes")
            }
            GpuError::ShutDown => write!(f, "GPU runtime has been shut down"),
            GpuError::InvalidFree(off) => {
                write!(f, "invalid free of device offset {off:#x}")
            }
            GpuError::DeviceLost(d) => write!(f, "device {d} has been lost"),
            GpuError::FaultInjected { device, site } => {
                write!(f, "injected {site} fault on device {device}")
            }
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GpuError::OutOfMemory {
            requested: 1024,
            free: 512,
        };
        let s = e.to_string();
        assert!(s.contains("1024") && s.contains("512"));
        assert!(GpuError::InvalidDevice(3).to_string().contains('3'));
    }
}
