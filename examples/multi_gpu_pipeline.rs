//! The Fig 3 / Listing 10 graph: two kernels sharing device data through
//! *transitive* dependencies, scheduled across multiple GPUs.
//!
//! `kernel2` reads `pull1`'s device data without a direct edge from
//! `pull1`: the path `pull1 -> kernel1 -> kernel2` orders them, and
//! Algorithm 1 guarantees both kernels land on the same GPU as their
//! shared pull ("applications can efficiently reuse data without adding
//! redundant task dependencies", §III-A.5).
//!
//! Run: `cargo run --example multi_gpu_pipeline`

use heteroflow::prelude::*;

fn main() {
    let executor = Executor::new(4, 4);
    let g = Heteroflow::new("fig3");

    let vec1: HostVec<i32> = HostVec::new();
    let vec2: HostVec<i32> = HostVec::new();

    let host1 = g.host("host1", {
        let v = vec1.clone();
        move || v.write().resize(100, 0)
    });
    let host2 = g.host("host2", {
        let v = vec2.clone();
        move || v.write().resize(100, 1)
    });

    let pull1 = g.pull("pull1", &vec1);
    let pull2 = g.pull("pull2", &vec2);

    // k1(vec1): add 10 to every element.
    let kernel1 = g.kernel("kernel1", &[&pull1], |cfg, args| {
        let v = args.slice_mut::<i32>(0).expect("pull1 data");
        for i in cfg.threads() {
            if i < v.len() {
                v[i] += 10;
            }
        }
    });
    kernel1.cover(100, 32);

    // k2(vec1, vec2): vec2 += vec1 — reuses pull1's device data via the
    // transitive dependency through kernel1.
    let kernel2 = g.kernel("kernel2", &[&pull1, &pull2], |cfg, args| {
        let (v1, v2) = args.slice2_mut::<i32, i32>(0, 1).expect("disjoint");
        for i in cfg.threads() {
            if i < v2.len() {
                v2[i] += v1[i];
            }
        }
    });
    kernel2.cover(100, 32);

    let push1 = g.push("push1", &pull1, &vec1);
    let push2 = g.push("push2", &pull2, &vec2);

    // Exactly the dependency set of Listing 10.
    host1.precede(&pull1);
    host2.precede(&pull2);
    pull1.precede(&kernel1);
    pull2.precede(&kernel2);
    kernel1.precede_all(&[&push1, &kernel2]);
    kernel2.precede(&push2);

    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());

    executor.run(&g).wait().expect("fig3 graph runs");

    assert!(vec1.read().iter().all(|&v| v == 10));
    assert!(vec2.read().iter().all(|&v| v == 11), "1 + (0 + 10)");
    println!("kernel chain result: vec1[0]={}, vec2[0]={}", vec1.read()[0], vec2.read()[0]);

    // Run several unrelated graphs concurrently on the same executor —
    // the executor interface is thread-safe and non-blocking (§III-B).
    let futures: Vec<(HostVec<i64>, RunFuture)> = (0..4)
        .map(|i| {
            let data: HostVec<i64> = HostVec::from_vec((0..1000).collect());
            let gi = Heteroflow::new(&format!("pipeline{i}"));
            let p = gi.pull("in", &data);
            let k = gi.kernel("scale", &[&p], move |cfg, args| {
                let v = args.slice_mut::<i64>(0).expect("data");
                for t in cfg.threads() {
                    if t < v.len() {
                        v[t] *= (i + 1) as i64;
                    }
                }
            });
            k.cover(1000, 128);
            let s = gi.push("out", &p, &data);
            p.precede(&k);
            k.precede(&s);
            let fut = executor.run(&gi);
            (data, fut)
        })
        .collect();
    for (i, (data, fut)) in futures.into_iter().enumerate() {
        fut.wait().expect("pipeline runs");
        assert_eq!(data.read()[10], 10 * (i as i64 + 1));
    }
    println!("4 concurrent pipelines placed across {} GPUs", executor.num_gpus());

    // Device placement is observable through the pool statistics.
    for d in executor.gpu_runtime().devices() {
        let st = d.stats();
        println!(
            "GPU {}: {} kernels, {} H2D bytes, {} D2H bytes",
            d.id(),
            st.kernels.load(std::sync::atomic::Ordering::Relaxed),
            st.h2d_bytes.load(std::sync::atomic::Ordering::Relaxed),
            st.d2h_bytes.load(std::sync::atomic::Ordering::Relaxed),
        );
    }
}
