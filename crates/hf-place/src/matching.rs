//! Weighted bipartite matching — the per-window assignment step.
//!
//! Each window holds k independent cells and the k sites they currently
//! occupy; the best permutation of cells onto sites minimizes summed HPWL
//! (Fig 7(b)). Because window cells share no nets (they come from an
//! independent set), per-cell costs are separable and the problem is a
//! linear assignment, solved exactly with the O(n³) Hungarian algorithm
//! (potentials/shortest-augmenting-path form).

/// Solves `min sum cost[i][assignment[i]]` over permutations.
///
/// `cost` is a square row-major matrix (`n x n`). Returns the assignment
/// (column per row) and the optimal total cost.
pub fn hungarian(cost: &[Vec<u64>]) -> (Vec<usize>, u64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }

    const INF: i64 = i64::MAX / 4;
    // 1-indexed potentials and matching (classic e-maxx formulation).
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    // p[j] = row matched to column j (0 = none); p[0] = current row.
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] as i64 - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    let mut total = 0u64;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    (assignment, total)
}

/// Brute-force optimal assignment for testing (n ≤ ~8).
pub fn brute_force(cost: &[Vec<u64>]) -> u64 {
    let n = cost.len();
    let mut cols: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    permute(&mut cols, 0, &mut |perm| {
        let total: u64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        best = best.min(total);
    });
    if n == 0 {
        0
    } else {
        best
    }
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(hungarian(&[]), (vec![], 0));
        assert_eq!(hungarian(&[vec![7]]), (vec![0], 7));
    }

    #[test]
    fn known_3x3() {
        // Optimal: 1->0 (1), 0->1 (2), 2->2 (2) = 5? Enumerate: matrix
        // rows: [4,2,8],[4,3,7],[3,1,6]; best is 2+4+... use brute force.
        let cost = vec![vec![4, 2, 8], vec![4, 3, 7], vec![3, 1, 6]];
        let (asg, total) = hungarian(&cost);
        assert_eq!(total, brute_force(&cost));
        // Assignment must be a permutation achieving the total.
        let mut seen = [false; 3];
        let mut sum = 0;
        for (i, &j) in asg.iter().enumerate() {
            assert!(!seen[j]);
            seen[j] = true;
            sum += cost[i][j];
        }
        assert_eq!(sum, total);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 1..=6 {
            for _ in 0..20 {
                let cost: Vec<Vec<u64>> = (0..n)
                    .map(|_| (0..n).map(|_| next() % 100).collect())
                    .collect();
                let (asg, total) = hungarian(&cost);
                assert_eq!(
                    total,
                    brute_force(&cost),
                    "n={n} cost={cost:?}"
                );
                let mut seen = vec![false; n];
                for &j in &asg {
                    assert!(!seen[j], "not a permutation");
                    seen[j] = true;
                }
            }
        }
    }

    #[test]
    fn identity_is_optimal_when_diagonal_dominant() {
        let n = 5;
        let cost: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1 } else { 100 }).collect())
            .collect();
        let (asg, total) = hungarian(&cost);
        assert_eq!(asg, (0..n).collect::<Vec<_>>());
        assert_eq!(total, n as u64);
    }
}
