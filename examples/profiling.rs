//! Profiling a Heteroflow schedule with the trace observer.
//!
//! Attaches a `TraceCollector` to the executor, runs a small hybrid
//! pipeline, and writes a Chrome trace-event JSON (open in
//! `chrome://tracing` or https://ui.perfetto.dev) showing per-worker
//! task spans and CPU/GPU dispatch overlap.
//!
//! Run: `cargo run --example profiling [-- trace.json]`

use heteroflow::core::observer::ExecutorObserver;
use heteroflow::core::TraceCollector;
use heteroflow::prelude::*;
use std::sync::Arc;

fn main() {
    let trace = TraceCollector::shared();
    let executor = Executor::builder(4, 2)
        .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
        .build();

    // A small fan of hybrid pipelines to produce an interesting trace.
    let g = Heteroflow::new("profiled");
    for lane in 0..6 {
        let data: HostVec<f64> = HostVec::new();
        let n = 4096 * (lane + 1);
        let h = g.host(&format!("fill{lane}"), {
            let data = data.clone();
            move || {
                let mut w = data.write();
                w.clear();
                w.extend((0..n).map(|i| i as f64));
            }
        });
        let p = g.pull(&format!("pull{lane}"), &data);
        let k = g.kernel(&format!("fma{lane}"), &[&p], move |cfg, args| {
            let v = args.slice_mut::<f64>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] = v[t].mul_add(1.5, 0.25);
                }
            }
        });
        k.cover(n, 256);
        let s = g.push(&format!("push{lane}"), &p, &data);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
    }
    executor.run_n(&g, 3).wait().expect("profiled graph runs");

    let spans = trace.spans();
    println!("captured {} task spans over 3 rounds", spans.len());
    let mut per_worker = std::collections::BTreeMap::<usize, usize>::new();
    for s in &spans {
        *per_worker.entry(s.worker).or_default() += 1;
    }
    for (w, count) in &per_worker {
        println!("  worker {w}: {count} tasks");
    }

    let path = std::env::args().nth(1).unwrap_or_else(|| "trace.json".into());
    std::fs::write(&path, trace.to_chrome_trace()).expect("write trace");
    println!("chrome trace written to {path} (open in chrome://tracing)");
}
