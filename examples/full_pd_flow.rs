//! The full physical-design placement flow (Fig 2's "Placement" box):
//! GPU global placement → legalization → GPU/CPU detailed placement,
//! every stage running on one Heteroflow executor.
//!
//! Run: `cargo run --release --example full_pd_flow -- [cells]`

use heteroflow::place::global::{global_place, GlobalConfig};
use heteroflow::place::legalize::{legalize_into_db, Target};
use heteroflow::place::{detailed_place, PlaceConfig, PlacementConfig, PlacementDb};
use heteroflow::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cells: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1500);

    // Borrow a synthesized netlist, then scatter the cells uniformly at
    // random — the state a design is in before placement.
    let proto = PlacementDb::synthesize(&PlacementConfig {
        num_cells: cells,
        num_nets: cells,
        ..Default::default()
    });
    let (rows, sites) = (proto.num_rows, proto.sites_per_row);
    let mut rng = StdRng::seed_from_u64(42);
    let scattered: Vec<Target> = (0..cells)
        .map(|_| Target {
            x: rng.gen_range(0.0..sites as f32),
            y: rng.gen_range(0.0..rows as f32),
        })
        .collect();
    let nets = proto.nets.clone();

    let executor = Executor::new(4, 2);
    println!("flow input: {cells} cells, {} nets, {rows}x{sites} grid", nets.len());

    // Stage 1: global placement (GPU attraction/spreading kernels).
    let t0 = std::time::Instant::now();
    let placed = global_place(
        &executor,
        &scattered,
        &nets,
        rows,
        sites,
        GlobalConfig {
            iterations: 60,
            attraction: 0.15,
            spreading: 0.6,
            bins: 12,
        },
    )
    .expect("global placement runs");
    println!("1. global placement     {:>10.2?}", t0.elapsed());

    // Stage 2: legalization (Tetris packing).
    let t1 = std::time::Instant::now();
    let (db, stats) = legalize_into_db(&placed, &vec![false; cells], nets, rows, sites);
    println!(
        "2. legalization         {:>10.2?}   (moved {} cells, max displacement {:.1})",
        t1.elapsed(),
        stats.cells_moved,
        stats.max_displacement
    );
    let hpwl_legal = db.total_hpwl();

    // Stage 3: detailed placement (GPU MIS + CPU matching, Fig 8 graph).
    let t2 = std::time::Instant::now();
    let out = detailed_place(
        &executor,
        db,
        PlaceConfig {
            iterations: 4,
            ..Default::default()
        },
    )
    .expect("detailed placement runs");
    println!("3. detailed placement   {:>10.2?}", t2.elapsed());
    out.db.check_legal().expect("flow output is legal");

    // Compare against skipping global placement entirely.
    let proto2 = PlacementDb::synthesize(&PlacementConfig {
        num_cells: cells,
        num_nets: cells,
        ..Default::default()
    });
    let (baseline_db, _) =
        legalize_into_db(&scattered, &vec![false; cells], proto2.nets, rows, sites);
    let baseline = baseline_db.total_hpwl();

    println!("\nHPWL:");
    println!("  scattered, legalized only : {baseline}");
    println!("  after global placement    : {hpwl_legal}");
    println!("  after detailed placement  : {}", out.hpwl_after);
    let gain = 100.0 * (baseline as f64 - out.hpwl_after as f64) / baseline as f64;
    println!("  total improvement         : {gain:.1}%");
    assert!(out.hpwl_after < baseline, "the flow must improve wirelength");
}
