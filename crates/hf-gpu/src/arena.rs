//! Device memory: a byte-addressed arena per device and typed views into it.

use crate::error::GpuError;
use crate::plain::{self, Plain};

/// A pointer into device memory — the software analogue of a raw CUDA
/// device pointer, made self-describing: it carries the owning device, the
/// byte offset inside that device's arena, and the logical length of the
/// allocation.
///
/// The paper's kernel tasks receive device pointers through
/// `PointerCaster` (Listing 9); here the kernel context resolves a
/// `DevicePtr` to a typed slice instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    /// Device that owns the allocation.
    pub device: u32,
    /// Byte offset inside the device arena.
    pub offset: u64,
    /// Logical allocation length in bytes (what the user asked for, not
    /// the rounded buddy block).
    pub len: u64,
    /// Reserved capacity in bytes — the rounded buddy block backing this
    /// allocation. Always `>= len`. Residency reuse may grow `len` up to
    /// `capacity` without reallocating, and `free` accounting matches the
    /// reservation rather than the request.
    pub capacity: u64,
}

impl DevicePtr {
    /// A null device pointer (no allocation).
    pub const NULL: DevicePtr = DevicePtr {
        device: u32::MAX,
        offset: u64::MAX,
        len: 0,
        capacity: 0,
    };

    /// True for the null pointer.
    pub fn is_null(&self) -> bool {
        self.device == u32::MAX
    }

    /// Number of `T` elements this allocation holds.
    pub fn len_as<T: Plain>(&self) -> usize {
        self.len as usize / std::mem::size_of::<T>()
    }
}

/// The raw memory of one device.
#[derive(Debug)]
pub struct Arena {
    mem: Box<[u8]>,
    device: u32,
}

impl Arena {
    /// Allocates a zeroed arena of `capacity` bytes for `device`.
    pub fn new(device: u32, capacity: usize) -> Self {
        Self {
            mem: vec![0u8; capacity].into_boxed_slice(),
            device,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// Mutable view over the whole arena.
    pub fn view(&mut self) -> ArenaView<'_> {
        ArenaView {
            device: self.device,
            mem: &mut self.mem,
        }
    }
}

/// A mutable window over a device arena, resolving [`DevicePtr`]s to byte
/// or typed slices. Handed to executing stream operations (copies and
/// kernels).
#[derive(Debug)]
pub struct ArenaView<'a> {
    device: u32,
    mem: &'a mut [u8],
}

impl<'a> ArenaView<'a> {
    fn check(&self, p: DevicePtr) -> Result<(usize, usize), GpuError> {
        if p.is_null() {
            return Err(GpuError::InvalidFree(p.offset));
        }
        if p.device != self.device {
            return Err(GpuError::WrongDevice {
                owner: p.device,
                used_on: self.device,
            });
        }
        let start = p.offset as usize;
        let end = start + p.len as usize;
        if end > self.mem.len() {
            return Err(GpuError::SizeMismatch {
                dst: self.mem.len().saturating_sub(start),
                src: p.len as usize,
            });
        }
        Ok((start, end))
    }

    /// Immutable byte view of an allocation.
    pub fn bytes(&self, p: DevicePtr) -> Result<&[u8], GpuError> {
        let (s, e) = self.check(p)?;
        Ok(&self.mem[s..e])
    }

    /// Mutable byte view of an allocation.
    pub fn bytes_mut(&mut self, p: DevicePtr) -> Result<&mut [u8], GpuError> {
        let (s, e) = self.check(p)?;
        Ok(&mut self.mem[s..e])
    }

    /// Immutable typed view.
    pub fn slice<T: Plain>(&self, p: DevicePtr) -> Result<&[T], GpuError> {
        let b = self.bytes(p)?;
        if b.len() % std::mem::size_of::<T>() != 0 {
            return Err(GpuError::TypeMismatch {
                bytes: b.len(),
                elem: std::mem::size_of::<T>(),
            });
        }
        Ok(plain::from_bytes(b))
    }

    /// Mutable typed view.
    pub fn slice_mut<T: Plain>(&mut self, p: DevicePtr) -> Result<&mut [T], GpuError> {
        let b = self.bytes_mut(p)?;
        if b.len() % std::mem::size_of::<T>() != 0 {
            return Err(GpuError::TypeMismatch {
                bytes: b.len(),
                elem: std::mem::size_of::<T>(),
            });
        }
        Ok(plain::from_bytes_mut(b))
    }

    /// Two disjoint mutable typed views — the common kernel shape
    /// (`y[i] = a*x[i] + y[i]` needs `x` and `y` simultaneously).
    ///
    /// Returns `SizeMismatch` if the allocations overlap.
    pub fn slice2_mut<A: Plain, B: Plain>(
        &mut self,
        pa: DevicePtr,
        pb: DevicePtr,
    ) -> Result<(&mut [A], &mut [B]), GpuError> {
        let (sa, ea) = self.check(pa)?;
        let (sb, eb) = self.check(pb)?;
        if sa < eb && sb < ea {
            return Err(GpuError::SizeMismatch { dst: ea - sa, src: eb - sb });
        }
        // SAFETY: ranges verified disjoint and in-bounds; both borrows are
        // derived from the single &mut self.
        unsafe {
            let base = self.mem.as_mut_ptr();
            let a = std::slice::from_raw_parts_mut(base.add(sa), ea - sa);
            let b = std::slice::from_raw_parts_mut(base.add(sb), eb - sb);
            Ok((plain::from_bytes_mut(a), plain::from_bytes_mut(b)))
        }
    }

    /// Three disjoint mutable typed views.
    #[allow(clippy::type_complexity)]
    pub fn slice3_mut<A: Plain, B: Plain, C: Plain>(
        &mut self,
        pa: DevicePtr,
        pb: DevicePtr,
        pc: DevicePtr,
    ) -> Result<(&mut [A], &mut [B], &mut [C]), GpuError> {
        let (sa, ea) = self.check(pa)?;
        let (sb, eb) = self.check(pb)?;
        let (sc, ec) = self.check(pc)?;
        let overlap = (sa < eb && sb < ea) || (sa < ec && sc < ea) || (sb < ec && sc < eb);
        if overlap {
            return Err(GpuError::SizeMismatch { dst: 0, src: 0 });
        }
        // SAFETY: as in `slice2_mut`.
        unsafe {
            let base = self.mem.as_mut_ptr();
            let a = std::slice::from_raw_parts_mut(base.add(sa), ea - sa);
            let b = std::slice::from_raw_parts_mut(base.add(sb), eb - sb);
            let c = std::slice::from_raw_parts_mut(base.add(sc), ec - sc);
            Ok((
                plain::from_bytes_mut(a),
                plain::from_bytes_mut(b),
                plain::from_bytes_mut(c),
            ))
        }
    }

    /// Host-to-device copy into the allocation (the body of a pull task).
    pub fn copy_in(&mut self, p: DevicePtr, src: &[u8]) -> Result<(), GpuError> {
        let dst = self.bytes_mut(p)?;
        if dst.len() < src.len() {
            return Err(GpuError::SizeMismatch {
                dst: dst.len(),
                src: src.len(),
            });
        }
        dst[..src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Device-to-host copy out of the allocation (the body of a push task).
    pub fn copy_out(&self, p: DevicePtr, dst: &mut [u8]) -> Result<(), GpuError> {
        let src = self.bytes(p)?;
        if src.len() < dst.len() {
            return Err(GpuError::SizeMismatch {
                dst: dst.len(),
                src: src.len(),
            });
        }
        dst.copy_from_slice(&src[..dst.len()]);
        Ok(())
    }

    /// Device-to-device copy between two allocations on this device.
    pub fn copy_d2d(&mut self, dst: DevicePtr, src: DevicePtr) -> Result<(), GpuError> {
        let (ss, se) = self.check(src)?;
        let (ds, de) = self.check(dst)?;
        let n = (se - ss).min(de - ds);
        self.mem.copy_within(ss..ss + n, ds);
        Ok(())
    }

    /// Device id this view belongs to.
    pub fn device(&self) -> u32 {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(offset: u64, len: u64) -> DevicePtr {
        DevicePtr { device: 0, offset, len, capacity: len }
    }

    #[test]
    fn copy_in_out_round_trip() {
        let mut a = Arena::new(0, 256);
        let mut v = a.view();
        let p = ptr(16, 8);
        v.copy_in(p, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let mut out = [0u8; 8];
        v.copy_out(p, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn typed_views() {
        let mut a = Arena::new(0, 256);
        let mut v = a.view();
        let p = ptr(0, 16);
        v.slice_mut::<f32>(p).unwrap().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.slice::<f32>(p).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrong_device_rejected() {
        let mut a = Arena::new(1, 64);
        let v = a.view();
        let p = ptr(0, 8); // device 0
        assert!(matches!(v.bytes(p), Err(GpuError::WrongDevice { .. })));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut a = Arena::new(0, 64);
        let v = a.view();
        assert!(v.bytes(ptr(60, 8)).is_err());
    }

    #[test]
    fn split2_disjoint_ok_overlap_err() {
        let mut a = Arena::new(0, 256);
        let mut v = a.view();
        let (x, y) = v.slice2_mut::<u32, u32>(ptr(0, 16), ptr(16, 16)).unwrap();
        x[0] = 7;
        y[3] = 9;
        assert!(v.slice2_mut::<u32, u32>(ptr(0, 16), ptr(8, 16)).is_err());
    }

    #[test]
    fn split3_overlap_err() {
        let mut a = Arena::new(0, 256);
        let mut v = a.view();
        assert!(v
            .slice3_mut::<u8, u8, u8>(ptr(0, 16), ptr(32, 16), ptr(40, 16))
            .is_err());
        assert!(v
            .slice3_mut::<u8, u8, u8>(ptr(0, 16), ptr(32, 8), ptr(48, 16))
            .is_ok());
    }

    #[test]
    fn d2d_copy() {
        let mut a = Arena::new(0, 128);
        let mut v = a.view();
        v.copy_in(ptr(0, 4), &[9, 8, 7, 6]).unwrap();
        v.copy_d2d(ptr(64, 4), ptr(0, 4)).unwrap();
        assert_eq!(v.bytes(ptr(64, 4)).unwrap(), &[9, 8, 7, 6]);
    }

    #[test]
    fn null_ptr_rejected() {
        let mut a = Arena::new(0, 64);
        let v = a.view();
        assert!(v.bytes(DevicePtr::NULL).is_err());
    }
}
