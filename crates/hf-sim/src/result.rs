//! Simulation results.

use hf_gpu::SimDuration;
use serde::Serialize;

/// Outcome of one simulated execution.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// End-to-end makespan in seconds.
    pub makespan_secs: f64,
    /// Sum of busy time across all workers, in seconds.
    pub cpu_busy_secs: f64,
    /// Busy time per GPU device, in seconds.
    pub gpu_busy_secs: Vec<f64>,
    /// Tasks executed.
    pub tasks: usize,
    /// `cpu_busy / (makespan * cores)` — average worker utilization.
    pub cpu_utilization: f64,
    /// `sum(gpu_busy) / (makespan * gpus)` — average device utilization.
    pub gpu_utilization: f64,
    /// Cores simulated.
    pub cores: usize,
    /// GPUs simulated.
    pub gpus: u32,
}

impl SimResult {
    pub(crate) fn new(
        makespan: SimDuration,
        cpu_busy: SimDuration,
        gpu_busy: Vec<SimDuration>,
        tasks: usize,
        cores: usize,
        gpus: u32,
    ) -> Self {
        let ms = makespan.as_secs_f64();
        let cb = cpu_busy.as_secs_f64();
        let gb: Vec<f64> = gpu_busy.iter().map(|d| d.as_secs_f64()).collect();
        let gpu_total: f64 = gb.iter().sum();
        Self {
            makespan_secs: ms,
            cpu_busy_secs: cb,
            gpu_busy_secs: gb,
            tasks,
            cpu_utilization: if ms > 0.0 { cb / (ms * cores as f64) } else { 0.0 },
            gpu_utilization: if ms > 0.0 && gpus > 0 {
                gpu_total / (ms * gpus as f64)
            } else {
                0.0
            },
            cores,
            gpus,
        }
    }

    /// Makespan as a [`SimDuration`].
    pub fn makespan(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.makespan_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let r = SimResult::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            vec![SimDuration::from_millis(50), SimDuration::from_millis(30)],
            10,
            4,
            2,
        );
        assert!((r.cpu_utilization - 0.5).abs() < 1e-9);
        assert!((r.gpu_utilization - 0.4).abs() < 1e-9);
        assert_eq!(r.tasks, 10);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let r = SimResult::new(SimDuration::ZERO, SimDuration::ZERO, vec![], 0, 1, 0);
        assert_eq!(r.cpu_utilization, 0.0);
        assert_eq!(r.gpu_utilization, 0.0);
    }
}
