//! Heteroflow core: concurrent CPU-GPU task programming with task
//! dependency graphs.
//!
//! Rust reproduction of *Concurrent CPU-GPU Task Programming using Modern
//! C++* (Huang & Lin, IPPS 2022). Users express a computation as a DAG of
//! four task kinds and hand it to an executor:
//!
//! * **host** — a callable on a CPU core ([`Heteroflow::host`])
//! * **pull** — a host→device copy ([`Heteroflow::pull`])
//! * **push** — a device→host copy ([`Heteroflow::push`])
//! * **kernel** — a GPU offload ([`Heteroflow::kernel`])
//!
//! The saxpy program of the paper's Listing 1:
//!
//! ```
//! use hf_core::prelude::*;
//!
//! const N: usize = 65536;
//! let x: HostVec<i32> = HostVec::new();
//! let y: HostVec<i32> = HostVec::new();
//!
//! let executor = Executor::new(8, 4);
//! let g = Heteroflow::new("saxpy");
//!
//! let host_x = g.host("host_x", { let x = x.clone(); move || x.write().resize(N, 1) });
//! let host_y = g.host("host_y", { let y = y.clone(); move || y.write().resize(N, 2) });
//! let pull_x = g.pull("pull_x", &x);
//! let pull_y = g.pull("pull_y", &y);
//! let kernel = g.kernel("saxpy", &[&pull_x, &pull_y], move |cfg, args| {
//!     let (xs, ys) = args.slice2_mut::<i32, i32>(0, 1).unwrap();
//!     let a = 2;
//!     for i in cfg.threads() {
//!         if i < N { ys[i] = a * xs[i] + ys[i]; }
//!     }
//! });
//! kernel.block_x(256).grid_x((N as u32 + 255) / 256);
//! let push_x = g.push("push_x", &pull_x, &x);
//! let push_y = g.push("push_y", &pull_y, &y);
//!
//! host_x.precede(&pull_x);
//! host_y.precede(&pull_y);
//! kernel.precede_all(&[&push_x, &push_y]);
//! kernel.succeed_all(&[&pull_x, &pull_y]);
//!
//! let future = executor.run(&g);
//! future.wait().unwrap();
//! assert!(y.read().iter().all(|&v| v == 4));
//! ```
//!
//! The executor (§III-B/C) spawns N workers over Chase–Lev deques, places
//! GPU tasks onto devices with Algorithm 1 (union-find grouping +
//! balanced-load bin packing — [`placement`]), and schedules with
//! work-stealing under an adaptive wake/sleep strategy.

#![warn(missing_docs)]

pub mod admission;
pub mod affinity;
pub mod analyze;
pub mod costmodel;
pub mod data;
pub mod dot;
pub mod error;
pub mod executor;
pub mod fleet;
pub mod graph;
pub mod inspect;
pub mod lifecycle;
pub mod observer;
pub mod placement;
pub mod prelude;
pub mod retry;
pub mod stats;
pub(crate) mod stream;
pub mod task;
pub(crate) mod topology;

pub use admission::{
    AdmissionPolicy, Fifo, LaneView, StrictPriority, TenantConfig, TenantId, WeightedFair,
};
pub use analyze::{Diagnostic, Report, Severity};
pub use costmodel::{CostDb, TaskCosts};
pub use error::HfError;
pub use executor::{Executor, ExecutorBuilder, LintPolicy};
pub use fleet::{Fleet, FleetConfig, FleetSnapshot, TenantSnapshot};
pub use graph::{FrozenGraph, Heteroflow, TaskKind};
pub use inspect::{GraphInfo, NodeInfo};
pub use lifecycle::{lifecycle_now_ns, LifecycleEvent, LifecyclePhase};
pub use observer::{ExecutorObserver, SpanCat, TaskMeta, TraceCollector, TraceSpan, Track};
pub use placement::{
    device_placement, device_placement_ext, failover_placement, failover_placement_ext,
    Placement, PlacementPolicy,
};
pub use retry::{OnDeviceLoss, RetryPolicy};
pub use stats::{ExecutorStats, StatsSnapshot};
pub use stream::{EpochFuture, Session, StreamConfig};
pub use task::{AsTask, HostTask, KernelTask, PullTask, PushTask, TaskRef};
pub use topology::{CancelHandle, Completion, RunFuture};

// Re-export the GPU substrate types that appear in the public API.
pub use hf_gpu::{GpuConfig, GpuRuntime, KernelArgs, LaunchConfig};
