//! The discrete-event schedule simulator.
//!
//! Replays a [`GraphInfo`] on a [`Machine`]: a work-conserving list
//! schedule in which every task occupies one worker for its duration, and
//! GPU tasks additionally serialize on their assigned device — exactly the
//! execution style of the real executor, where a worker enqueues the op on
//! its per-device stream and blocks on a completion event (Listing 13).

use crate::machine::{Machine, SchedulerMode};
use crate::result::SimResult;
use hf_core::placement::{device_placement, PlacementPolicy};
use hf_core::{GraphInfo, HfError, TaskKind};
use hf_gpu::SimDuration;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Duration of node `id` on the machine, given the per-host-task cost
/// function.
fn node_duration(
    info: &GraphInfo,
    id: usize,
    machine: &Machine,
    host_cost: &dyn Fn(usize) -> SimDuration,
) -> SimDuration {
    let n = &info.nodes[id];
    match n.kind {
        TaskKind::Host => host_cost(id),
        TaskKind::Pull => machine.cost.h2d(n.bytes),
        TaskKind::Push => machine.cost.d2h(n.bytes),
        TaskKind::Kernel => machine.cost.kernel(n.effective_work_units()),
        TaskKind::Placeholder => SimDuration::ZERO,
    }
}

/// One scheduled task in a simulated execution (for Gantt export and
/// schedule validation).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimSpan {
    /// Node id in the graph.
    pub node: usize,
    /// Task name.
    pub name: String,
    /// Device the op ran on (GPU tasks).
    pub device: Option<u32>,
    /// Start time (ns) of the op (device-side for GPU tasks).
    pub start_ns: u64,
    /// Finish time (ns).
    pub finish_ns: u64,
    /// Worker that ran (host) or dispatched (GPU, unified mode) the task;
    /// `None` for GPU ops on a dedicated bound worker.
    pub worker: Option<usize>,
}

/// Simulates one execution of `info` on `machine`.
///
/// `host_cost` supplies the modeled duration of each host task (GPU ops
/// are costed by the machine's [`hf_gpu::CostModel`]). Placement uses the
/// real Algorithm 1 with the given policy.
pub fn simulate(
    info: &GraphInfo,
    machine: &Machine,
    policy: PlacementPolicy,
    host_cost: impl Fn(usize) -> SimDuration,
) -> Result<SimResult, HfError> {
    simulate_impl(info, machine, policy, &host_cost, None)
}

/// [`simulate`] that also returns the full schedule as spans.
pub fn simulate_traced(
    info: &GraphInfo,
    machine: &Machine,
    policy: PlacementPolicy,
    host_cost: impl Fn(usize) -> SimDuration,
) -> Result<(SimResult, Vec<SimSpan>), HfError> {
    let mut spans = Vec::with_capacity(info.nodes.len());
    let r = simulate_impl(info, machine, policy, &host_cost, Some(&mut spans))?;
    Ok((r, spans))
}

fn simulate_impl(
    info: &GraphInfo,
    machine: &Machine,
    policy: PlacementPolicy,
    host_cost: &dyn Fn(usize) -> SimDuration,
    mut trace: Option<&mut Vec<SimSpan>>,
) -> Result<SimResult, HfError> {
    let n = info.nodes.len();
    let placement = device_placement(info, machine.gpus, policy, &machine.cost)?;

    if n == 0 {
        return Ok(SimResult::new(
            SimDuration::ZERO,
            SimDuration::ZERO,
            vec![SimDuration::ZERO; machine.gpus as usize],
            0,
            machine.cores,
            machine.gpus,
        ));
    }

    // In dedicated mode, one worker is bound to each GPU; CPU tasks use
    // the rest. Unified mode: all workers do everything.
    let (cpu_workers, dedicated) = match machine.mode {
        SchedulerMode::Unified => (machine.cores, false),
        SchedulerMode::DedicatedGpuWorkers => {
            let g = machine.gpus as usize;
            (machine.cores.saturating_sub(g).max(1), true)
        }
    };

    // Worker pool: (free_time, worker_id) min-heap.
    let mut workers: BinaryHeap<Reverse<(u64, usize)>> =
        (0..cpu_workers).map(|w| Reverse((0u64, w))).collect();
    // Per-device next-free time; in dedicated mode the device's bound
    // worker and the device itself are the same resource.
    let mut dev_free = vec![0u64; machine.gpus as usize];
    let mut dev_busy = vec![SimDuration::ZERO; machine.gpus as usize];
    let mut cpu_busy = SimDuration::ZERO;

    // Dependency bookkeeping.
    let mut indeg: Vec<usize> = info.nodes.iter().map(|x| x.num_deps).collect();
    // Ready FIFO (ids became ready at `ready_at`).
    let mut ready: VecDeque<(usize, u64)> = info
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, x)| x.num_deps == 0)
        .map(|(i, _)| (i, 0u64))
        .collect();
    // Completion events: (finish_time, node) min-heap.
    let mut completions: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

    let mut makespan = 0u64;
    let mut executed = 0usize;

    loop {
        // Assign every currently ready task.
        while let Some((id, ready_at)) = ready.pop_front() {
            let dur = node_duration(info, id, machine, &host_cost).as_nanos();
            let dev = placement.device_of[id];
            let is_gpu = dev.is_some();

            let (span_start, finish, ran_on) = if dedicated && is_gpu {
                // GPU ops run on the device's bound worker: serialize on
                // the device timeline only.
                let d = dev.expect("is_gpu") as usize;
                let start = ready_at.max(dev_free[d]);
                let fin = start + dur;
                dev_free[d] = fin;
                dev_busy[d] += SimDuration::from_nanos(dur);
                (start, fin, None)
            } else {
                // Occupy the earliest-free worker...
                let Reverse((wt, w)) = workers.pop().expect("worker pool non-empty");
                let start = ready_at.max(wt);
                match dev {
                    Some(d) => {
                        // Asynchronous dispatch: the worker only pays the
                        // enqueue overhead; the op serializes on the
                        // device and its completion callback releases the
                        // successors (the real executor's Listing 13
                        // pattern).
                        let overhead = machine.dispatch_overhead.as_nanos();
                        let d = d as usize;
                        let op_start = (start + overhead).max(dev_free[d]);
                        let fin = op_start + dur;
                        dev_free[d] = fin;
                        dev_busy[d] += SimDuration::from_nanos(dur);
                        cpu_busy += SimDuration::from_nanos(overhead);
                        workers.push(Reverse((start + overhead, w)));
                        (op_start, fin, Some(w))
                    }
                    None => {
                        let fin = start + dur;
                        cpu_busy += SimDuration::from_nanos(dur);
                        workers.push(Reverse((fin, w)));
                        (start, fin, Some(w))
                    }
                }
            };

            if let Some(spans) = trace.as_deref_mut() {
                spans.push(SimSpan {
                    node: id,
                    name: info.nodes[id].name.clone(),
                    device: dev,
                    start_ns: span_start,
                    finish_ns: finish,
                    worker: ran_on,
                });
            }
            completions.push(Reverse((finish, id)));
            makespan = makespan.max(finish);
            executed += 1;
        }

        // Advance to the next completion and release its successors.
        match completions.pop() {
            None => break,
            Some(Reverse((t, id))) => {
                for &s in &info.nodes[id].successors {
                    indeg[s] -= 1;
                    if indeg[s] == 0 {
                        ready.push_back((s, t));
                    }
                }
            }
        }
    }

    debug_assert_eq!(executed, n, "simulation deadlocked (cyclic input?)");

    Ok(SimResult::new(
        SimDuration::from_nanos(makespan),
        cpu_busy,
        dev_busy,
        executed,
        machine.cores,
        machine.gpus,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::data::HostVec;
    use hf_core::Heteroflow;

    const MS: u64 = 1_000_000;

    fn host_chain(n: usize) -> GraphInfo {
        let g = Heteroflow::new("chain");
        let mut prev = None;
        for i in 0..n {
            let t = g.host(&format!("t{i}"), || {});
            if let Some(p) = &prev {
                t.succeed(p);
            }
            prev = Some(t);
        }
        g.info().unwrap()
    }

    fn host_fanout(n: usize) -> GraphInfo {
        let g = Heteroflow::new("fan");
        for i in 0..n {
            g.host(&format!("t{i}"), || {});
        }
        g.info().unwrap()
    }

    #[test]
    fn chain_is_sequential_regardless_of_cores() {
        let info = host_chain(10);
        for cores in [1, 4, 40] {
            let m = Machine::new(cores, 0);
            let r = simulate(&info, &m, PlacementPolicy::BalancedLoad, |_| {
                SimDuration::from_millis(1)
            })
            .unwrap();
            assert_eq!(r.makespan().as_nanos(), 10 * MS, "cores={cores}");
        }
    }

    #[test]
    fn fanout_scales_linearly() {
        let info = host_fanout(40);
        let t1 = simulate(&info, &Machine::new(1, 0), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::from_millis(1)
        })
        .unwrap();
        let t4 = simulate(&info, &Machine::new(4, 0), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::from_millis(1)
        })
        .unwrap();
        let t40 =
            simulate(&info, &Machine::new(40, 0), PlacementPolicy::BalancedLoad, |_| {
                SimDuration::from_millis(1)
            })
            .unwrap();
        assert_eq!(t1.makespan().as_nanos(), 40 * MS);
        assert_eq!(t4.makespan().as_nanos(), 10 * MS);
        assert_eq!(t40.makespan().as_nanos(), MS);
        assert!((t40.cpu_utilization - 1.0).abs() < 1e-9);
    }

    /// Independent kernel groups serialize on one GPU, parallelize on
    /// many — the Fig 6 "GPU scaling" mechanism.
    fn kernel_groups(k: usize) -> GraphInfo {
        let g = Heteroflow::new("kg");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        for i in 0..k {
            let p = g.pull(&format!("p{i}"), &x);
            let kn = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            kn.work_units(1e6); // 1 ms at default 1e9 units/s
            p.precede(&kn);
        }
        g.info().unwrap()
    }

    #[test]
    fn gpu_bound_work_scales_with_gpus() {
        let info = kernel_groups(8);
        let r1 = simulate(&info, &Machine::new(16, 1), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::ZERO
        })
        .unwrap();
        let r4 = simulate(&info, &Machine::new(16, 4), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::ZERO
        })
        .unwrap();
        let speedup = r1.makespan_secs / r4.makespan_secs;
        assert!(speedup > 3.0, "expected ~4x GPU scaling, got {speedup:.2}");
    }

    #[test]
    fn dedicated_mode_starves_cpu_heavy_workloads() {
        // Heavy CPU fan-out + one light kernel group: reserving workers
        // for GPUs (the prior-art baseline) starves the CPU side, which is
        // the inefficiency the paper's unified design removes (§III-C).
        let g = Heteroflow::new("cpu-heavy");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let p = g.pull("p", &x);
        let kn = g.kernel("k", &[&p], |_, _| {});
        kn.work_units(1e5); // 0.1 ms
        p.precede(&kn);
        for i in 0..32 {
            g.host(&format!("h{i}"), || {});
        }
        let info = g.info().unwrap();
        let unified = simulate(
            &info,
            &Machine::new(4, 2),
            PlacementPolicy::BalancedLoad,
            |_| SimDuration::from_millis(1),
        )
        .unwrap();
        let dedicated = simulate(
            &info,
            &Machine::new(4, 2).with_mode(SchedulerMode::DedicatedGpuWorkers),
            PlacementPolicy::BalancedLoad,
            |_| SimDuration::from_millis(1),
        )
        .unwrap();
        // 32 ms of CPU work over 4 vs 2 usable workers: ~8 ms vs ~16 ms.
        assert!(
            dedicated.makespan_secs > 1.5 * unified.makespan_secs,
            "dedicated {:.4} vs unified {:.4}",
            dedicated.makespan_secs,
            unified.makespan_secs
        );
    }

    #[test]
    fn empty_graph() {
        let g = Heteroflow::new("e");
        let info = g.info().unwrap();
        let r = simulate(&info, &Machine::new(2, 1), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::ZERO
        })
        .unwrap();
        assert_eq!(r.tasks, 0);
        assert_eq!(r.makespan_secs, 0.0);
    }

    #[test]
    fn gpu_graph_no_gpus_errors() {
        let info = kernel_groups(1);
        assert!(simulate(&info, &Machine::new(2, 0), PlacementPolicy::BalancedLoad, |_| {
            SimDuration::ZERO
        })
        .is_err());
    }

    /// Makespan is never below the critical-path bound nor below the
    /// total-work/cores bound, and never above total work.
    #[test]
    fn respects_classic_bounds() {
        let info = host_chain(5);
        let per = SimDuration::from_millis(2);
        let m = Machine::new(3, 0);
        let r = simulate(&info, &m, PlacementPolicy::BalancedLoad, |_| per).unwrap();
        let total = 5 * per.as_nanos();
        let cp = 5 * per.as_nanos();
        assert!(r.makespan().as_nanos() >= cp);
        assert!(r.makespan().as_nanos() <= total);
    }
}
