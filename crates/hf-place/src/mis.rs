//! Maximal independent set over the cell conflict graph — Blelloch's
//! random-priority algorithm (paper ref [32]), the step DREAMPlace
//! offloads to GPU with a reported 40× speedup (§IV-B).
//!
//! Each round is two data-parallel phases, written here as Heteroflow GPU
//! kernels over CSR adjacency:
//! 1. **select** — an undecided cell enters the set if its priority beats
//!    every undecided neighbor's (ties by id);
//! 2. **commit** — winners become IN; their undecided neighbors become
//!    OUT.
//!
//! With random priorities the number of rounds is O(log n) w.h.p.

use hf_gpu::{KernelArgs, LaunchConfig};

/// Cell state encoding in the device `state` array.
pub const UNDECIDED: u32 = 0;
/// Selected into the independent set.
pub const IN_SET: u32 = 1;
/// Excluded (a neighbor is in the set).
pub const OUT: u32 = 2;
/// Tentatively selected this round (between the two phases).
pub const TENTATIVE: u32 = 3;

/// Phase 1 kernel: mark local priority minima as TENTATIVE.
///
/// Device args: 0 = CSR offsets (u32, n+1), 1 = CSR neighbors (u32),
/// 2 = priorities (u32, n), 3 = states (u32, n).
pub fn select_kernel() -> impl Fn(&LaunchConfig, &mut KernelArgs<'_, '_>) + Send + Sync {
    |cfg, args| {
        let n = args.ptr(2).len_as::<u32>();
        let (offsets, neighbors, rest) = {
            let (o, nb, pr) = args
                .slice3_mut::<u32, u32, u32>(0, 1, 2)
                .expect("disjoint CSR/priority buffers");
            // Reborrow as immutable: phase 1 only writes states.
            (o.to_vec(), nb.to_vec(), pr.to_vec())
        };
        let priorities = rest;
        let states = args.slice_mut::<u32>(3).expect("state buffer");
        for v in cfg.threads() {
            if v >= n || states[v] != UNDECIDED {
                continue;
            }
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut wins = true;
            for &u in &neighbors[s..e] {
                let u = u as usize;
                // Only undecided neighbors compete.
                if states[u] == UNDECIDED || states[u] == TENTATIVE {
                    let beat = (priorities[v], v) < (priorities[u], u);
                    if !beat {
                        wins = false;
                        break;
                    }
                }
            }
            if wins {
                states[v] = TENTATIVE;
            }
        }
    }
}

/// Phase 2 kernel: TENTATIVE → IN_SET; undecided neighbors of IN_SET →
/// OUT. Device args: 0 = offsets, 1 = neighbors, 3 = states (2 = priorities
/// unused but kept for a uniform signature).
pub fn commit_kernel() -> impl Fn(&LaunchConfig, &mut KernelArgs<'_, '_>) + Send + Sync {
    |cfg, args| {
        let n = args.ptr(3).len_as::<u32>();
        let (offsets, neighbors) = {
            let (o, nb) = args
                .slice2_mut::<u32, u32>(0, 1)
                .expect("disjoint CSR buffers");
            (o.to_vec(), nb.to_vec())
        };
        let states = args.slice_mut::<u32>(3).expect("state buffer");
        // Promote winners.
        for v in cfg.threads() {
            if v < n && states[v] == TENTATIVE {
                states[v] = IN_SET;
            }
        }
        // Knock out neighbors.
        for v in cfg.threads() {
            if v >= n || states[v] != IN_SET {
                continue;
            }
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            for &u in &neighbors[s..e] {
                let u = u as usize;
                if states[u] == UNDECIDED {
                    states[u] = OUT;
                }
            }
        }
    }
}

/// CPU reference: runs select/commit rounds to a fixed point and returns
/// the final states. Identical semantics to the kernels.
pub fn mis_cpu(offsets: &[u32], neighbors: &[u32], priorities: &[u32]) -> Vec<u32> {
    let n = priorities.len();
    let mut states = vec![UNDECIDED; n];
    loop {
        let mut changed = false;
        // Select.
        let snapshot = states.clone();
        for v in 0..n {
            if snapshot[v] != UNDECIDED {
                continue;
            }
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            let wins = neighbors[s..e].iter().all(|&u| {
                let u = u as usize;
                snapshot[u] != UNDECIDED || (priorities[v], v) < (priorities[u], u)
            });
            if wins {
                states[v] = TENTATIVE;
                changed = true;
            }
        }
        // Commit.
        #[allow(clippy::needless_range_loop)] // mirrors the kernel's thread loop
        for v in 0..n {
            if states[v] == TENTATIVE {
                states[v] = IN_SET;
            }
        }
        for v in 0..n {
            if states[v] != IN_SET {
                continue;
            }
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            for &u in &neighbors[s..e] {
                if states[u as usize] == UNDECIDED {
                    states[u as usize] = OUT;
                }
            }
        }
        if !changed {
            break;
        }
        if states.iter().all(|&s| s != UNDECIDED) {
            break;
        }
    }
    states
}

/// Verifies independence (no two IN_SET cells adjacent) and maximality
/// (every non-member has an IN_SET neighbor). Movable-cell masks are the
/// caller's concern; this checks the pure graph property.
pub fn verify_mis(offsets: &[u32], neighbors: &[u32], states: &[u32]) -> Result<(), String> {
    let n = states.len();
    for v in 0..n {
        let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
        match states[v] {
            IN_SET => {
                for &u in &neighbors[s..e] {
                    if states[u as usize] == IN_SET {
                        return Err(format!("adjacent members {v} and {u}"));
                    }
                }
            }
            OUT => {
                let ok = neighbors[s..e]
                    .iter()
                    .any(|&u| states[u as usize] == IN_SET);
                if !ok {
                    return Err(format!("cell {v} excluded without a member neighbor"));
                }
            }
            UNDECIDED | TENTATIVE => {
                return Err(format!("cell {v} left undecided"));
            }
            other => return Err(format!("cell {v} in invalid state {other}")),
        }
    }
    Ok(())
}

/// Deterministic per-cell priorities: a seeded splitmix64 stream.
pub fn make_priorities(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PlacementConfig, PlacementDb};

    fn path_graph(n: usize) -> (Vec<u32>, Vec<u32>) {
        // 0-1-2-...-n-1
        let mut offsets = vec![0u32];
        let mut neighbors = Vec::new();
        for v in 0..n {
            if v > 0 {
                neighbors.push((v - 1) as u32);
            }
            if v + 1 < n {
                neighbors.push((v + 1) as u32);
            }
            offsets.push(neighbors.len() as u32);
        }
        (offsets, neighbors)
    }

    #[test]
    fn cpu_mis_on_path_is_valid() {
        let (off, nbr) = path_graph(20);
        let pri = make_priorities(20, 42);
        let st = mis_cpu(&off, &nbr, &pri);
        verify_mis(&off, &nbr, &st).unwrap();
        let members = st.iter().filter(|&&s| s == IN_SET).count();
        // A path of 20 has MIS size between 7 (floor 20/3) and 10.
        assert!((7..=10).contains(&members), "size {members}");
    }

    #[test]
    fn empty_graph_all_in() {
        let off = vec![0u32; 6];
        let st = mis_cpu(&off, &[], &make_priorities(5, 1));
        assert!(st.iter().all(|&s| s == IN_SET));
    }

    #[test]
    fn mis_on_conflict_graph_is_valid() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 800,
            num_nets: 1000,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        let pri = make_priorities(db.num_cells(), 7);
        let st = mis_cpu(&off, &nbr, &pri);
        verify_mis(&off, &nbr, &st).unwrap();
        let members = st.iter().filter(|&&s| s == IN_SET).count();
        assert!(members > 0);
    }

    /// The two-phase kernels, run to fixed point on a software device,
    /// agree exactly with the CPU reference.
    #[test]
    fn kernels_match_cpu_reference() {
        use hf_core::data::HostVec;
        use hf_core::{Executor, Heteroflow};

        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 300,
            num_nets: 400,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        let pri = make_priorities(db.num_cells(), 99);
        let expect = mis_cpu(&off, &nbr, &pri);
        let rounds = 32; // generous upper bound for n=300

        let ex = Executor::new(2, 1);
        let g = Heteroflow::new("mis");
        let h_off: HostVec<u32> = HostVec::from_vec(off.clone());
        let h_nbr: HostVec<u32> = HostVec::from_vec(if nbr.is_empty() {
            vec![u32::MAX] // avoid zero-byte pull
        } else {
            nbr.clone()
        });
        let h_pri: HostVec<u32> = HostVec::from_vec(pri.clone());
        let h_st: HostVec<u32> = HostVec::from_vec(vec![UNDECIDED; db.num_cells()]);

        let p_off = g.pull("off", &h_off);
        let p_nbr = g.pull("nbr", &h_nbr);
        let p_pri = g.pull("pri", &h_pri);
        let p_st = g.pull("st", &h_st);
        let n = db.num_cells();
        let mut prev: Option<hf_core::KernelTask> = None;
        for r in 0..rounds {
            let sel = g.kernel(
                &format!("sel{r}"),
                &[&p_off, &p_nbr, &p_pri, &p_st],
                select_kernel(),
            );
            sel.cover(n, 128);
            let com = g.kernel(
                &format!("com{r}"),
                &[&p_off, &p_nbr, &p_pri, &p_st],
                commit_kernel(),
            );
            com.cover(n, 128);
            match &prev {
                None => {
                    sel.succeed_all(&[&p_off, &p_nbr, &p_pri, &p_st]);
                }
                Some(p) => {
                    sel.succeed(p);
                }
            }
            sel.precede(&com);
            prev = Some(com);
        }
        let push = g.push("push_st", &p_st, &h_st);
        push.succeed(prev.as_ref().unwrap());
        ex.run(&g).wait().unwrap();

        let got = h_st.to_vec();
        assert_eq!(got, expect, "kernel fixed point differs from CPU");
        verify_mis(&off, &nbr, &got).unwrap();
    }
}
