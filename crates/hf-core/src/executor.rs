//! The executor: N CPU workers, M GPUs, work-stealing scheduling.
//!
//! "An executor ... manages a set of CPU threads and GPU devices to
//! schedule in which list of tasks to execute" (§III-B). Unlike systems
//! that dedicate a worker per GPU, every Heteroflow worker can run every
//! task kind — tasks are uniform closures — and GPU tasks are scoped to
//! their assigned device via an RAII context (Listing 13).
//!
//! The scheduling loop follows §III-C: after device placement, workers
//! drain their local Chase–Lev deque and become *thieves* stealing from
//! random victims when empty. The adaptive strategy keeps "one thief
//! alive as long as an active worker is running a task"; otherwise idle
//! workers sleep on an eventcount.
//!
//! The hot path is engineered to stay allocation- and lock-free in steady
//! state:
//!
//! * queued work items are packed `(topology-slot, node)` integer tokens
//!   resolved through a lock-free slot registry — no per-task `Box`;
//! * the shared inbox is a lock-free segmented [`Injector`] with batch
//!   push/pop instead of a `Mutex<VecDeque>`;
//! * releasing successors batches all newly-ready nodes into one injector
//!   spray plus one coalesced `notify_n` wakeup;
//! * re-running an unchanged graph reuses the cached freeze + placement +
//!   fusion plan (see [`crate::graph::SchedCache`]).

use crate::error::HfError;
use crate::graph::{FrozenGraph, Heteroflow, SchedCache, TaskKind, Work};
use crate::lifecycle::{lifecycle_now_ns, LifecycleEvent, LifecyclePhase};
use crate::observer::{ExecutorObserver, TaskMeta};
use crate::placement::PlacementPolicy;
use crate::retry::{OnDeviceLoss, RetryPolicy};
use crate::stats::ExecutorStats;
use crate::topology::{FusionPlan, RunFuture, Topology};
use crate::data::{HostSink, HostSource};
use hf_gpu::{
    Device, DevicePtr, Event, FaultSite, GpuConfig, GpuError, GpuRuntime, KernelArgs,
    LaunchConfig, OpReport, ScopedDeviceContext, Stream,
};
use hf_sync::{Injector, Notifier, Steal, StealDeque, Stealer};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A schedulable unit, packed into one integer: the topology's registry
/// slot in the high 32 bits, the node index in the low 32. Tokens are
/// `Copy` and carry no ownership, so pushing work touches no allocator.
pub(crate) type Token = u64;

#[inline]
fn pack(slot: u32, node: usize) -> Token {
    debug_assert!(node <= u32::MAX as usize);
    ((slot as u64) << 32) | node as u64
}

#[inline]
fn unpack(token: Token) -> (u32, usize) {
    ((token >> 32) as u32, (token & 0xFFFF_FFFF) as usize)
}

/// Newly-ready nodes are dispatched in chunks of this size: one chunk is
/// one injector spray and one coalesced wakeup.
const RELEASE_BATCH: usize = 32;

/// Default byte size above which H2D/D2H transfers are chunked across
/// copy-lane streams. Large enough that typical test graphs stay on the
/// single-op path.
const DEFAULT_COPY_CHUNK_THRESHOLD: usize = 1 << 20;

/// Default number of copy-lane streams per (worker, device).
const DEFAULT_COPY_LANES: usize = 2;

/// Tokens a thief claims from the injector in one batched pop; extras are
/// banked in its local deque.
const STEAL_BATCH: usize = 16;

/// First registry segment size; segment `i` holds `SEG0 << i` slots.
const SEG0: usize = 64;
/// Segment count: `64 * (2^26 - 1)` slots covers every packable id.
const SEGS: usize = 26;

/// Lock-free registry mapping slot ids to in-flight topologies.
///
/// Registration/deregistration (once per submission) take a mutex; token
/// resolution on the execute path is two atomic loads plus a refcount
/// bump. Slots live in lazily-allocated, geometrically-growing segments
/// published through a fixed directory, so resolution never races a
/// reallocation.
///
/// Safety invariant: a slot's strong reference is released only in
/// `deregister`, which the executor calls after the topology's last round
/// fully drained — at that point no token referencing the slot exists in
/// any deque or the injector, so resolution never observes a freed slot.
pub(crate) struct TopoRegistry {
    /// Directory of segments; entry `i` points at `SEG0 << i` slots.
    segments: [AtomicPtr<AtomicPtr<Topology>>; SEGS],
    alloc: Mutex<RegistryAlloc>,
}

#[derive(Default)]
struct RegistryAlloc {
    free: Vec<u32>,
    next: u32,
}

/// Segment index, slot offset within it, and segment length for a slot id.
#[inline]
fn locate(slot: u32) -> (usize, usize, usize) {
    let x = slot / SEG0 as u32 + 1;
    let seg = (31 - x.leading_zeros()) as usize;
    let start = SEG0 * ((1usize << seg) - 1);
    (seg, slot as usize - start, SEG0 << seg)
}

impl TopoRegistry {
    fn new() -> Self {
        Self {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            alloc: Mutex::new(RegistryAlloc::default()),
        }
    }

    /// Assigns a slot to `topo`, stores a strong reference in it, and
    /// records the slot id in `topo.slot`.
    pub(crate) fn register(&self, topo: &Arc<Topology>) -> u32 {
        let mut a = self.alloc.lock();
        let slot = a.free.pop().unwrap_or_else(|| {
            let s = a.next;
            a.next = a.next.checked_add(1).expect("registry slot ids exhausted");
            s
        });
        let (seg, off, len) = locate(slot);
        let mut seg_ptr = self.segments[seg].load(Ordering::Acquire);
        if seg_ptr.is_null() {
            let boxed: Box<[AtomicPtr<Topology>]> = (0..len)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect();
            seg_ptr = Box::into_raw(boxed) as *mut AtomicPtr<Topology>;
            self.segments[seg].store(seg_ptr, Ordering::Release);
        }
        let ptr = Arc::into_raw(Arc::clone(topo)) as *mut Topology;
        // Safety: `off < len` by construction and the segment was just
        // published (or already was); only this mutex-holding thread
        // writes a null slot.
        unsafe { (*seg_ptr.add(off)).store(ptr, Ordering::Release) };
        topo.slot.store(slot, Ordering::Release);
        slot
    }

    /// Resolves a token's slot to its topology. Lock-free.
    pub(crate) fn resolve(&self, slot: u32) -> Arc<Topology> {
        let (seg, off, _) = locate(slot);
        let seg_ptr = self.segments[seg].load(Ordering::Acquire);
        debug_assert!(!seg_ptr.is_null(), "token for unregistered segment");
        // Safety: tokens only exist between register and deregister (see
        // the struct invariant), so the segment exists and the slot holds
        // a live strong reference we can borrow a count from.
        unsafe {
            let ptr = (*seg_ptr.add(off)).load(Ordering::Acquire);
            debug_assert!(!ptr.is_null(), "token for unregistered topology");
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Releases a slot's strong reference and recycles the id.
    pub(crate) fn deregister(&self, slot: u32) {
        let (seg, off, _) = locate(slot);
        let seg_ptr = self.segments[seg].load(Ordering::Acquire);
        let ptr = unsafe { (*seg_ptr.add(off)).swap(std::ptr::null_mut(), Ordering::AcqRel) };
        if !ptr.is_null() {
            // Safety: ownership of the registration count transfers here.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        self.alloc.lock().free.push(slot);
    }
}

impl Drop for TopoRegistry {
    fn drop(&mut self) {
        for (i, seg) in self.segments.iter().enumerate() {
            let seg_ptr = seg.load(Ordering::Acquire);
            if seg_ptr.is_null() {
                continue;
            }
            let len = SEG0 << i;
            // Safety: reconstructs the Box created in `register`; any
            // still-registered topology (defensive — normally none) drops
            // its strong count with the slots.
            unsafe {
                let slots = Box::from_raw(std::ptr::slice_from_raw_parts_mut(seg_ptr, len));
                for s in slots.iter() {
                    let p = s.load(Ordering::Acquire);
                    if !p.is_null() {
                        drop(Arc::from_raw(p));
                    }
                }
            }
        }
    }
}

/// Executor identities for keying per-graph scheduling caches.
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(0);

pub(crate) struct ExecInner {
    /// Process-unique id keying [`SchedCache`] entries.
    pub(crate) id: u64,
    pub(crate) stealers: Vec<Stealer<Token>>,
    /// Shared lock-free inbox for work scheduled off worker threads and
    /// for batched successor sprays.
    pub(crate) injector: Injector<Token>,
    pub(crate) registry: TopoRegistry,
    pub(crate) notifier: Notifier,
    pub(crate) done: AtomicBool,
    pub(crate) num_actives: AtomicUsize,
    pub(crate) num_thieves: AtomicUsize,
    /// Topologies in flight across all graphs.
    pub(crate) num_topologies: AtomicUsize,
    pub(crate) idle_lock: Mutex<()>,
    pub(crate) idle_cv: Condvar,
    pub(crate) gpu: Arc<GpuRuntime>,
    pub(crate) policy: PlacementPolicy,
    /// Decaying estimate of modeled load already packed per device, used
    /// to bias placement of later topologies toward idle GPUs.
    pub(crate) device_load: Mutex<Vec<f64>>,
    pub(crate) stats: ExecutorStats,
    /// When false, idle thieves always spin (never sleep) — the A4
    /// ablation baseline.
    pub(crate) adaptive_sleep: bool,
    /// GPU task fusion (§III-C "task fusing") enabled.
    pub(crate) fusion: bool,
    /// Observers notified around every task execution.
    pub(crate) observers: Vec<Arc<dyn ExecutorObserver>>,
    /// Retry/failover policy applied to failing task bodies.
    pub(crate) retry: RetryPolicy,
    /// Per-device "already counted as lost" latch for the
    /// `devices_lost` stat (each device counted once per executor).
    pub(crate) lost_seen: Vec<AtomicBool>,
    /// H2D/D2H transfers larger than this many bytes are split into
    /// chunks pipelined across copy-lane streams (`usize::MAX` disables).
    pub(crate) copy_chunk_threshold: usize,
    /// Copy-lane streams per (worker, device) used by chunked transfers.
    pub(crate) copy_lanes: usize,
    /// EWMA feedback of modeled per-task durations; consulted by the
    /// locality placement policy and seedable from external history.
    pub(crate) cost_db: crate::costmodel::CostDb,
    /// Device of the GPU chain each worker most recently dispatched
    /// (`u64::MAX` = none yet). Thieves prefer victims sharing their
    /// focus device: those deques hold tasks whose data is most likely
    /// resident where the thief's streams already live.
    pub(crate) worker_focus: Vec<AtomicU64>,
    /// Pin worker `i` to CPU core `i % cores` (feature `core_affinity`).
    pub(crate) pin_workers: bool,
    /// Submission ids handed to topologies/futures and stamped onto
    /// lifecycle events (starts at 1; 0 is reserved for ready futures).
    pub(crate) run_seq: AtomicU64,
    /// What to do with static-analysis findings at submission time.
    pub(crate) lint: LintPolicy,
}

impl ExecInner {
    /// True when the locality policy is active — the only mode that pays
    /// for per-task cost observation.
    fn locality(&self) -> bool {
        matches!(self.policy, PlacementPolicy::Locality)
    }

    /// Records one executed task's modeled duration into the cost
    /// database (locality policy only; other policies skip the feedback
    /// loop entirely so their hot path is unchanged).
    fn observe_cost(&self, graph: &str, task: &str, nanos: f64) {
        if self.locality() {
            self.cost_db.observe(graph, task, nanos);
        }
    }

    /// EWMA cost snapshot for placing `graph`, when the policy uses one.
    pub(crate) fn refined_costs(&self, graph: &str) -> Option<crate::costmodel::TaskCosts> {
        if self.locality() {
            Some(self.cost_db.snapshot_for(graph))
        } else {
            None
        }
    }

    /// Lifecycle fast-path gate: `true` only when at least one registered
    /// observer is active. With no observers (or all inactive) every
    /// lifecycle emission site reduces to this check — no event is
    /// constructed, no timestamp taken, nothing allocated.
    #[inline]
    fn lc_active(&self) -> bool {
        !self.observers.is_empty() && self.observers.iter().any(|o| o.is_active())
    }

    /// Emits a task-level lifecycle event to every observer. Internally
    /// gated on [`ExecInner::lc_active`], so call sites need no guard
    /// (loops over chains may still hoist the check).
    #[allow(clippy::too_many_arguments)]
    fn emit_task_lc(
        &self,
        topo: &Topology,
        phase: LifecyclePhase,
        node: usize,
        worker: Option<u32>,
        chain: Option<u32>,
        ok: bool,
        detail: Option<&HfError>,
    ) {
        if !self.lc_active() {
            return;
        }
        let nd = &topo.frozen.nodes[node];
        let ev = LifecycleEvent {
            run_id: topo.run_id,
            graph: Arc::clone(&topo.graph_label),
            phase,
            task: Some(node as u32),
            name: Arc::from(nd.name.as_str()),
            kind: Some(nd.work.kind()),
            device: topo.placement().device_of[node],
            worker,
            chain,
            bytes: node_move_bytes(&topo.frozen, node),
            ok,
            detail: detail.map(|e| Arc::from(e.to_string().as_str())),
            epoch: topo.epoch,
            tenant: topo.tenant.clone(),
            t_ns: lifecycle_now_ns(),
        };
        for o in &self.observers {
            o.on_lifecycle(&ev);
        }
    }

    /// Emits a run-level lifecycle event for a topology
    /// (`Failover`/`EpochEnd`).
    fn emit_run_lc(
        &self,
        topo: &Topology,
        phase: LifecyclePhase,
        ok: bool,
        detail: Option<&HfError>,
    ) {
        self.emit_raw_run_lc(
            topo.run_id,
            &topo.graph_label,
            phase,
            ok,
            detail,
            topo.epoch,
            topo.tenant.as_ref(),
        );
    }

    /// Emits a run-level lifecycle event without a topology in hand — the
    /// drivers and sessions use this for `RunStart`/`RunEnd` (which now
    /// bracket a whole submission, not one epoch topology) and
    /// `EpochStart` (emitted at admission, before the epoch's topology
    /// exists in the registry).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_raw_run_lc(
        &self,
        run_id: u64,
        label: &Arc<str>,
        phase: LifecyclePhase,
        ok: bool,
        detail: Option<&HfError>,
        epoch: Option<u64>,
        tenant: Option<&Arc<str>>,
    ) {
        if !self.lc_active() {
            return;
        }
        let ev = LifecycleEvent {
            run_id,
            graph: Arc::clone(label),
            phase,
            task: None,
            name: Arc::clone(label),
            kind: None,
            device: None,
            worker: None,
            chain: None,
            bytes: 0,
            ok,
            detail: detail.map(|e| Arc::from(e.to_string().as_str())),
            epoch,
            tenant: tenant.cloned(),
            t_ns: lifecycle_now_ns(),
        };
        for o in &self.observers {
            o.on_lifecycle(&ev);
        }
    }

    /// Emits one run-level [`LifecyclePhase::Lint`] event per diagnostic
    /// in `report`, right after `RunStart`. `ok` is `false` for
    /// Error-severity findings; `detail` carries the rendered diagnostic.
    pub(crate) fn emit_lint_lc(&self, run_id: u64, label: &Arc<str>, report: &crate::analyze::Report) {
        if !self.lc_active() {
            return;
        }
        for d in &report.diagnostics {
            let ev = LifecycleEvent {
                run_id,
                graph: Arc::clone(label),
                phase: LifecyclePhase::Lint,
                task: None,
                name: Arc::clone(label),
                kind: None,
                device: None,
                worker: None,
                chain: None,
                bytes: 0,
                ok: d.severity != crate::analyze::Severity::Error,
                detail: Some(Arc::from(d.render().as_str())),
                epoch: None,
                tenant: None,
                t_ns: lifecycle_now_ns(),
            };
            for o in &self.observers {
                o.on_lifecycle(&ev);
            }
        }
    }

    /// Publishes a freshly computed placement's locality metrics.
    pub(crate) fn record_placement(&self, p: &crate::placement::Placement) {
        if p.warm_hits > 0 {
            self.stats.placement_warm_hits.add(p.warm_hits);
        }
        if p.est_bytes_saved > 0 {
            self.stats.placement_est_bytes_saved.add(p.est_bytes_saved);
        }
        self.stats.placement_imbalance.set(p.imbalance());
    }
}

/// PCIe bytes a task moves when it runs: a pull's current host size, a
/// push's staged pull size, `0` for host/kernel tasks. Stamped onto
/// lifecycle events so transfer-heavy stragglers are attributable.
fn node_move_bytes(frozen: &FrozenGraph, node: usize) -> u64 {
    match &frozen.nodes[node].work {
        Work::Pull { source } => source.byte_len() as u64,
        Work::Push { source_pull, .. } => match &frozen.nodes[*source_pull].work {
            Work::Pull { source } => source.byte_len() as u64,
            _ => 0,
        },
        _ => 0,
    }
}

/// What the executor does with static-analysis findings
/// ([`crate::Heteroflow::analyze`]) when a graph is submitted.
///
/// The analysis itself is cheap and epoch-cached on the graph, so the
/// policy only decides what happens to the *findings*:
///
/// * [`Off`](LintPolicy::Off) — never analyze at submission.
/// * [`Warn`](LintPolicy::Warn) (default) — when a lifecycle observer is
///   active, emit one [`crate::LifecyclePhase::Lint`] event per finding
///   right after `RunStart`; the run proceeds regardless. With no active
///   observer the analysis is skipped entirely, keeping the default
///   submission path as cheap as `Off`.
/// * [`Deny`](LintPolicy::Deny) — reject graphs with Error-severity
///   findings before any work dispatches: the returned future resolves
///   to [`crate::HfError::LintRejected`] carrying the rendered findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintPolicy {
    /// Never run the analyzer at submission time.
    Off,
    /// Analyze and surface findings as lifecycle events; never reject.
    #[default]
    Warn,
    /// Reject submissions whose graph has Error-severity findings.
    Deny,
}

/// A resolved scheduling preamble: everything an epoch driver needs to
/// start creating topologies for one submission of one graph.
pub(crate) struct ExecPlan {
    pub(crate) frozen: Arc<FrozenGraph>,
    pub(crate) placement: Arc<crate::placement::Placement>,
    pub(crate) fusion: Arc<FusionPlan>,
    pub(crate) lint_report: Option<Arc<crate::analyze::Report>>,
}

/// What [`ExecInner::failure_action`] decided about a failed task body.
enum FailureAction {
    /// Re-dispatch the node after the given backoff.
    Retry(Duration),
    /// Request a device failover; the round drains and replays.
    Failover,
    /// Fail the run with the error.
    Fail,
}

/// Builder for [`Executor`] with non-default GPU configuration, placement
/// policy, or scheduling knobs.
pub struct ExecutorBuilder {
    cpus: usize,
    gpus: u32,
    gpu_config: GpuConfig,
    shared_gpu: Option<Arc<GpuRuntime>>,
    policy: PlacementPolicy,
    adaptive_sleep: bool,
    fusion: bool,
    observers: Vec<Arc<dyn ExecutorObserver>>,
    tracer: Option<Arc<crate::observer::TraceCollector>>,
    retry: RetryPolicy,
    copy_chunk_threshold: usize,
    copy_lanes: usize,
    pin_workers: bool,
    lint: LintPolicy,
}

impl std::fmt::Debug for ExecutorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorBuilder")
            .field("cpus", &self.cpus)
            .field("gpus", &self.gpus)
            .field("policy", &self.policy)
            .field("adaptive_sleep", &self.adaptive_sleep)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl ExecutorBuilder {
    /// Starts a builder with `cpus` worker threads and `gpus` devices.
    pub fn new(cpus: usize, gpus: u32) -> Self {
        Self {
            cpus,
            gpus,
            gpu_config: GpuConfig::default(),
            shared_gpu: None,
            policy: PlacementPolicy::BalancedLoad,
            adaptive_sleep: true,
            fusion: true,
            observers: Vec::new(),
            tracer: None,
            retry: RetryPolicy::default(),
            copy_chunk_threshold: DEFAULT_COPY_CHUNK_THRESHOLD,
            copy_lanes: DEFAULT_COPY_LANES,
            pin_workers: false,
            lint: LintPolicy::default(),
        }
    }

    /// Sets what the executor does with static-analysis findings when a
    /// graph is submitted (default [`LintPolicy::Warn`]). See
    /// [`LintPolicy`] and [`crate::Heteroflow::analyze`].
    pub fn lint_policy(mut self, policy: LintPolicy) -> Self {
        self.lint = policy;
        self
    }

    /// Pins worker thread `i` to CPU core `i % available_cores` on spawn,
    /// keeping each worker's cache and NUMA locality stable across its
    /// lifetime (default off). Pinning requires the `core_affinity`
    /// feature on Linux/x86-64; elsewhere the knob is accepted but
    /// pinning is a no-op.
    pub fn pin_workers(mut self, on: bool) -> Self {
        self.pin_workers = on;
        self
    }

    /// Sets the byte size above which H2D/D2H transfers are split into
    /// chunks enqueued round-robin across copy-lane streams, letting long
    /// copies interleave with kernels on the same device (default 1 MiB;
    /// `usize::MAX` disables chunking).
    pub fn copy_chunk_threshold(mut self, bytes: usize) -> Self {
        self.copy_chunk_threshold = bytes.max(1);
        self
    }

    /// Sets how many copy-lane streams each worker opens per device for
    /// chunked transfers (default 2; clamped to at least 1).
    pub fn copy_lanes(mut self, lanes: usize) -> Self {
        self.copy_lanes = lanes.max(1);
        self
    }

    /// Sets the retry/failover policy applied when task bodies fail with
    /// transient device errors (default: no retries; device loss triggers
    /// failover onto the surviving GPUs). See [`RetryPolicy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Overrides the GPU configuration (memory size, cost model, ...).
    pub fn gpu_config(mut self, cfg: GpuConfig) -> Self {
        self.gpu_config = cfg;
        self
    }

    /// Shares an existing GPU runtime instead of creating one.
    pub fn gpu_runtime(mut self, rt: Arc<GpuRuntime>) -> Self {
        self.shared_gpu = Some(rt);
        self
    }

    /// Overrides the device placement policy (Algorithm 1's packing step).
    pub fn placement_policy(mut self, p: PlacementPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Disables the adaptive sleep strategy: idle thieves spin forever.
    /// Ablation baseline; wastes CPU but minimizes wakeup latency.
    pub fn adaptive_sleep(mut self, on: bool) -> Self {
        self.adaptive_sleep = on;
        self
    }

    /// Enables/disables GPU task fusion (default on): linear chains of
    /// same-device kernel/push tasks dispatch as one stream submission
    /// with a single completion callback, cutting per-task scheduling
    /// overhead (§III-C "task fusing"). The A5 ablation baseline is
    /// `false`.
    pub fn task_fusion(mut self, on: bool) -> Self {
        self.fusion = on;
        self
    }

    /// Registers an observer notified around every task execution (e.g.
    /// [`crate::observer::TraceCollector`] for chrome-trace profiling).
    /// Fused chain members fold into their head's span.
    pub fn observer(mut self, obs: Arc<dyn ExecutorObserver>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Registers `trace` as observer *and* wires it into the GPU runtime
    /// for device-side stitching: GPU task spans then show true device
    /// execution times (and CPU/GPU overlap) instead of the worker-side
    /// dispatch window — see the [`crate::observer`] module docs for the
    /// historical dispatch-time-only behaviour. Workers also label
    /// dispatched ops with the task name/kind so device events map back
    /// to graph tasks.
    pub fn tracer(mut self, trace: Arc<crate::observer::TraceCollector>) -> Self {
        self.observers
            .push(Arc::clone(&trace) as Arc<dyn ExecutorObserver>);
        self.tracer = Some(trace);
        self
    }

    /// Builds the executor, spawning worker threads and device engines.
    pub fn build(self) -> Executor {
        let cpus = self.cpus.max(1);
        let gpu = self
            .shared_gpu
            .unwrap_or_else(|| Arc::new(GpuRuntime::new(self.gpus, self.gpu_config)));
        if let Some(trace) = &self.tracer {
            trace.connect_gpu(&gpu);
        }

        let deques: Vec<StealDeque<Token>> = (0..cpus).map(|_| StealDeque::new()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();

        let inner = Arc::new(ExecInner {
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
            stealers,
            injector: Injector::new(),
            registry: TopoRegistry::new(),
            notifier: Notifier::new(),
            done: AtomicBool::new(false),
            num_actives: AtomicUsize::new(0),
            num_thieves: AtomicUsize::new(0),
            num_topologies: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            gpu: Arc::clone(&gpu),
            policy: self.policy,
            device_load: Mutex::new(vec![0.0; gpu.num_devices() as usize]),
            stats: ExecutorStats::new(cpus),
            adaptive_sleep: self.adaptive_sleep,
            fusion: self.fusion,
            observers: self.observers,
            retry: self.retry,
            lost_seen: (0..gpu.num_devices())
                .map(|_| AtomicBool::new(false))
                .collect(),
            copy_chunk_threshold: self.copy_chunk_threshold,
            copy_lanes: self.copy_lanes,
            cost_db: crate::costmodel::CostDb::new(),
            worker_focus: (0..cpus).map(|_| AtomicU64::new(u64::MAX)).collect(),
            pin_workers: self.pin_workers,
            run_seq: AtomicU64::new(0),
            lint: self.lint,
        });

        let threads = deques
            .into_iter()
            .enumerate()
            .map(|(id, deque)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hf-worker-{id}"))
                    .spawn(move || Worker::new(id, deque, inner).run())
                    .expect("spawn executor worker")
            })
            .collect();

        Executor {
            inner,
            gpu,
            threads: Mutex::new(threads),
        }
    }
}

/// The Heteroflow executor. Thread-safe: `run*` may be called from any
/// thread, concurrently (§III-B).
pub struct Executor {
    pub(crate) inner: Arc<ExecInner>,
    pub(crate) gpu: Arc<GpuRuntime>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("cpus", &self.num_workers())
            .field("gpus", &self.gpu.num_devices())
            .finish()
    }
}

impl Executor {
    /// Creates an executor with `cpus` worker threads and `gpus` software
    /// GPU devices — `hf::Executor executor(8, 4)` in the paper.
    pub fn new(cpus: usize, gpus: u32) -> Self {
        ExecutorBuilder::new(cpus, gpus).build()
    }

    /// Builder for custom configurations.
    pub fn builder(cpus: usize, gpus: u32) -> ExecutorBuilder {
        ExecutorBuilder::new(cpus, gpus)
    }

    /// Number of CPU worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.stealers.len()
    }

    /// Number of GPU devices.
    pub fn num_gpus(&self) -> u32 {
        self.gpu.num_devices()
    }

    /// The underlying GPU runtime (e.g. for pool statistics in tests).
    pub fn gpu_runtime(&self) -> &Arc<GpuRuntime> {
        &self.gpu
    }

    /// Scheduling statistics (steals, sleeps, executed tasks).
    pub fn stats(&self) -> &ExecutorStats {
        &self.inner.stats
    }

    /// Statistics snapshot extended with the executor's *live* scheduling
    /// gauges: `inflight_tasks` (task bodies currently executing on
    /// workers) and `queue_depth` (tokens waiting in the injector plus
    /// every worker deque). Unlike the counters these are point-in-time
    /// reads of moving state — exactly what an external health monitor
    /// needs to distinguish "busy" from "stuck". Plain
    /// [`ExecutorStats::snapshot`] leaves both at zero.
    pub fn snapshot(&self) -> crate::stats::StatsSnapshot {
        let mut s = self.inner.stats.snapshot();
        s.inflight_tasks = self.inner.num_actives.load(Ordering::SeqCst) as u64;
        s.queue_depth = (self.inner.injector.len()
            + self.inner.stealers.iter().map(|st| st.len()).sum::<usize>())
            as u64;
        s
    }

    /// The per-task cost database backing the locality placement policy.
    /// Exposed for inspection; prefer [`Executor::seed_task_cost`] for
    /// pre-loading estimates.
    pub fn cost_db(&self) -> &crate::costmodel::CostDb {
        &self.inner.cost_db
    }

    /// Seeds the locality cost model with an external duration estimate
    /// (nanoseconds of modeled device time) for `task` of `graph` — e.g.
    /// from a persisted timing profile — so the very first placement of a
    /// known workload is already informed. Estimates observed at runtime
    /// take precedence over seeds.
    pub fn seed_task_cost(&self, graph: &str, task: &str, nanos: f64) {
        self.inner.cost_db.seed(graph, task, nanos);
    }

    /// Current decaying modeled-load estimate per device (nanoseconds),
    /// as used to bias placement of later topologies toward idle GPUs.
    pub fn device_loads(&self) -> Vec<f64> {
        self.inner.device_load.lock().clone()
    }

    /// Runs the graph once. Non-blocking; returns a future.
    pub fn run(&self, hf: &Heteroflow) -> RunFuture {
        self.run_n(hf, 1)
    }

    /// Runs the graph `n` times (rounds execute back-to-back).
    pub fn run_n(&self, hf: &Heteroflow, n: usize) -> RunFuture {
        let mut remaining = n;
        self.run_until(hf, move || {
            if remaining == 0 {
                true
            } else {
                remaining -= 1;
                false
            }
        })
    }

    /// Runs the graph repeatedly until `stop` returns `true` (checked
    /// before each round).
    ///
    /// The scheduling preamble (freeze, Algorithm 1 placement, fusion
    /// planning) is cached per graph: resubmitting an unchanged graph
    /// reuses the previous plan and only refreshes the decaying
    /// device-load bias. Any mutation invalidates the cache via the
    /// builder epoch.
    ///
    /// Since the streaming redesign this is a thin wrapper over the same
    /// epoch driver machinery that powers [`Executor::run_stream`]: each
    /// round executes as one single-round epoch topology, chained through
    /// the epoch-completion hook (see `crate::stream`).
    pub fn run_until<P>(&self, hf: &Heteroflow, stop: P) -> RunFuture
    where
        P: FnMut() -> bool + Send + 'static,
    {
        crate::stream::run_driver(self, hf, Box::new(stop))
    }

    /// Opens a resident streaming session on the graph with the default
    /// [`StreamConfig`] (in-flight depth 2). The returned
    /// [`crate::Session`] keeps the frozen snapshot, placement, and
    /// double-buffered device residency resident across epochs;
    /// [`crate::Session::submit`] enqueues the next epoch while prior
    /// epochs still occupy the devices, so epoch N+1's H2D transfers
    /// overlap epoch N's kernels.
    pub fn run_stream(&self, hf: &Heteroflow) -> Result<crate::stream::Session, HfError> {
        self.run_stream_with(hf, crate::stream::StreamConfig::default())
    }

    /// [`Executor::run_stream`] with an explicit [`StreamConfig`]
    /// (in-flight epoch depth / residency ring size).
    pub fn run_stream_with(
        &self,
        hf: &Heteroflow,
        cfg: crate::stream::StreamConfig,
    ) -> Result<crate::stream::Session, HfError> {
        crate::stream::Session::open(self, hf, cfg)
    }

    /// The scheduling preamble shared by every submission path: freeze,
    /// lint gate, placement (degraded against survivors when a device is
    /// lost), fusion planning, and the per-graph scheduling cache.
    pub(crate) fn plan_for(&self, hf: &Heteroflow) -> Result<ExecPlan, HfError> {
        let inner = &self.inner;
        let (frozen, epoch) = hf.freeze_with_epoch()?;

        // Static analysis gate (see `crate::analyze`). The report is
        // epoch-cached on the graph, and under the default `Warn` policy
        // nothing is even computed unless a lifecycle observer is active
        // — so the common submission path pays only this match.
        let lint_report = match inner.lint {
            LintPolicy::Off => None,
            LintPolicy::Warn if !inner.lc_active() => None,
            policy => {
                let report = hf.analyze();
                if policy == LintPolicy::Deny && report.has_errors() {
                    return Err(HfError::LintRejected {
                        graph: report.graph.clone(),
                        diagnostics: report.errors().map(|d| d.render()).collect(),
                    });
                }
                Some(report)
            }
        };

        // Degraded mode: with a lost device the cached placement (and the
        // cross-graph load bias) may reference dead hardware, so bypass
        // the cache in both directions and place directly against the
        // surviving device set.
        let lost: Vec<bool> = self.gpu.devices().iter().map(|d| d.is_lost()).collect();
        if lost.iter().any(|&l| l) {
            for (d, &l) in lost.iter().enumerate() {
                if l && !inner.lost_seen[d].swap(true, Ordering::Relaxed) {
                    inner.stats.devices_lost.incr();
                }
            }
            inner.stats.topo_cache_misses.incr();
            let refined = inner.refined_costs(frozen.name());
            let p = crate::placement::failover_placement_ext(
                &*frozen,
                &[],
                &lost,
                &self.gpu_cost_model(),
                inner.policy,
                refined.as_ref(),
            )?;
            inner.record_placement(&p);
            let placement = Arc::new(p);
            let fusion = Arc::new(FusionPlan::compute(&frozen, &placement, inner.fusion));
            return Ok(ExecPlan {
                frozen,
                placement,
                fusion,
                lint_report,
            });
        }

        // Scheduling cache: reuse placement + fusion when this executor
        // already planned this epoch of the graph.
        let cached = {
            let c = hf.shared.sched_cache.lock();
            c.as_ref()
                .filter(|sc| sc.exec_id == inner.id && sc.epoch == epoch)
                .map(|sc| {
                    (
                        Arc::clone(&sc.placement),
                        Arc::clone(&sc.fusion),
                        sc.own_loads.clone(),
                    )
                })
        };
        let (placement, fusion) = match cached {
            Some((placement, fusion, own_loads)) => {
                inner.stats.topo_cache_hits.incr();
                // Keep the cross-graph bias fresh: decay, then re-apply
                // this graph's own modeled load.
                let mut dl = inner.device_load.lock();
                for (l, own) in dl.iter_mut().zip(&own_loads) {
                    *l = *l * 0.5 + own;
                }
                (placement, fusion)
            }
            None => {
                inner.stats.topo_cache_misses.incr();
                let mut dl = inner.device_load.lock();
                for l in dl.iter_mut() {
                    *l *= 0.5;
                }
                let refined = inner.refined_costs(frozen.name());
                let p = crate::placement::device_placement_ext(
                    &*frozen,
                    self.gpu.num_devices(),
                    inner.policy,
                    &self.gpu_cost_model(),
                    &dl,
                    refined.as_ref(),
                )?;
                inner.record_placement(&p);
                let own_loads: Vec<f64> =
                    p.loads.iter().zip(dl.iter()).map(|(l, b)| l - b).collect();
                dl.copy_from_slice(&p.loads);
                drop(dl);
                let placement = Arc::new(p);
                let fusion = Arc::new(FusionPlan::compute(&frozen, &placement, inner.fusion));
                *hf.shared.sched_cache.lock() = Some(SchedCache {
                    exec_id: inner.id,
                    epoch,
                    placement: Arc::clone(&placement),
                    fusion: Arc::clone(&fusion),
                    own_loads,
                });
                (placement, fusion)
            }
        };

        Ok(ExecPlan {
            frozen,
            placement,
            fusion,
            lint_report,
        })
    }

    /// Blocks until every topology submitted to this executor (from any
    /// thread) has finished — including every epoch of open streaming
    /// sessions: a [`crate::Session`] holds an in-flight topology count
    /// while any submitted epoch is unfinished (an *idle* open stream
    /// does not block this call).
    ///
    /// Multi-threaded submission contract: this call observes a
    /// consistent in-flight count across *all* submitting threads — a
    /// submission that returned its [`RunFuture`] before `wait_for_all`
    /// was entered is always drained, whichever thread made it. The
    /// count is held for a whole chained submission (every round of
    /// `run_n`, every queued run of a busy graph), so the gaps between
    /// chained epochs are observed as busy, never as a spurious idle.
    /// Submissions racing *into* `wait_for_all` from other threads may
    /// or may not be included; the call returns at some point when the
    /// executor is momentarily drained.
    pub fn wait_for_all(&self) {
        let mut g = self.inner.idle_lock.lock();
        while self.inner.num_topologies.load(Ordering::SeqCst) != 0 {
            self.inner.idle_cv.wait(&mut g);
        }
    }

    pub(crate) fn gpu_cost_model(&self) -> hf_gpu::CostModel {
        self.gpu
            .devices()
            .first()
            .map(|d| d.cost_model())
            .unwrap_or_default()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.wait_for_all();
        self.inner.done.store(true, Ordering::SeqCst);
        self.inner.notifier.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        // Queues hold plain integer tokens (no ownership); draining is
        // purely defensive hygiene.
        for s in &self.inner.stealers {
            while let Steal::Success(_) = s.steal() {}
        }
        while self.inner.injector.pop().is_some() {}
    }
}

impl ExecInner {
    /// Starts a (now-active) topology: checks the stopping predicate and
    /// either completes immediately or schedules the first round.
    pub(crate) fn start_topology(&self, topo: Arc<Topology>) {
        // Check cancellation (a queued topology may have been cancelled
        // while waiting) and the predicate before the first round
        // (run_n(0) semantics).
        let stop = topo.cancel_requested() || (topo.predicate.lock())();
        if stop || topo.frozen.nodes.is_empty() {
            self.finish_topology(topo);
            return;
        }
        topo.reset_round();
        self.schedule_sources(&topo);
    }

    /// Schedules the round's source nodes in injector-spray batches.
    /// Sources that are heads of a still-closed epoch gate are skipped:
    /// their (inflated) join counter is consumed by [`ExecInner::open_gate`]
    /// when the previous epoch of the stream completes.
    fn schedule_sources(&self, topo: &Arc<Topology>) {
        let slot = topo.slot.load(Ordering::Relaxed);
        let gated = topo
            .gate
            .as_ref()
            .filter(|g| !g.opened.load(Ordering::Acquire));
        let mut buf = [0 as Token; RELEASE_BATCH];
        let mut n = 0;
        for &id in &topo.frozen.sources {
            if gated.is_some_and(|g| g.is_head[id]) {
                continue;
            }
            if n == RELEASE_BATCH {
                self.dispatch_batch(&buf);
                n = 0;
            }
            buf[n] = pack(slot, id);
            n += 1;
        }
        self.dispatch_batch(&buf[..n]);
    }

    /// Opens a streaming epoch's body gate: consumes the extra join
    /// dependency [`crate::topology::Topology::reset_round`] inflated
    /// onto each gate head, dispatching heads whose real dependencies
    /// have already drained. Idempotent; no-op for gateless topologies
    /// and topologies that finished before their gate opened (a
    /// cancelled-at-admission epoch never dispatched any body token).
    pub(crate) fn open_gate(&self, topo: &Arc<Topology>) {
        let Some(g) = &topo.gate else { return };
        if g.opened.swap(true, Ordering::AcqRel) {
            return;
        }
        let slot = topo.slot.load(Ordering::Acquire);
        if slot == u32::MAX {
            return;
        }
        let fusion = topo.fusion();
        let mut buf = [0 as Token; RELEASE_BATCH];
        let mut n = 0;
        for &h in &g.heads {
            if topo.join[h].fetch_sub(1, Ordering::AcqRel) == 1 && !fusion.member[h] {
                if n == RELEASE_BATCH {
                    self.dispatch_batch(&buf);
                    n = 0;
                }
                buf[n] = pack(slot, h);
                n += 1;
            }
        }
        self.dispatch_batch(&buf[..n]);
    }

    /// Dispatches a batch of ready tokens: the first goes to the calling
    /// worker's local deque (when on a worker thread), the rest are
    /// sprayed across the injector in one lock-free batch push; thieves
    /// are woken with a single coalesced notification proportional to the
    /// batch size.
    fn dispatch_batch(&self, tokens: &[Token]) {
        let k = tokens.len();
        if k == 0 {
            return;
        }
        // Ready events must fire before the tokens become stealable:
        // once pushed, a peer can execute the token, drain the round, and
        // deregister the slot — after which it no longer resolves.
        if self.lc_active() {
            for &t in tokens {
                let (slot, node) = unpack(t);
                let topo = self.registry.resolve(slot);
                self.emit_task_lc(&topo, LifecyclePhase::Ready, node, None, None, true, None);
            }
        }
        let local_took = WORKER_DEQUE.with(|d| match d.borrow().as_ref() {
            Some(local) => {
                local.push(tokens[0]);
                true
            }
            None => false,
        });
        let rest = if local_took { &tokens[1..] } else { tokens };
        if !rest.is_empty() {
            self.injector.push_batch(rest);
            if rest.len() > 1 {
                self.stats.injector_batches.incr();
            }
        }
        if k > 1 {
            self.stats.notify_coalesced.add((k - 1) as u64);
        }
        self.notifier.notify_n(k);
    }

    /// Completes one epoch topology: releases its registry slot, emits
    /// `EpochEnd` (streaming epochs), and hands the result to the driver
    /// via the topology's `on_finish` hook — the hook chains the next
    /// epoch (sequential drivers), or advances the stream's completion
    /// watermark and opens the next epoch's gate (sessions). Promise
    /// settlement and graph-claim promotion live in the drivers.
    fn finish_topology(&self, topo: Arc<Topology>) {
        // Pull allocations stay device-resident so an unchanged
        // resubmission can elide its H2D copies; they are freed when the
        // frozen snapshot drops (graph mutation or teardown). Give the
        // pools' magazine caches back to the buddy allocator instead, so
        // parked blocks can coalesce between runs.
        for dev in self.gpu.devices() {
            dev.trim_pool();
        }

        // Release the registry slot: every token of this topology has
        // been consumed (the round fully drained), so none can resolve
        // this slot anymore.
        let slot = topo.slot.swap(u32::MAX, Ordering::AcqRel);
        if slot != u32::MAX {
            self.registry.deregister(slot);
        }

        if topo.epoch.is_some() {
            let result = topo.result();
            self.emit_run_lc(
                &topo,
                LifecyclePhase::EpochEnd,
                result.is_ok(),
                result.as_ref().err(),
            );
        }
        let hook = topo.on_finish.lock().take();

        // The epoch topology's own in-flight count drops here; the driver
        // holds a separate count for the whole submission, so the idle
        // condvar only fires at true quiescence.
        if self.num_topologies.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }

        if let Some(hook) = hook {
            hook(&topo);
        }
    }

    /// Marks a node finished: records whether it succeeded (failover
    /// replay bookkeeping), releases its successors (batched) and, if it
    /// was the round's last node, ends the round. Called from worker
    /// threads (synchronous host tasks) and from device engine threads
    /// (the stream-ordered completion callbacks of GPU tasks). Failed and
    /// skipped nodes still release successors so the round always drains
    /// — never hangs — with the skip flags keeping bodies from consuming
    /// half-failed state.
    fn finish_node(&self, topo: &Arc<Topology>, node: usize, ok: bool) {
        topo.round_ok[node].store(ok, Ordering::Release);
        let slot = topo.slot.load(Ordering::Relaxed);
        let fusion = topo.fusion();
        let mut buf = [0 as Token; RELEASE_BATCH];
        let mut n = 0;
        for &s in &topo.frozen.nodes[node].succ {
            if topo.join[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                // Fused chain members were dispatched with their head;
                // whoever finished the head also finishes them in order.
                if !fusion.member[s] {
                    if n == RELEASE_BATCH {
                        self.dispatch_batch(&buf);
                        n = 0;
                    }
                    buf[n] = pack(slot, s);
                    n += 1;
                }
            }
        }
        if n > 0 {
            self.dispatch_batch(&buf[..n]);
        }
        // Streaming admission: when the last prologue node (host tasks and
        // pulls) of an epoch drains, fire the session's hook so the next
        // epoch's input mutation and H2D transfers can start while this
        // epoch's body still occupies the devices. Saturating — failover
        // replay may re-finish a prologue node — and the FnOnce hook fires
        // exactly once.
        if let Some(p) = &topo.prologue {
            if p.is_prologue[node] {
                let fired = p
                    .pending
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
                if fired == Ok(1) {
                    if let Some(hook) = p.hook.lock().take() {
                        hook();
                    }
                }
            }
        }
        if topo.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.end_round(topo);
        }
    }

    /// Called by the worker that finished the last node of a round.
    fn end_round(&self, topo: &Arc<Topology>) {
        // A device was lost mid-round: once the round has drained, replay
        // its unfinished part on a re-placed device assignment instead of
        // counting the round. Skipped when the run already failed or was
        // cancelled.
        if topo.failover_pending.load(Ordering::Acquire)
            && !topo.cancelled.load(Ordering::Acquire)
            && !topo.cancel_requested()
            && self.try_failover(topo)
        {
            return;
        }

        topo.rounds.fetch_add(1, Ordering::Relaxed);
        self.stats.rounds.incr();

        // Pull allocations persist across rounds and submissions (sizes
        // usually repeat, and unchanged data elides the copy entirely);
        // they are reclaimed when the frozen snapshot drops.
        let stop = topo.cancelled.load(Ordering::Acquire)
            || topo.cancel_requested()
            || (topo.predicate.lock())();
        if stop {
            self.finish_topology(Arc::clone(topo));
        } else {
            // A failover left a replay-masked fusion plan; recompute the
            // full plan for the new placement before the next round.
            if topo.fusion_stale.swap(false, Ordering::AcqRel) {
                let plan = FusionPlan::compute(&topo.frozen, &topo.placement(), self.fusion);
                *topo.fusion.write() = Arc::new(plan);
            }
            topo.reset_round();
            self.schedule_sources(topo);
        }
    }

    /// Decides what to do about a failed task body: retry it (transient
    /// error with attempts left), fail the run, or — for a whole-device
    /// loss under [`OnDeviceLoss::Failover`] — request a failover.
    fn failure_action(&self, topo: &Arc<Topology>, node: usize, err: &HfError) -> FailureAction {
        match err.gpu_cause() {
            Some(GpuError::FaultInjected { .. }) => {
                self.stats.faults_injected.incr();
            }
            Some(GpuError::DeviceLost(_)) => {
                return match self.retry.loss_behavior() {
                    OnDeviceLoss::Failover => FailureAction::Failover,
                    OnDeviceLoss::Fail => FailureAction::Fail,
                };
            }
            _ => {}
        }
        // Retry only failures whose effect never happened: injected
        // faults and allocation exhaustion fire before mutating anything,
        // and panics unwind before the task's outputs are published.
        let retryable = matches!(err, HfError::TaskPanicked { .. })
            || matches!(
                err.gpu_cause(),
                Some(GpuError::FaultInjected { .. } | GpuError::OutOfMemory { .. })
            );
        if !retryable {
            return FailureAction::Fail;
        }
        let kind = topo.frozen.nodes[node].work.kind();
        let attempt = topo.attempts[node].fetch_add(1, Ordering::Relaxed) + 1;
        if attempt < self.retry.attempts(kind) {
            FailureAction::Retry(self.retry.backoff_for(attempt))
        } else {
            FailureAction::Fail
        }
    }

    /// Handles a failed GPU chain suffix from a stream completion
    /// callback: `rest[0]` is the failed node; the rest never ran.
    fn chain_failure(&self, topo: &Arc<Topology>, rest: &[usize], err: HfError) {
        let failed = rest[0];
        match self.failure_action(topo, failed, &err) {
            FailureAction::Retry(delay) => {
                // Suffix retry: the completed prefix already finished ok;
                // re-dispatch the failed member, which re-walks the chain
                // from there. Runs on the device engine thread, so the
                // token lands in the injector.
                self.stats.retries.incr();
                topo.retries.fetch_add(1, Ordering::Relaxed);
                self.emit_task_lc(
                    topo,
                    LifecyclePhase::Retried,
                    failed,
                    None,
                    None,
                    false,
                    Some(&err),
                );
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let slot = topo.slot.load(Ordering::Relaxed);
                self.dispatch_batch(&[pack(slot, failed)]);
            }
            FailureAction::Failover => {
                self.emit_task_lc(
                    topo,
                    LifecyclePhase::Failed,
                    failed,
                    None,
                    None,
                    false,
                    Some(&err),
                );
                topo.request_failover(err);
                for &n in rest {
                    self.finish_node(topo, n, false);
                }
            }
            FailureAction::Fail => {
                self.emit_task_lc(
                    topo,
                    LifecyclePhase::Failed,
                    failed,
                    None,
                    None,
                    false,
                    Some(&err),
                );
                topo.fail(err);
                for &n in rest {
                    self.finish_node(topo, n, false);
                }
            }
        }
    }

    /// Performs a device failover at a drained round boundary: re-places
    /// the lost devices' groups onto the survivors and replays exactly the
    /// nodes that did not complete this round. Returns `false` when the
    /// failover could not be performed (budget exhausted, no survivors, or
    /// replay would double-apply a completed push) — the run then fails
    /// with the triggering error.
    fn try_failover(&self, topo: &Arc<Topology>) -> bool {
        let cause = match topo.failover.lock().take() {
            Some(c) => c,
            None => return false,
        };
        if topo.failovers.fetch_add(1, Ordering::Relaxed) + 1 > self.retry.failover_budget() {
            topo.fail(cause);
            return false;
        }

        let lost: Vec<bool> = self.gpu.devices().iter().map(|d| d.is_lost()).collect();
        for (d, &l) in lost.iter().enumerate() {
            if l && !self.lost_seen[d].swap(true, Ordering::Relaxed) {
                self.stats.devices_lost.incr();
            }
        }

        let frozen = &topo.frozen;
        let n = frozen.nodes.len();
        let placement = topo.placement();
        let mut ok: Vec<bool> = topo
            .round_ok
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect();

        // Results living in a lost device's arena are gone: pulls and
        // kernels there must replay even though they completed. A
        // *completed push* there is unrecoverable — its host-side write
        // already happened, and replaying its group could re-apply an
        // in-place update through the re-pulled data — so fail structured
        // rather than risk silent double-application.
        #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
        for i in 0..n {
            let on_lost = placement.device_of[i].is_some_and(|d| lost[d as usize]);
            if on_lost && ok[i] {
                if frozen.nodes[i].work.kind() == TaskKind::Push {
                    topo.fail(cause);
                    return false;
                }
                ok[i] = false;
            }
        }

        let replay = ok.iter().filter(|&&o| !o).count();
        if replay == 0 {
            // Can't happen (the failover-requesting node is !ok), but a
            // replay of nothing would hang the round — fail instead.
            topo.fail(cause);
            return false;
        }

        // Streaming input hazard: once the session admitted a later epoch
        // (and ran its input mutator), this epoch's pulls would replay the
        // *next* epoch's host data. Fail the epoch with the triggering
        // cause instead; the stream itself keeps serving (the session
        // re-places subsequent epochs on the survivors).
        if let Some(g) = &topo.input_guard {
            if g.gen.load(Ordering::Acquire) != g.admitted_gen {
                let replays_pull = ok.iter().enumerate().any(|(i, &o)| {
                    !o && frozen.nodes[i].work.kind() == TaskKind::Pull
                });
                if replays_pull {
                    topo.fail(cause);
                    return false;
                }
            }
        }

        let cost = self
            .gpu
            .devices()
            .first()
            .map(|d| d.cost_model())
            .unwrap_or_default();
        let refined = self.refined_costs(frozen.name());
        let new_placement = match crate::placement::failover_placement_ext(
            &**frozen,
            &placement.device_of,
            &lost,
            &cost,
            self.policy,
            refined.as_ref(),
        ) {
            Ok(p) => p,
            Err(e) => {
                // No surviving GPUs: fail with the structural error.
                drop(cause);
                topo.fail(e);
                return false;
            }
        };
        self.record_placement(&new_placement);

        // Device buffers on lost devices vanished with their arenas; a
        // replayed pull re-allocates on its new device. (Nothing to free —
        // the device is gone.)
        for i in 0..frozen.nodes.len() {
            let mut st = topo.pull_state(i).lock();
            if let Some(p) = st.ptr {
                if lost.get(p.device as usize).copied().unwrap_or(true) {
                    st.ptr = None;
                    st.resident_version = None;
                    st.device = None;
                } else if new_placement.device_of[i] != Some(p.device) {
                    // Defensive: surviving groups keep their device, but if
                    // one ever moves, release the stale buffer properly.
                    if let Ok(dev) = self.gpu.device(p.device) {
                        let _ = dev.free(p);
                    }
                    st.ptr = None;
                    st.resident_version = None;
                    st.device = None;
                }
            }
        }

        // Replay plan: fuse only among replayed nodes so no chain hangs
        // off an already-finished head.
        let active: Vec<bool> = ok.iter().map(|&o| !o).collect();
        let masked = FusionPlan::compute_masked(frozen, &new_placement, self.fusion, &active);

        // Rebuild join counters for the replay subgraph: a replayed node
        // waits only on replayed predecessors (done ones are satisfied).
        let mut join = vec![0usize; n];
        for u in 0..n {
            if !ok[u] {
                for &s in &frozen.nodes[u].succ {
                    if !ok[s] {
                        join[s] += 1;
                    }
                }
            }
        }
        for (j, v) in topo.join.iter().zip(&join) {
            j.store(*v, Ordering::Relaxed);
        }
        for a in &topo.attempts {
            a.store(0, Ordering::Relaxed);
        }
        for (b, &o) in topo.round_ok.iter().zip(&ok) {
            b.store(o, Ordering::Relaxed);
        }
        *topo.placement.write() = Arc::new(new_placement);
        *topo.fusion.write() = Arc::new(masked);
        topo.fusion_stale.store(true, Ordering::Release);
        topo.pending.store(replay, Ordering::Release);

        // Lift the skip barrier before dispatching replay work.
        topo.failover_pending.store(false, Ordering::Release);
        self.emit_run_lc(topo, LifecyclePhase::Failover, true, Some(&cause));

        let fusion = topo.fusion();
        let slot = topo.slot.load(Ordering::Relaxed);
        let mut buf = [0 as Token; RELEASE_BATCH];
        let mut k = 0;
        for i in 0..n {
            if !ok[i] && join[i] == 0 && !fusion.member[i] {
                if k == RELEASE_BATCH {
                    self.dispatch_batch(&buf);
                    k = 0;
                }
                buf[k] = pack(slot, i);
                k += 1;
            }
        }
        self.dispatch_batch(&buf[..k]);
        true
    }
}

thread_local! {
    /// The owning side of the current worker's deque, when the thread is
    /// an executor worker.
    static WORKER_DEQUE: std::cell::RefCell<Option<Arc<StealDeque<Token>>>> =
        const { std::cell::RefCell::new(None) };
}

struct Worker {
    id: usize,
    deque: Arc<StealDeque<Token>>,
    inner: Arc<ExecInner>,
    /// Lazily created per-device streams — "each worker keeps a
    /// per-thread CUDA stream" (§III-C).
    streams: Vec<Option<Stream>>,
    /// Lazily created per-device copy-lane streams: chunked transfers
    /// round-robin their chunks across these so long copies interleave
    /// with kernels on the device engine.
    copy_streams: Vec<Vec<Stream>>,
    /// xorshift state for victim selection.
    rng: u64,
}

impl Worker {
    fn new(id: usize, deque: StealDeque<Token>, inner: Arc<ExecInner>) -> Self {
        let n_gpus = inner.gpu.num_devices() as usize;
        Self {
            id,
            deque: Arc::new(deque),
            inner,
            streams: (0..n_gpus).map(|_| None).collect(),
            copy_streams: (0..n_gpus).map(|_| Vec::new()).collect(),
            rng: 0x9E3779B97F4A7C15 ^ (id as u64 + 1),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn stream(&mut self, device: u32) -> Stream {
        let slot = &mut self.streams[device as usize];
        if slot.is_none() {
            let dev = self
                .inner
                .gpu
                .device(device)
                .expect("placement produced a valid device id");
            *slot = Some(Stream::new(&dev));
        }
        slot.clone().expect("just created")
    }

    /// Copy-lane streams for `device`, created on first chunked transfer.
    fn copy_lanes(&mut self, device: u32) -> Vec<Stream> {
        let lanes = self.inner.copy_lanes;
        let slot = &mut self.copy_streams[device as usize];
        if slot.is_empty() {
            let dev = self
                .inner
                .gpu
                .device(device)
                .expect("placement produced a valid device id");
            slot.extend((0..lanes).map(|_| Stream::new(&dev)));
        }
        slot.clone()
    }

    fn run(mut self) {
        if self.inner.pin_workers {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let _ = crate::affinity::pin_current_thread(self.id % cores);
        }
        WORKER_DEQUE.with(|d| *d.borrow_mut() = Some(Arc::clone(&self.deque)));
        loop {
            // Exploit: drain the local queue.
            while let Some(token) = self.deque.pop() {
                self.execute(token);
            }
            // Explore: steal, or sleep when the system is quiet.
            match self.wait_for_task() {
                Some(token) => self.execute(token),
                None => break,
            }
        }
        WORKER_DEQUE.with(|d| *d.borrow_mut() = None);
    }

    /// Steal loop with the adaptive wake/sleep strategy. Returns `None`
    /// on shutdown.
    fn wait_for_task(&mut self) -> Option<Token> {
        let inner = Arc::clone(&self.inner);
        inner.num_thieves.fetch_add(1, Ordering::SeqCst);
        loop {
            // Bounded stealing sweep.
            let mut backoff = hf_sync::Backoff::new();
            while !backoff.is_completed() {
                if let Some(token) = self.try_steal_once() {
                    // If this was the last thief, wake a peer so one thief
                    // remains while we turn active (paper's invariant).
                    if inner.num_thieves.fetch_sub(1, Ordering::SeqCst) == 1 {
                        inner.notifier.notify_one();
                    }
                    return Some(token);
                }
                backoff.snooze();
            }

            if !inner.adaptive_sleep {
                // Ablation mode: spin forever (still honor shutdown).
                if inner.done.load(Ordering::Acquire) {
                    inner.num_thieves.fetch_sub(1, Ordering::SeqCst);
                    return None;
                }
                continue;
            }

            // Two-phase sleep: prepare, re-check, commit.
            let token = inner.notifier.prepare_wait();
            if inner.done.load(Ordering::Acquire) {
                inner.notifier.cancel_wait(token);
                inner.num_thieves.fetch_sub(1, Ordering::SeqCst);
                return None;
            }
            if self.work_visible() {
                inner.notifier.cancel_wait(token);
                continue;
            }
            // Keep one thief alive while any worker is active.
            if inner.num_actives.load(Ordering::SeqCst) > 0
                && inner.num_thieves.load(Ordering::SeqCst) == 1
            {
                inner.notifier.cancel_wait(token);
                continue;
            }
            inner.stats.sleeps.incr(self.id);
            inner.notifier.commit_wait(token);
            inner.stats.wakeups.incr(self.id);
        }
    }

    /// One randomized steal attempt across victims and the injector.
    /// Our own id maps to the injector, so every draw is a real attempt
    /// (no wasted self-steal); injector hits claim a whole batch and bank
    /// the extras in the local deque.
    ///
    /// Topology-aware preference: before the random draw, probe one
    /// victim sharing this worker's device focus (its deque most likely
    /// holds tasks placed where this worker's streams and caches are
    /// already warm). Misses fall straight through to the random sweep,
    /// so the affine pass can delay but never prevent a steal.
    fn try_steal_once(&mut self) -> Option<Token> {
        let inner = Arc::clone(&self.inner);
        let n = inner.stealers.len();
        inner.stats.steal_attempts.incr(self.id);
        let focus = inner.worker_focus[self.id].load(Ordering::Relaxed);
        if focus != u64::MAX && n > 1 {
            let start = (self.next_rand() % n as u64) as usize;
            for k in 0..n {
                let v = (start + k) % n;
                if v == self.id || inner.worker_focus[v].load(Ordering::Relaxed) != focus {
                    continue;
                }
                if let Steal::Success(token) = inner.stealers[v].steal() {
                    inner.stats.steals.incr(self.id);
                    inner.stats.steals_affine.incr(self.id);
                    return Some(token);
                }
                // One affine probe per attempt; empty or contended falls
                // back to the random draw below.
                break;
            }
        }
        let v = (self.next_rand() % n as u64) as usize;
        if v == self.id {
            let mut first = None;
            let deque = &self.deque;
            let got = inner.injector.pop_batch(STEAL_BATCH, |t| {
                if first.is_none() {
                    first = Some(t);
                } else {
                    deque.push(t);
                }
            });
            if got > 0 {
                inner.stats.steals.incr(self.id);
                return first;
            }
        } else {
            match inner.stealers[v].steal() {
                Steal::Success(token) => {
                    inner.stats.steals.incr(self.id);
                    return Some(token);
                }
                Steal::Retry | Steal::Empty => {}
            }
        }
        None
    }

    /// True if any queue plausibly holds work (used to re-check before
    /// sleeping). Lock-free: probes the injector and deque tops.
    fn work_visible(&self) -> bool {
        if !self.inner.injector.is_empty() {
            return true;
        }
        self.inner.stealers.iter().any(|s| !s.is_empty())
    }

    /// Executes a work token — the visitor dispatch of §III-C. Host tasks
    /// complete synchronously on this worker; GPU tasks are *dispatched*
    /// asynchronously to the device stream (the worker is immediately
    /// free, so one core can drive many GPUs concurrently), with a
    /// stream-ordered completion callback releasing the successors — the
    /// fully asynchronous pattern of Listing 13.
    fn execute(&mut self, token: Token) {
        let (slot, node) = unpack(token);
        let topo = self.inner.registry.resolve(slot);
        let inner = Arc::clone(&self.inner);
        inner.num_actives.fetch_add(1, Ordering::SeqCst);
        // Ensure a thief exists while we are active.
        if inner.num_thieves.load(Ordering::SeqCst) == 0 {
            inner.notifier.notify_one();
        }

        let observed = inner.observers.iter().any(|o| o.is_active());
        if observed {
            inner.emit_task_lc(
                &topo,
                LifecyclePhase::Started,
                node,
                Some(self.id as u32),
                None,
                true,
                None,
            );
            let meta = self.task_meta(&topo, node);
            for o in &inner.observers {
                o.on_task_begin(&meta);
            }
        }

        // Bodies are skipped (but the round still drains) when the run
        // failed, the caller cancelled, or a failover is pending — the
        // last keeps successors of a dead device's tasks from consuming
        // half-failed state; skipped nodes replay after the failover.
        let skip = topo.cancelled.load(Ordering::Acquire)
            || topo.cancel_requested()
            || topo.failover_pending.load(Ordering::Acquire);
        let mut dispatched_async = false;
        let mut retried = false;
        let mut ok = false;
        if !skip {
            match self.invoke(&topo, node) {
                Ok(is_async) => {
                    dispatched_async = is_async;
                    ok = true;
                }
                Err(e) => match inner.failure_action(&topo, node, &e) {
                    FailureAction::Retry(delay) => {
                        inner.stats.retries.incr();
                        topo.retries.fetch_add(1, Ordering::Relaxed);
                        inner.emit_task_lc(
                            &topo,
                            LifecyclePhase::Retried,
                            node,
                            Some(self.id as u32),
                            None,
                            false,
                            Some(&e),
                        );
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        inner.dispatch_batch(&[token]);
                        retried = true;
                    }
                    FailureAction::Failover => {
                        inner.emit_task_lc(
                            &topo,
                            LifecyclePhase::Failed,
                            node,
                            Some(self.id as u32),
                            None,
                            false,
                            Some(&e),
                        );
                        topo.request_failover(e);
                    }
                    FailureAction::Fail => {
                        inner.emit_task_lc(
                            &topo,
                            LifecyclePhase::Failed,
                            node,
                            Some(self.id as u32),
                            None,
                            false,
                            Some(&e),
                        );
                        topo.fail(e);
                    }
                },
            }
        }
        inner.stats.tasks_executed.incr(self.id);

        if observed {
            let meta = self.task_meta(&topo, node);
            for o in &inner.observers {
                o.on_task_end(&meta);
            }
        }

        if !dispatched_async && !retried {
            // Finish this node and any fused chain hanging off it (chain
            // members are never scheduled individually, so a cancelled or
            // failed head must finish them here).
            let fusion = topo.fusion();
            let mut node = node;
            loop {
                let next = fusion.next[node];
                inner.emit_task_lc(
                    &topo,
                    LifecyclePhase::Finished,
                    node,
                    Some(self.id as u32),
                    None,
                    ok,
                    None,
                );
                inner.finish_node(&topo, node, ok);
                match next {
                    Some(nxt) => node = nxt as usize,
                    None => break,
                }
            }
        }
        inner.num_actives.fetch_sub(1, Ordering::SeqCst);
    }

    /// Builds the observer metadata for a work token.
    fn task_meta<'a>(&self, topo: &'a Arc<Topology>, node: usize) -> TaskMeta<'a> {
        let n = &topo.frozen.nodes[node];
        TaskMeta {
            worker: self.id,
            name: &n.name,
            kind: n.work.kind(),
            device: topo.placement().device_of[node],
            graph: &topo.frozen.name,
        }
    }

    /// Runs one task body. Returns `Ok(true)` when completion was handed
    /// to a device stream (asynchronous GPU task), `Ok(false)` when the
    /// task finished synchronously.
    fn invoke(&mut self, topo: &Arc<Topology>, id: usize) -> Result<bool, HfError> {
        let node = &topo.frozen.nodes[id];
        match &node.work {
            Work::Empty => Err(HfError::EmptyTask {
                task: node.name.clone(),
            }),
            Work::Host(f) => {
                let f = Arc::clone(f);
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    (f.lock())()
                }));
                res.map(|_| false).map_err(|_| HfError::TaskPanicked {
                    task: node.name.clone(),
                })
            }
            Work::Pull { .. } | Work::Push { .. } | Work::Kernel { .. } => {
                self.dispatch_gpu_chain(topo, id)?;
                Ok(true)
            }
        }
    }

    /// Dispatches a GPU task and its fused chain (§III-C "task fusing"):
    /// all ops are prepared first (any error aborts before a single
    /// enqueue), then submitted to the per-worker stream back-to-back
    /// with one completion callback finishing every chain node in order.
    ///
    /// Fault tolerance: each op checks its device's fault injector and
    /// the cancellation flags before doing anything, and records the
    /// first failure in a shared [`ChainState`]. Faults fire *before* an
    /// op's effect, so the completion callback can finish the completed
    /// prefix normally and route just the failed suffix through the retry
    /// policy (retry re-dispatches the failed member, which re-walks the
    /// chain from there).
    fn dispatch_gpu_chain(&mut self, topo: &Arc<Topology>, head: usize) -> Result<(), HfError> {
        let placement = topo.placement();
        let fusion = topo.fusion();
        let dev_id = placement.device_of[head].expect("GPU task placed");
        let device = self.inner.gpu.device(dev_id)?;
        let _ctx = ScopedDeviceContext::new(dev_id);
        // Publish this worker's device focus for topology-aware stealing:
        // peers whose last GPU chain hit the same device likely queue
        // work warm on it.
        self.inner.worker_focus[self.id].store(dev_id as u64, Ordering::Relaxed);

        let state = Arc::new(ChainState::default());
        let mut chain = vec![head];
        let mut ops = vec![self.prepare_op(topo, head, &device, &state)?];
        let mut cur = head;
        while let Some(nxt) = fusion.next[cur] {
            let nxt = nxt as usize;
            ops.push(self.prepare_op(topo, nxt, &device, &state)?);
            chain.push(nxt);
            cur = nxt;
        }
        if chain.len() > 1 {
            self.inner.stats.fused.add(self.id, (chain.len() - 1) as u64);
            // Members never pass through `execute`; account for them.
            self.inner
                .stats
                .tasks_executed
                .add(self.id, (chain.len() - 1) as u64);
        }

        let stream = self.stream(dev_id);
        // Dispatched events fire before the first op is enqueued: the
        // engine may complete (and emit Finished for) the chain the
        // moment an op lands on the stream.
        if self.inner.lc_active() {
            for &nid in &chain {
                self.inner.emit_task_lc(
                    topo,
                    LifecyclePhase::Dispatched,
                    nid,
                    Some(self.id as u32),
                    Some(head as u32),
                    true,
                    None,
                );
            }
        }
        // Label ops with task name/kind only when a device trace sink is
        // installed: the label costs an Arc<str> per op, and the engine
        // drops it unused when tracing is off.
        let tracing = self.inner.gpu.tracing_enabled();
        for (&nid, op) in chain.iter().zip(ops) {
            let label = if tracing {
                let n = &topo.frozen.nodes[nid];
                Some(hf_gpu::OpLabel {
                    name: Arc::from(n.name.as_str()),
                    tag: crate::observer::kind_to_tag(n.work.kind()),
                    epoch: topo.epoch,
                })
            } else {
                None
            };
            match op {
                PreparedOp::Single(f) => stream.exec_labeled(label, f),
                PreparedOp::ChunkedH2d { node, ptr, source } => {
                    self.enqueue_chunked_h2d(
                        topo, node, ptr, source, &device, &stream, &state, label,
                    );
                }
                PreparedOp::ChunkedD2h { node, pull, ptr, sink } => {
                    self.enqueue_chunked_d2h(
                        topo, node, pull, ptr, sink, &device, &stream, &state, label,
                    );
                }
            }
        }
        let inner = Arc::clone(&self.inner);
        let topo2 = Arc::clone(topo);
        let state2 = Arc::clone(&state);
        stream.host_fn(move || {
            let err = state2.error.lock().clone();
            let done = state2.done.load(Ordering::Acquire);
            match err {
                None => {
                    // `done < len` without an error means ops were skipped
                    // by cancellation — finish unsuccessfully so a
                    // failover (if one is pending) replays them.
                    let all_ok = done == chain.len();
                    for &node in &chain {
                        inner.emit_task_lc(
                            &topo2,
                            LifecyclePhase::Finished,
                            node,
                            None,
                            Some(head as u32),
                            all_ok,
                            None,
                        );
                        inner.finish_node(&topo2, node, all_ok);
                    }
                }
                Some(e) => {
                    for &node in &chain[..done] {
                        inner.emit_task_lc(
                            &topo2,
                            LifecyclePhase::Finished,
                            node,
                            None,
                            Some(head as u32),
                            true,
                            None,
                        );
                        inner.finish_node(&topo2, node, true);
                    }
                    inner.chain_failure(&topo2, &chain[done..], e);
                }
            }
        });
        Ok(())
    }

    /// Builds the device op for one GPU node (without enqueueing it).
    /// Pull tasks also (re)use or (re)allocate their device buffer here;
    /// transfers larger than the chunk threshold come back as chunked
    /// descriptors that `dispatch_gpu_chain` pipelines across copy lanes.
    fn prepare_op(
        &mut self,
        topo: &Arc<Topology>,
        id: usize,
        device: &Device,
        state: &Arc<ChainState>,
    ) -> Result<PreparedOp, HfError> {
        let frozen: &FrozenGraph = &topo.frozen;
        let node = &frozen.nodes[id];
        let dev_id = device.id();
        let wrap = |name: &str, e: GpuError| HfError::TaskFailed {
            task: name.to_string(),
            source: e,
        };
        match &node.work {
            Work::Pull { source } => {
                // (Re)use or (re)allocate the device buffer for the
                // source's *current* size — stateful. A same-device buffer
                // whose reserved capacity still fits is kept: a changed
                // length only adjusts `len` (and drops residency); a
                // changed device or outgrown capacity reallocates.
                let bytes = source.byte_len();
                let ptr = {
                    let mut st = topo.pull_state(id).lock();
                    let reuse = matches!((&st.ptr, &st.device), (Some(p), Some(d))
                        if d.same_device(device) && bytes as u64 <= p.capacity);
                    if reuse {
                        let mut p = st.ptr.expect("reuse checked");
                        if p.len as usize != bytes {
                            p.len = bytes as u64;
                            st.ptr = Some(p);
                            st.resident_version = None;
                        }
                        p
                    } else {
                        if let (Some(p), Some(d)) = (st.ptr.take(), st.device.take()) {
                            // Best-effort: a dead or lost device rejects
                            // the free; its arena died with it.
                            let _ = d.free(p);
                        }
                        st.resident_version = None;
                        let p = device.alloc(bytes).map_err(|e| wrap(&node.name, e))?;
                        st.ptr = Some(p);
                        st.device = Some(device.clone());
                        p
                    }
                };
                if bytes > self.inner.copy_chunk_threshold {
                    return Ok(PreparedOp::ChunkedH2d {
                        node: id,
                        ptr,
                        source: Arc::clone(source),
                    });
                }
                let src = Arc::clone(source);
                let topo2 = Arc::clone(topo);
                let state2 = Arc::clone(state);
                let dev = device.clone();
                let inner = Arc::clone(&self.inner);
                let task = node.name.clone();
                Ok(PreparedOp::Single(Box::new(move |view, cost| {
                    if state2.skip(&topo2) {
                        return Ok(OpReport::default());
                    }
                    // Transfer elision: the device buffer already holds
                    // exactly this host version — skip the copy entirely
                    // (no fault draw either: no transfer happens).
                    let host_ver = src.version();
                    if host_ver.is_some() && {
                        let st = topo2.pull_state(id).lock();
                        st.resident_version == host_ver && st.ptr == Some(ptr)
                    } {
                        inner.stats.transfers_elided.incr();
                        state2.done.fetch_add(1, Ordering::Release);
                        return Ok(OpReport::default());
                    }
                    if let Err(e) = dev.fault_check(FaultSite::H2d) {
                        state2.fail(HfError::TaskFailed {
                            task: task.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                    let (data, ver) = src.fetch_bytes_versioned();
                    let n = data.len();
                    if let Err(e) = view.copy_in(ptr, &data) {
                        state2.fail(HfError::TaskFailed {
                            task: task.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                    // Publish residency. `copy_in` is all-or-nothing, so a
                    // failure above left the previous residency intact; a
                    // partial fill (host shrank since prepare) stays
                    // invalid.
                    {
                        let mut st = topo2.pull_state(id).lock();
                        if st.ptr == Some(ptr) {
                            st.resident_version =
                                if n == ptr.len as usize { ver } else { None };
                        }
                    }
                    inner.stats.bytes_h2d.add(n as u64);
                    // Locality feedback: the modeled duration of the copy
                    // that actually happened (current bytes, not the
                    // placement-time size estimate).
                    let dur = cost.h2d(n);
                    inner.observe_cost(&topo2.frozen.name, &task, dur.as_nanos() as f64);
                    state2.done.fetch_add(1, Ordering::Release);
                    Ok(OpReport {
                        duration: dur,
                        h2d_bytes: n as u64,
                        ..Default::default()
                    })
                })))
            }
            Work::Push { source_pull, sink } => {
                let pull_id = *source_pull;
                let pull_node = &frozen.nodes[pull_id];
                let ptr = topo.pull_state(pull_id).lock().ptr.ok_or_else(|| {
                    HfError::PushBeforePull {
                        push: node.name.clone(),
                        pull: pull_node.name.clone(),
                    }
                })?;
                debug_assert_eq!(dev_id, ptr.device);
                if ptr.len as usize > self.inner.copy_chunk_threshold {
                    return Ok(PreparedOp::ChunkedD2h {
                        node: id,
                        pull: pull_id,
                        ptr,
                        sink: Arc::clone(sink),
                    });
                }
                let sink = Arc::clone(sink);
                // Revalidation below is only sound for an in-place round
                // trip (push back into the pull's own storage): versions
                // are per-buffer counters, so a foreign sink's version
                // must never validate the source's residency.
                let same_buffer = matches!(&pull_node.work, Work::Pull { source }
                    if source.source_id().is_some()
                        && source.source_id() == sink.sink_id());
                let topo2 = Arc::clone(topo);
                let state2 = Arc::clone(state);
                let dev = device.clone();
                let inner = Arc::clone(&self.inner);
                let task = node.name.clone();
                Ok(PreparedOp::Single(Box::new(move |view, cost| {
                    if state2.skip(&topo2) {
                        return Ok(OpReport::default());
                    }
                    if let Err(e) = dev.fault_check(FaultSite::D2h) {
                        state2.fail(HfError::TaskFailed {
                            task: task.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                    let bytes = match view.bytes(ptr) {
                        Ok(b) => b,
                        Err(e) => {
                            state2.fail(HfError::TaskFailed {
                                task: task.clone(),
                                source: e.clone(),
                            });
                            return Err(e);
                        }
                    };
                    let n = bytes.len();
                    let ver = sink.store_bytes_versioned(bytes);
                    // Push revalidation: the host now mirrors the device
                    // buffer exactly, so a subsequent pull of unchanged
                    // host data may elide its copy.
                    if ver.is_some() && same_buffer {
                        let mut st = topo2.pull_state(pull_id).lock();
                        if st.ptr == Some(ptr) {
                            st.resident_version = ver;
                        }
                    }
                    inner.stats.bytes_d2h.add(n as u64);
                    let dur = cost.d2h(n);
                    inner.observe_cost(&topo2.frozen.name, &task, dur.as_nanos() as f64);
                    state2.done.fetch_add(1, Ordering::Release);
                    Ok(OpReport {
                        duration: dur,
                        d2h_bytes: n as u64,
                        ..Default::default()
                    })
                })))
            }
            Work::Kernel { func, sources } => {
                let mut ptrs = Vec::with_capacity(sources.len());
                for &s in sources {
                    let pull_node = &frozen.nodes[s];
                    let p = topo.pull_state(s).lock().ptr.ok_or_else(|| {
                        HfError::SourceNotPulled {
                            kernel: node.name.clone(),
                            pull: pull_node.name.clone(),
                        }
                    })?;
                    debug_assert_eq!(
                        p.device, dev_id,
                        "placement must co-locate kernels with their pulls"
                    );
                    ptrs.push(p);
                }
                let cfg: LaunchConfig = node.cfg;
                let work_units = if node.work_units > 0.0 {
                    node.work_units
                } else {
                    cfg.total_threads() as f64
                };
                let func = Arc::clone(func);
                let src_ids = sources.clone();
                let topo2 = Arc::clone(topo);
                let state2 = Arc::clone(state);
                let dev = device.clone();
                let inner = Arc::clone(&self.inner);
                let task_name = node.name.clone();
                Ok(PreparedOp::Single(Box::new(move |view, cost| {
                    if state2.skip(&topo2) {
                        return Ok(OpReport::default());
                    }
                    if let Err(e) = dev.fault_check(FaultSite::Kernel) {
                        state2.fail(HfError::TaskFailed {
                            task: task_name.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                    // Kernels take mutable views of their sources with no
                    // declared access modes, so assume every source buffer
                    // is mutated: its device bytes no longer match any
                    // host version. (A faulted kernel above never ran, so
                    // residency survives the retry.)
                    for &sid in &src_ids {
                        topo2.pull_state(sid).lock().resident_version = None;
                    }
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut args = KernelArgs::new(view, &ptrs);
                        func(&cfg, &mut args);
                    }));
                    if res.is_err() {
                        state2.fail(HfError::TaskPanicked {
                            task: task_name.clone(),
                        });
                        return Ok(OpReport::default());
                    }
                    let dur = cost.kernel(work_units);
                    inner.observe_cost(&topo2.frozen.name, &task_name, dur.as_nanos() as f64);
                    state2.done.fetch_add(1, Ordering::Release);
                    Ok(OpReport {
                        duration: dur,
                        kernels: 1,
                        ..Default::default()
                    })
                })))
            }
            Work::Empty | Work::Host(_) => unreachable!("not a GPU task"),
        }
    }

    /// Enqueues a chunked H2D pull (pipelined copy): a fetch op on the
    /// worker's main stream snapshots the host bytes (or elides the whole
    /// transfer via residency), chunk copies fan out round-robin across
    /// the copy-lane streams behind an event, and a join op back on the
    /// main stream waits for every chunk, publishes residency, and counts
    /// the task done. The device engine round-robins runnable stream
    /// heads, so chunks interleave with other streams' kernels instead of
    /// occupying the device end-to-end.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_chunked_h2d(
        &mut self,
        topo: &Arc<Topology>,
        node_id: usize,
        ptr: DevicePtr,
        source: Arc<dyn HostSource>,
        device: &Device,
        stream: &Stream,
        state: &Arc<ChainState>,
        label: Option<hf_gpu::OpLabel>,
    ) {
        let chunk = self.inner.copy_chunk_threshold;
        let lanes = self.copy_lanes(device.id());
        let total = ptr.len as usize;
        let n_chunks = total.div_ceil(chunk).max(1);
        let xfer = Arc::new(ChunkXfer::default());
        let task = topo.frozen.nodes[node_id].name.clone();

        {
            let topo2 = Arc::clone(topo);
            let state2 = Arc::clone(state);
            let xfer2 = Arc::clone(&xfer);
            let src = Arc::clone(&source);
            let task = task.clone();
            stream.exec(Box::new(move |_view, _cost| {
                if state2.skip(&topo2) {
                    xfer2.aborted.store(true, Ordering::Release);
                    return Ok(OpReport::default());
                }
                let host_ver = src.version();
                {
                    let mut st = topo2.pull_state(node_id).lock();
                    if host_ver.is_some()
                        && st.resident_version == host_ver
                        && st.ptr == Some(ptr)
                    {
                        xfer2.elided.store(true, Ordering::Release);
                        return Ok(OpReport::default());
                    }
                    // Chunks are about to partially overwrite the buffer;
                    // a mid-copy fault must not leave residency valid.
                    st.resident_version = None;
                }
                let (data, ver) = src.fetch_bytes_versioned();
                if data.len() > ptr.len as usize {
                    let e = GpuError::SizeMismatch {
                        dst: ptr.len as usize,
                        src: data.len(),
                    };
                    xfer2.aborted.store(true, Ordering::Release);
                    state2.fail(HfError::TaskFailed {
                        task: task.clone(),
                        source: e.clone(),
                    });
                    return Err(e);
                }
                *xfer2.version.lock() = ver;
                *xfer2.staging.lock() = data;
                Ok(OpReport::default())
            }));
        }
        let fetched = Event::new();
        stream.record_event(&fetched);

        let mut chunk_events = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let lane = &lanes[i % lanes.len()];
            lane.wait_event(&fetched);
            let off = i * chunk;
            let len = chunk.min(total - off);
            let state2 = Arc::clone(state);
            let topo2 = Arc::clone(topo);
            let xfer2 = Arc::clone(&xfer);
            let dev = device.clone();
            let task = task.clone();
            let body: hf_gpu::stream::ExecFn = Box::new(move |view, cost| {
                if state2.skip(&topo2) || xfer2.inert() {
                    return Ok(OpReport::default());
                }
                if let Err(e) = dev.fault_check(FaultSite::H2d) {
                    xfer2.aborted.store(true, Ordering::Release);
                    state2.fail(HfError::TaskFailed {
                        task: task.clone(),
                        source: e.clone(),
                    });
                    return Err(e);
                }
                let staging = xfer2.staging.lock();
                // The host may have shrunk between sizing and fetch; copy
                // only the staged part of this chunk's range.
                let end = (off + len).min(staging.len());
                let n = end.saturating_sub(off);
                if n > 0 {
                    let sub = DevicePtr {
                        device: ptr.device,
                        offset: ptr.offset + off as u64,
                        len: n as u64,
                        capacity: n as u64,
                    };
                    if let Err(e) = view.copy_in(sub, &staging[off..end]) {
                        xfer2.aborted.store(true, Ordering::Release);
                        state2.fail(HfError::TaskFailed {
                            task: task.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                }
                Ok(OpReport {
                    duration: cost.h2d(n),
                    h2d_bytes: n as u64,
                    ..Default::default()
                })
            });
            match &label {
                Some(l) => lane.exec_labeled(
                    Some(hf_gpu::OpLabel {
                        name: Arc::from(format!("{}#c{i}", l.name)),
                        tag: l.tag,
                        epoch: l.epoch,
                    }),
                    body,
                ),
                None => lane.exec(body),
            }
            let done = Event::new();
            lane.record_event(&done);
            chunk_events.push(done);
        }
        for ev in &chunk_events {
            stream.wait_event(ev);
        }

        let topo2 = Arc::clone(topo);
        let state2 = Arc::clone(state);
        let xfer2 = Arc::clone(&xfer);
        let inner = Arc::clone(&self.inner);
        stream.exec_labeled(
            label,
            Box::new(move |_view, cost| {
                if state2.skip(&topo2) || xfer2.aborted.load(Ordering::Acquire) {
                    return Ok(OpReport::default());
                }
                if xfer2.elided.load(Ordering::Acquire) {
                    inner.stats.transfers_elided.incr();
                    state2.done.fetch_add(1, Ordering::Release);
                    return Ok(OpReport::default());
                }
                let n = xfer2.staging.lock().len();
                {
                    let mut st = topo2.pull_state(node_id).lock();
                    if st.ptr == Some(ptr) {
                        st.resident_version = if n == ptr.len as usize {
                            *xfer2.version.lock()
                        } else {
                            None
                        };
                    }
                }
                inner.stats.bytes_h2d.add(n as u64);
                // Chunk durations were reported per lane; feed the whole
                // transfer's modeled cost back as this task's estimate.
                inner.observe_cost(&topo2.frozen.name, &task, cost.h2d(n).as_nanos() as f64);
                state2.done.fetch_add(1, Ordering::Release);
                Ok(OpReport::default())
            }),
        );
    }

    /// Enqueues a chunked D2H push: chunk reads fan out across the
    /// copy-lane streams behind a readiness event, and a join op on the
    /// main stream stores the assembled bytes into the host sink and
    /// revalidates the source pull's residency.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_chunked_d2h(
        &mut self,
        topo: &Arc<Topology>,
        node_id: usize,
        pull_id: usize,
        ptr: DevicePtr,
        sink: Arc<dyn HostSink>,
        device: &Device,
        stream: &Stream,
        state: &Arc<ChainState>,
        label: Option<hf_gpu::OpLabel>,
    ) {
        let chunk = self.inner.copy_chunk_threshold;
        let lanes = self.copy_lanes(device.id());
        let total = ptr.len as usize;
        let n_chunks = total.div_ceil(chunk).max(1);
        let xfer = Arc::new(ChunkXfer::default());
        *xfer.staging.lock() = vec![0u8; total];
        let task = topo.frozen.nodes[node_id].name.clone();

        // The chunk lanes must order after everything already enqueued on
        // the main stream (the chain prefix this push depends on).
        let ready = Event::new();
        stream.record_event(&ready);

        let mut chunk_events = Vec::with_capacity(n_chunks);
        for i in 0..n_chunks {
            let lane = &lanes[i % lanes.len()];
            lane.wait_event(&ready);
            let off = i * chunk;
            let len = chunk.min(total - off);
            let state2 = Arc::clone(state);
            let topo2 = Arc::clone(topo);
            let xfer2 = Arc::clone(&xfer);
            let dev = device.clone();
            let task = task.clone();
            let body: hf_gpu::stream::ExecFn = Box::new(move |view, cost| {
                if state2.skip(&topo2) || xfer2.inert() {
                    return Ok(OpReport::default());
                }
                if let Err(e) = dev.fault_check(FaultSite::D2h) {
                    xfer2.aborted.store(true, Ordering::Release);
                    state2.fail(HfError::TaskFailed {
                        task: task.clone(),
                        source: e.clone(),
                    });
                    return Err(e);
                }
                let sub = DevicePtr {
                    device: ptr.device,
                    offset: ptr.offset + off as u64,
                    len: len as u64,
                    capacity: len as u64,
                };
                let bytes = match view.bytes(sub) {
                    Ok(b) => b,
                    Err(e) => {
                        xfer2.aborted.store(true, Ordering::Release);
                        state2.fail(HfError::TaskFailed {
                            task: task.clone(),
                            source: e.clone(),
                        });
                        return Err(e);
                    }
                };
                xfer2.staging.lock()[off..off + len].copy_from_slice(bytes);
                Ok(OpReport {
                    duration: cost.d2h(len),
                    d2h_bytes: len as u64,
                    ..Default::default()
                })
            });
            match &label {
                Some(l) => lane.exec_labeled(
                    Some(hf_gpu::OpLabel {
                        name: Arc::from(format!("{}#c{i}", l.name)),
                        tag: l.tag,
                        epoch: l.epoch,
                    }),
                    body,
                ),
                None => lane.exec(body),
            }
            let done = Event::new();
            lane.record_event(&done);
            chunk_events.push(done);
        }
        for ev in &chunk_events {
            stream.wait_event(ev);
        }

        let topo2 = Arc::clone(topo);
        let state2 = Arc::clone(state);
        let xfer2 = Arc::clone(&xfer);
        let inner = Arc::clone(&self.inner);
        // Same in-place-round-trip condition as the single-op path.
        let same_buffer = matches!(&topo.frozen.nodes[pull_id].work, Work::Pull { source }
            if source.source_id().is_some() && source.source_id() == sink.sink_id());
        stream.exec_labeled(
            label,
            Box::new(move |_view, cost| {
                if state2.skip(&topo2) || xfer2.inert() {
                    return Ok(OpReport::default());
                }
                let staging = std::mem::take(&mut *xfer2.staging.lock());
                let ver = sink.store_bytes_versioned(&staging);
                // Push revalidation, as in the single-op path.
                if ver.is_some() && same_buffer {
                    let mut st = topo2.pull_state(pull_id).lock();
                    if st.ptr == Some(ptr) {
                        st.resident_version = ver;
                    }
                }
                inner.stats.bytes_d2h.add(staging.len() as u64);
                inner.observe_cost(
                    &topo2.frozen.name,
                    &task,
                    cost.d2h(staging.len()).as_nanos() as f64,
                );
                state2.done.fetch_add(1, Ordering::Release);
                Ok(OpReport::default())
            }),
        );
    }
}

/// What [`Worker::prepare_op`] produced for one chain node.
enum PreparedOp {
    /// One stream op, enqueued on the worker's main per-device stream.
    Single(hf_gpu::stream::ExecFn),
    /// A pull whose transfer exceeds the chunk threshold: pipelined as
    /// fetch + chunk fan-out + join (see `enqueue_chunked_h2d`).
    ChunkedH2d {
        node: usize,
        ptr: DevicePtr,
        source: Arc<dyn HostSource>,
    },
    /// A push whose transfer exceeds the chunk threshold.
    ChunkedD2h {
        node: usize,
        pull: usize,
        ptr: DevicePtr,
        sink: Arc<dyn HostSink>,
    },
}

/// Shared state of one chunked (pipelined) transfer.
#[derive(Default)]
struct ChunkXfer {
    /// Host staging buffer: filled by the fetch op (H2D) or assembled by
    /// the chunk reads (D2H).
    staging: Mutex<Vec<u8>>,
    /// Host version describing the staged bytes (H2D only).
    version: Mutex<Option<u64>>,
    /// The whole transfer was elided via residency; chunks no-op.
    elided: AtomicBool,
    /// A fetch or chunk op failed (or the run was cancelled); remaining
    /// chunk ops and the join no-op.
    aborted: AtomicBool,
}

impl ChunkXfer {
    fn inert(&self) -> bool {
        self.elided.load(Ordering::Acquire) || self.aborted.load(Ordering::Acquire)
    }
}

/// Shared failure/progress state of one dispatched GPU chain: how many
/// ops completed (the chain prefix) and the first error, recorded by the
/// op closures on the device engine thread and consumed by the stream's
/// completion callback.
#[derive(Default)]
struct ChainState {
    done: AtomicUsize,
    error: Mutex<Option<HfError>>,
}

impl ChainState {
    /// Records the first failure; later ops in the chain then skip.
    fn fail(&self, e: HfError) {
        let mut g = self.error.lock();
        if g.is_none() {
            *g = Some(e);
        }
    }

    /// True when this op should do nothing: an earlier chain op failed,
    /// the run already failed, or the caller cancelled — cooperative
    /// cancellation propagated into ops already enqueued on the stream.
    fn skip(&self, topo: &Topology) -> bool {
        self.error.lock().is_some()
            || topo.cancelled.load(Ordering::Acquire)
            || topo.cancel_requested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn token_roundtrip() {
        let t = pack(7, 123);
        assert_eq!(unpack(t), (7, 123));
        let t = pack(u32::MAX - 1, u32::MAX as usize);
        assert_eq!(unpack(t), (u32::MAX - 1, u32::MAX as usize));
    }

    #[test]
    fn registry_locate_covers_segments() {
        // First ids of the first three segments, plus their last ids.
        assert_eq!(locate(0), (0, 0, 64));
        assert_eq!(locate(63), (0, 63, 64));
        assert_eq!(locate(64), (1, 0, 128));
        assert_eq!(locate(191), (1, 127, 128));
        assert_eq!(locate(192), (2, 0, 256));
    }

    #[test]
    fn empty_graph_completes_immediately() {
        let ex = Executor::new(2, 1);
        let g = Heteroflow::new("empty");
        assert!(ex.run(&g).wait().is_ok());
    }

    #[test]
    fn host_only_chain_runs_in_order() {
        let ex = Executor::new(4, 0);
        let g = Heteroflow::new("chain");
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut prev: Option<crate::task::HostTask> = None;
        for i in 0..10 {
            let log = Arc::clone(&log);
            let t = g.host(&format!("t{i}"), move || log.lock().push(i));
            if let Some(p) = &prev {
                p.precede(&t);
            }
            prev = Some(t);
        }
        ex.run(&g).wait().unwrap();
        assert_eq!(&*log.lock(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_respects_dependencies() {
        let ex = Executor::new(4, 0);
        let g = Heteroflow::new("diamond");
        let counter = Arc::new(AtomicUsize::new(0));
        let snap = Arc::new(Mutex::new((0usize, 0usize)));
        let (c1, c2, c3) = (Arc::clone(&counter), Arc::clone(&counter), Arc::clone(&counter));
        let s1 = Arc::clone(&snap);
        let a = g.host("a", move || {
            c1.fetch_add(1, Ordering::SeqCst);
        });
        let b = g.host("b", {
            let c = Arc::clone(&counter);
            move || {
                c.fetch_add(1, Ordering::SeqCst);
            }
        });
        let c = g.host("c", move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let d = g.host("d", move || {
            let v = c3.load(Ordering::SeqCst);
            *s1.lock() = (v, 3);
        });
        a.precede(&b).precede(&c);
        d.succeed(&b).succeed(&c);
        ex.run(&g).wait().unwrap();
        assert_eq!(*snap.lock(), (3, 3), "d saw all three predecessors");
    }

    #[test]
    fn run_n_repeats() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("rep");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ex.run_n(&g, 100).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_n_zero_is_noop() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("zero");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ex.run_n(&g, 0).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("until");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let c2 = Arc::clone(&counter);
        ex.run_until(&g, move || c2.load(Ordering::SeqCst) >= 7)
            .wait()
            .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn panicking_host_task_reports_error() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("boom");
        g.host("boom", || panic!("intentional"));
        let res = ex.run(&g).wait();
        assert_eq!(
            res,
            Err(HfError::TaskPanicked {
                task: "boom".into()
            })
        );
        // Executor still works afterwards.
        let g2 = Heteroflow::new("ok");
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        g2.host("fine", move || {
            r.store(1, Ordering::SeqCst);
        });
        ex.run(&g2).wait().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_runs_of_same_graph_queue_up() {
        let ex = Executor::new(4, 0);
        let g = Heteroflow::new("queued");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let futs: Vec<_> = (0..8).map(|_| ex.run(&g)).collect();
        for f in futs {
            f.wait().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn wait_for_all_drains_everything() {
        let ex = Executor::new(4, 0);
        let counter = Arc::new(AtomicUsize::new(0));
        let graphs: Vec<Heteroflow> = (0..5)
            .map(|i| {
                let g = Heteroflow::new(&format!("g{i}"));
                let c = Arc::clone(&counter);
                g.host("inc", move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
                g
            })
            .collect();
        for g in &graphs {
            ex.run_n(g, 3);
        }
        ex.wait_for_all();
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn wide_fanout_exercises_stealing() {
        let ex = Executor::new(4, 0);
        let g = Heteroflow::new("fan");
        let counter = Arc::new(AtomicUsize::new(0));
        let root = g.host("root", || {});
        for i in 0..200 {
            let c = Arc::clone(&counter);
            let t = g.host(&format!("leaf{i}"), move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            root.precede(&t);
        }
        ex.run(&g).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert!(ex.stats().tasks_executed.sum() >= 201);
        // 200 successors released at once must have been sprayed across
        // the injector in batched pushes, not item-by-item.
        assert!(ex.stats().injector_batches.sum() >= 1);
        assert!(ex.stats().notify_coalesced.sum() >= 1);
    }

    #[test]
    fn placeholder_execution_is_an_error() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("ph");
        g.placeholder("nothing");
        assert!(matches!(
            ex.run(&g).wait(),
            Err(HfError::EmptyTask { .. })
        ));
    }

    #[test]
    fn gpu_graph_without_gpus_errors() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("gpu");
        let x: HostVec<i32> = HostVec::from_vec(vec![1, 2, 3]);
        g.pull("px", &x);
        assert!(matches!(ex.run(&g).wait(), Err(HfError::NoGpus { .. })));
    }

    #[test]
    fn non_adaptive_mode_still_works() {
        let ex = Executor::builder(3, 0).adaptive_sleep(false).build();
        let g = Heteroflow::new("spin");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ex.run_n(&g, 10).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn unchanged_graph_reuses_cached_placement() {
        let ex = Executor::new(2, 1);
        let g = Heteroflow::new("cached");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        p.precede(&k);
        k.precede(&s);

        for _ in 0..10 {
            ex.run(&g).wait().unwrap();
        }
        // Exactly one freeze + placement for the unchanged graph.
        assert_eq!(ex.stats().topo_cache_misses.sum(), 1);
        assert_eq!(ex.stats().topo_cache_hits.sum(), 9);

        // Mutating the graph invalidates the cache.
        g.host("extra", || {});
        ex.run(&g).wait().unwrap();
        assert_eq!(ex.stats().topo_cache_misses.sum(), 2);
        assert_eq!(ex.stats().topo_cache_hits.sum(), 9);
        // And the new epoch caches again.
        ex.run(&g).wait().unwrap();
        assert_eq!(ex.stats().topo_cache_misses.sum(), 2);
        assert_eq!(ex.stats().topo_cache_hits.sum(), 10);
    }

    #[test]
    fn run_n_of_unchanged_graph_is_one_placement() {
        let ex = Executor::new(2, 0);
        let g = Heteroflow::new("repeat");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ex.run_n(&g, 50).wait().unwrap();
        ex.run_n(&g, 50).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(ex.stats().rounds.sum(), 100);
        // Two submissions, one graph version: one miss, one hit.
        assert_eq!(ex.stats().topo_cache_misses.sum(), 1);
        assert_eq!(ex.stats().topo_cache_hits.sum(), 1);
    }

    /// pull→kernel(double)→push lane over `data`; expect every element
    /// doubled after a successful run.
    fn gpu_lane(g: &Heteroflow, name: &str, data: &HostVec<i32>) {
        let p = g.pull(&format!("{name}_pull"), data);
        let k = g.kernel(&format!("{name}_k"), &[&p], |cfg, args| {
            let xs = args.slice_mut::<i32>(0).unwrap();
            for i in cfg.threads() {
                if i < xs.len() {
                    xs[i] *= 2;
                }
            }
        });
        k.block_x(64);
        let s = g.push(&format!("{name}_push"), &p, data);
        p.precede(&k);
        k.precede(&s);
    }

    #[test]
    fn injected_fault_retries_to_success() {
        let ex = Executor::builder(2, 1)
            .retry_policy(RetryPolicy::new(3))
            .build();
        ex.gpu_runtime().set_fault_plan(Some(
            hf_gpu::FaultPlan::seeded(42)
                .fail(FaultSite::Kernel, 1.0)
                .max_faults(1),
        ));
        let g = Heteroflow::new("retry");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
        gpu_lane(&g, "lane", &x);
        ex.run(&g).wait().unwrap();
        assert!(x.read().iter().all(|&v| v == 2));
        let snap = ex.stats().snapshot();
        assert!(snap.retries >= 1, "retries: {}", snap.retries);
        assert!(snap.faults_injected >= 1);
    }

    #[test]
    fn exhausted_retries_fail_with_structured_error() {
        let ex = Executor::builder(2, 1)
            .retry_policy(RetryPolicy::new(2))
            .build();
        // Every h2d copy faults, forever: two attempts then a hard fail.
        ex.gpu_runtime()
            .set_fault_plan(Some(hf_gpu::FaultPlan::seeded(7).fail(FaultSite::H2d, 1.0)));
        let g = Heteroflow::new("exhaust");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 16]);
        g.pull("p", &x);
        let err = ex.run(&g).wait().unwrap_err();
        assert_eq!(err.task(), Some("p"));
        assert!(matches!(
            err.gpu_cause(),
            Some(GpuError::FaultInjected { .. })
        ));
        assert!(ex.stats().snapshot().retries >= 1);
    }

    #[test]
    fn device_loss_fails_over_to_survivor() {
        let ex = Executor::new(2, 2);
        // Device 0 dies at its first op; the lane placed there must be
        // re-placed onto device 1 and replayed.
        ex.gpu_runtime()
            .set_fault_plan(Some(hf_gpu::FaultPlan::seeded(1).lose_device(0, 0)));
        let g = Heteroflow::new("failover");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
        let y: HostVec<i32> = HostVec::from_vec(vec![3; 64]);
        gpu_lane(&g, "lx", &x);
        gpu_lane(&g, "ly", &y);
        ex.run(&g).wait().unwrap();
        assert!(x.read().iter().all(|&v| v == 2));
        assert!(y.read().iter().all(|&v| v == 6));
        assert_eq!(ex.stats().snapshot().devices_lost, 1);
    }

    #[test]
    fn device_loss_with_fail_policy_errors() {
        let ex = Executor::builder(2, 1)
            .retry_policy(RetryPolicy::default().on_device_loss(OnDeviceLoss::Fail))
            .build();
        ex.gpu_runtime()
            .set_fault_plan(Some(hf_gpu::FaultPlan::seeded(3).lose_device(0, 0)));
        let g = Heteroflow::new("lossfail");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 16]);
        gpu_lane(&g, "lane", &x);
        let err = ex.run(&g).wait().unwrap_err();
        assert!(matches!(err.gpu_cause(), Some(GpuError::DeviceLost(0))));
    }

    #[test]
    fn losing_the_only_device_fails_structured() {
        let ex = Executor::new(2, 1);
        ex.gpu_runtime()
            .set_fault_plan(Some(hf_gpu::FaultPlan::seeded(5).lose_device(0, 0)));
        let g = Heteroflow::new("lastgpu");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 16]);
        gpu_lane(&g, "lane", &x);
        // Failover has no survivors: the run must fail (never hang) with
        // a structured error.
        let err = ex.run(&g).wait().unwrap_err();
        assert!(matches!(err, HfError::NoGpus { .. }));
    }

    #[test]
    fn submission_after_device_loss_uses_survivors() {
        let ex = Executor::new(2, 2);
        ex.gpu_runtime().device(0).unwrap().mark_lost();
        let g = Heteroflow::new("degraded");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
        let y: HostVec<i32> = HostVec::from_vec(vec![3; 64]);
        gpu_lane(&g, "lx", &x);
        gpu_lane(&g, "ly", &y);
        ex.run(&g).wait().unwrap();
        assert!(x.read().iter().all(|&v| v == 2));
        assert!(y.read().iter().all(|&v| v == 6));
        assert_eq!(ex.stats().snapshot().devices_lost, 1);
    }

    #[test]
    fn second_executor_evicts_cache_entry() {
        let g = Heteroflow::new("two-ex");
        g.host("t", || {});
        let ex1 = Executor::new(1, 0);
        let ex2 = Executor::new(1, 0);
        ex1.run(&g).wait().unwrap();
        ex1.run(&g).wait().unwrap();
        assert_eq!(ex1.stats().topo_cache_misses.sum(), 1);
        assert_eq!(ex1.stats().topo_cache_hits.sum(), 1);
        // A different executor must not reuse ex1's plan.
        ex2.run(&g).wait().unwrap();
        assert_eq!(ex2.stats().topo_cache_misses.sum(), 1);
        assert_eq!(ex2.stats().topo_cache_hits.sum(), 0);
    }

    /// Locality policy end-to-end: correct results, the placement cache
    /// still hits on unchanged resubmission, and the resubmission elides
    /// its transfers via residency.
    #[test]
    fn locality_policy_runs_and_caches() {
        let ex = Executor::builder(2, 2)
            .placement_policy(PlacementPolicy::Locality)
            .build();
        let g = Heteroflow::new("loc");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 256]);
        let y: HostVec<i32> = HostVec::from_vec(vec![2; 256]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &y);
        let _ = (px, py);
        ex.run(&g).wait().unwrap();
        ex.run(&g).wait().unwrap();
        let snap = ex.stats().snapshot();
        assert_eq!(snap.topo_cache_misses, 1);
        assert_eq!(snap.topo_cache_hits, 1);
        // Second submission found both buffers warm.
        assert_eq!(snap.transfers_elided, 2);
        assert_eq!(snap.bytes_h2d, 2048, "each buffer copied exactly once");
        // The locality runs fed the cost model.
        assert!(ex.cost_db().get("loc", "px").is_some());
        assert!(ex.cost_db().get("loc", "py").is_some());
    }

    /// The cost database only accumulates under the locality policy —
    /// the default policy's hot path stays observation-free.
    #[test]
    fn balanced_load_skips_cost_feedback() {
        let ex = Executor::new(2, 1);
        let g = Heteroflow::new("nofb");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
        gpu_lane(&g, "lane", &x);
        ex.run(&g).wait().unwrap();
        assert!(ex.cost_db().is_empty());
        assert_eq!(ex.stats().snapshot().placement_warm_hits, 0);
    }

    #[test]
    fn seeded_costs_survive_until_observed() {
        let ex = Executor::builder(1, 1)
            .placement_policy(PlacementPolicy::Locality)
            .build();
        ex.seed_task_cost("g", "t", 1234.0);
        assert_eq!(ex.cost_db().get("g", "t"), Some(1234.0));
        let g = Heteroflow::new("g");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 32]);
        g.pull("t", &x);
        ex.run(&g).wait().unwrap();
        // Observation replaced the seed with the modeled copy duration.
        let observed = ex.cost_db().get("g", "t").unwrap();
        assert_ne!(observed, 1234.0);
        assert!(observed > 0.0);
    }

    #[test]
    fn device_loads_tracks_gpu_count() {
        let ex = Executor::new(1, 3);
        assert_eq!(ex.device_loads().len(), 3);
        let g = Heteroflow::new("dl");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 128]);
        gpu_lane(&g, "lane", &x);
        ex.run(&g).wait().unwrap();
        assert!(ex.device_loads().iter().any(|&l| l > 0.0));
    }

    /// `pin_workers` must be a safe no-op knob regardless of whether the
    /// `core_affinity` feature (and thus real pinning) is compiled in.
    #[test]
    fn pinned_workers_still_schedule() {
        let ex = Executor::builder(3, 1).pin_workers(true).build();
        let g = Heteroflow::new("pin");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        g.host("inc", move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        ex.run_n(&g, 20).wait().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }
}
