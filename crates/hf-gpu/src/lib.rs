//! Software GPU substrate for the Heteroflow runtime.
//!
//! The paper's implementation sits on CUDA: devices, streams, events,
//! `cudaMemcpyAsync`, kernel launches, and a per-device buddy-allocator
//! memory pool (§III). This environment has no GPU, so this crate builds a
//! faithful software equivalent that exercises the same code paths the
//! Heteroflow runtime manages:
//!
//! * [`runtime::GpuRuntime`] owns `M` [`device::Device`]s. Each device has a
//!   byte-addressed memory [`arena`], a [`pool::MemoryPool`] backed by a
//!   Knowlton [`buddy::BuddyAllocator`] (the exact algorithm the paper
//!   cites, ref [22]), and one *engine thread* that drains that device's
//!   streams in order.
//! * [`stream::Stream`]s are FIFO queues of asynchronous operations
//!   (copies, kernel launches, event records/waits, host callbacks).
//!   Enqueueing returns immediately — like `cudaMemcpyAsync` — and the
//!   engine thread executes ops respecting per-stream order and
//!   cross-stream event dependencies.
//! * [`event::Event`]s are the synchronization primitive between streams
//!   and between a stream and the host (`cudaEventRecord` /
//!   `cudaStreamWaitEvent` / `cudaEventSynchronize`).
//! * [`kernel`] defines [`kernel::LaunchConfig`] (`grid_x/y/z`,
//!   `block_x/y/z`, shared memory) and the kernel execution context that
//!   hands typed device-memory views to Rust "kernels" iterated over the
//!   real launch index space.
//! * [`cost`] models op durations (copy bandwidth, kernel throughput) so
//!   the `hf-sim` discrete-event model can be calibrated from real runs.
//!
//! Fidelity notes (documented substitutions):
//! * Ops on one device are executed serially by its engine thread, as if
//!   the device were a single compute/copy unit. Cross-device concurrency
//!   is real (one engine thread per device). Stream semantics (FIFO per
//!   stream, arbitrary interleave across streams, event ordering) match
//!   CUDA's model.
//! * Kernels are Rust closures; "threads" are iterations over the launch
//!   grid. Data races inside a kernel are prevented by Rust borrows of the
//!   argument views rather than left undefined as in CUDA.

#![warn(missing_docs)]

pub mod arena;
pub mod buddy;
pub mod cost;
pub mod device;
pub mod error;
pub mod event;
pub mod fault;
pub mod kernel;
pub mod plain;
pub mod pool;
pub mod runtime;
pub mod stream;
pub mod trace;

pub use arena::{ArenaView, DevicePtr};
pub use buddy::BuddyAllocator;
pub use cost::{CostModel, Ewma, SimDuration};
pub use device::{Device, DeviceId, ScopedDeviceContext};
pub use error::GpuError;
pub use event::Event;
pub use fault::{DeviceLoss, FaultPlan, FaultSite};
pub use kernel::{GridDim, KernelArgs, LaunchConfig};
pub use plain::Plain;
pub use trace::{GpuOpKind, GpuTraceEvent, GpuTraceSink, OpLabel};
pub use pool::{MemoryPool, PoolStats};
pub use kernel::KernelFn;
pub use runtime::{GpuConfig, GpuRuntime};
pub use stream::{OpReport, Stream};
