//! End-to-end detailed-placement drivers.
//!
//! [`detailed_place`] runs the flattened Heteroflow graph on an executor;
//! [`detailed_place_sequential`] is a pure-CPU reference with identical
//! numerical behaviour (same priorities, same MIS fixed point, same
//! matching), used as the correctness oracle and the 1-core baseline.

use crate::db::PlacementDb;
use crate::graph::{build_placement_graph, GraphConfig};
use crate::matching::hungarian;
use crate::mis::{make_priorities, mis_cpu};
use crate::partition::partition_windows;
use hf_core::Executor;

/// Driver configuration (a thin re-export of [`GraphConfig`]).
pub type PlaceConfig = GraphConfig;

/// Result of a placement run.
#[derive(Debug, Clone)]
pub struct PlaceOutcome {
    /// HPWL before the first iteration.
    pub hpwl_before: u64,
    /// HPWL after the last iteration.
    pub hpwl_after: u64,
    /// HPWL after each iteration.
    pub hpwl_trace: Vec<u64>,
    /// The final placement.
    pub db: PlacementDb,
}

/// Runs the Heteroflow-parallel detailed placement.
pub fn detailed_place(
    executor: &Executor,
    db: PlacementDb,
    cfg: PlaceConfig,
) -> Result<PlaceOutcome, hf_core::HfError> {
    let hpwl_before = db.total_hpwl();
    let (graph, run) = build_placement_graph(db, cfg);
    executor.run(&graph).wait()?;
    let hpwl_trace = run.hpwl_trace.lock().clone();
    let db = run.db.read().clone();
    Ok(PlaceOutcome {
        hpwl_before,
        hpwl_after: *hpwl_trace.last().unwrap_or(&hpwl_before),
        hpwl_trace,
        db,
    })
}

/// Pure-CPU sequential reference with the same numerical trajectory.
pub fn detailed_place_sequential(mut db: PlacementDb, cfg: PlaceConfig) -> PlaceOutcome {
    let hpwl_before = db.total_hpwl();
    let n = db.num_cells();
    let (offsets, neighbors) = db.conflict_adjacency();
    let mut hpwl_trace = Vec::with_capacity(cfg.iterations);

    for it in 0..cfg.iterations {
        let priorities = make_priorities(n, cfg.seed.wrapping_add(it as u64));
        let states = mis_cpu(&offsets, &neighbors, &priorities);
        let windows = partition_windows(&db, &states, cfg.window_cap);
        let mut moves = Vec::new();
        for w in &windows {
            let slots: Vec<(u32, u32)> = w
                .iter()
                .map(|&c| (db.cells[c as usize].x, db.cells[c as usize].y))
                .collect();
            let cost: Vec<Vec<u64>> = w
                .iter()
                .map(|&c| {
                    slots
                        .iter()
                        .map(|&(x, y)| db.cell_cost_at(c, x, y))
                        .collect()
                })
                .collect();
            let (assignment, _) = hungarian(&cost);
            for (ci, &cell) in w.iter().enumerate() {
                let (x, y) = slots[assignment[ci]];
                moves.push((cell, x, y));
            }
        }
        for (cell, x, y) in moves {
            db.cells[cell as usize].x = x;
            db.cells[cell as usize].y = y;
        }
        hpwl_trace.push(db.total_hpwl());
    }

    PlaceOutcome {
        hpwl_before,
        hpwl_after: *hpwl_trace.last().unwrap_or(&hpwl_before),
        hpwl_trace,
        db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PlacementConfig;

    fn small_db(seed: u64) -> PlacementDb {
        PlacementDb::synthesize(&PlacementConfig {
            num_cells: 400,
            num_nets: 500,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn sequential_reduces_hpwl_monotonically() {
        let out = detailed_place_sequential(
            small_db(1),
            PlaceConfig {
                iterations: 4,
                ..Default::default()
            },
        );
        assert!(out.hpwl_after <= out.hpwl_before);
        let mut prev = out.hpwl_before;
        for &h in &out.hpwl_trace {
            assert!(h <= prev, "HPWL increased within trace");
            prev = h;
        }
        out.db.check_legal().unwrap();
    }

    /// The parallel Heteroflow run must produce exactly the sequential
    /// reference's placement (deterministic priorities, exact kernels,
    /// independent windows).
    #[test]
    fn parallel_matches_sequential_reference() {
        let cfg = PlaceConfig {
            iterations: 3,
            ..Default::default()
        };
        let seq = detailed_place_sequential(small_db(2), cfg);
        let ex = Executor::new(3, 2);
        let par = detailed_place(&ex, small_db(2), cfg).unwrap();
        assert_eq!(par.hpwl_trace, seq.hpwl_trace, "trajectories diverged");
        assert_eq!(par.hpwl_after, seq.hpwl_after);
        for (a, b) in par.db.cells.iter().zip(&seq.db.cells) {
            assert_eq!(a, b, "final placements differ");
        }
    }

    #[test]
    fn improvement_on_scrambled_placement() {
        // A placement with poor locality leaves plenty of gain.
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 600,
            num_nets: 700,
            locality: 100, // long nets: lots of room to improve
            seed: 3,
            ..Default::default()
        });
        let out = detailed_place_sequential(
            db,
            PlaceConfig {
                iterations: 6,
                ..Default::default()
            },
        );
        assert!(
            out.hpwl_after < out.hpwl_before,
            "no improvement: {} -> {}",
            out.hpwl_before,
            out.hpwl_after
        );
    }
}
