//! Profiling a Heteroflow schedule with the unified telemetry layer.
//!
//! Wires a `TraceCollector` into the executor *and* the GPU runtime
//! (`ExecutorBuilder::tracer`), runs a small hybrid pipeline, and writes
//! four artifacts into the output directory:
//!
//! * `trace.json`    — merged CPU+GPU chrome trace (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>): worker spans under
//!   the `cpu` process, true device-side op spans under `gpu<d>`.
//! * `metrics.json`  — unified metrics registry snapshot (executor,
//!   per-device engine/pool counters, span histograms) as JSON.
//! * `metrics.prom`  — the same registry in Prometheus text exposition.
//! * `critpath.txt`  — the measured critical path with per-kind
//!   attribution.
//!
//! Run:   `cargo run --example profiling [-- OUTDIR]`
//! Check: `cargo run --example profiling -- OUTDIR --check` additionally
//! validates the artifacts (parses the JSON, checks span invariants) and
//! exits non-zero on violation — CI runs this mode.

use heteroflow::prelude::*;
use heteroflow::telemetry::{chrome_trace, critical_path, MetricsRegistry};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let outdir = args
        .iter()
        .find(|a| *a != "--check")
        .cloned()
        .unwrap_or_else(|| ".".into());
    std::fs::create_dir_all(&outdir).expect("create output dir");

    let trace = TraceCollector::shared();
    let executor = Executor::builder(4, 2).tracer(Arc::clone(&trace)).build();

    // A small fan of hybrid pipelines to produce an interesting trace.
    let g = Heteroflow::new("profiled");
    let mut task_names = Vec::new();
    for lane in 0..6 {
        let data: HostVec<f64> = HostVec::new();
        let n = 4096 * (lane + 1);
        let h = g.host(&format!("fill{lane}"), {
            let data = data.clone();
            move || {
                let mut w = data.write();
                w.clear();
                w.extend((0..n).map(|i| i as f64));
            }
        });
        let p = g.pull(&format!("pull{lane}"), &data);
        let k = g.kernel(&format!("fma{lane}"), &[&p], move |cfg, args| {
            let v = args.slice_mut::<f64>(0).expect("data");
            for t in cfg.threads() {
                if t < v.len() {
                    v[t] = v[t].mul_add(1.5, 0.25);
                }
            }
        });
        k.cover(n, 256);
        let s = g.push(&format!("push{lane}"), &p, &data);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        for prefix in ["fill", "pull", "fma", "push"] {
            task_names.push(format!("{prefix}{lane}"));
        }
    }
    let info = g.info().expect("acyclic");
    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());
    // One run: the critical-path join needs single-run spans.
    executor.run(&g).wait().expect("profiled graph runs");
    executor.gpu_runtime().synchronize_all();
    // Give the dispatching workers a moment to flush their end spans
    // (wait() is released by the device-side completion callback).
    std::thread::sleep(std::time::Duration::from_millis(20));

    let spans = trace.spans();
    println!(
        "captured {} spans ({} dropped)",
        spans.len(),
        trace.dropped()
    );
    let mut cpu = 0usize;
    let mut dev = 0usize;
    for s in &spans {
        match s.track {
            Track::Worker(_) => cpu += 1,
            Track::Device(_) => dev += 1,
        }
    }
    println!("  {cpu} worker-track spans, {dev} device-track spans");

    let registry = MetricsRegistry::new();
    registry.collect_executor(&executor.stats().snapshot());
    registry.collect_gpu(executor.gpu_runtime());
    registry.collect_spans(&spans);

    let report = critical_path(&info, &spans);
    print!("{report}");

    let write = |file: &str, contents: String| {
        let path = format!("{outdir}/{file}");
        std::fs::write(&path, contents).expect("write artifact");
        println!("wrote {path}");
    };
    write("trace.json", chrome_trace(&spans));
    write("metrics.json", registry.to_json_string());
    write("metrics.prom", registry.prometheus_text());
    write("critpath.txt", report.to_string());

    if check {
        validate(&outdir, &task_names);
        println!("artifact validation passed");
    }
}

/// CI-mode validation: the artifacts on disk must parse and satisfy the
/// telemetry invariants.
fn validate(outdir: &str, task_names: &[String]) {
    let read = |f: &str| std::fs::read_to_string(format!("{outdir}/{f}")).expect("read artifact");

    // trace.json: valid JSON; every task appears exactly once as a
    // category-Task span; both CPU and GPU processes are present.
    let trace = serde_json::from_str(&read("trace.json")).expect("trace.json parses");
    let events = trace.as_array().expect("trace is an array");
    let mut pids = std::collections::BTreeSet::new();
    for name in task_names {
        let occurrences = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("name").and_then(|n| n.as_str()) == Some(name.as_str())
                    && e.get("args")
                        .and_then(|a| a.get("cat"))
                        .and_then(|c| c.as_str())
                        == Some(SpanCat::Task.name())
            })
            .count();
        assert_eq!(occurrences, 1, "task {name} must appear exactly once");
    }
    for e in events {
        pids.insert(e.get("pid").and_then(|p| p.as_u64()).expect("pid"));
    }
    assert!(pids.contains(&0), "CPU process present");
    assert!(pids.iter().any(|&p| p > 0), "GPU process present");

    // metrics.json parses and carries the unified sources.
    let metrics = serde_json::from_str(&read("metrics.json")).expect("metrics.json parses");
    let names: Vec<String> = metrics
        .as_array()
        .expect("metrics is an array")
        .iter()
        .map(|m| m.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    for required in [
        "hf_executor_tasks_executed_total",
        "hf_gpu_busy_nanos_total",
        "hf_gpu_pool_allocs_total",
        "hf_span_duration_us",
    ] {
        assert!(names.iter().any(|n| n == required), "metric {required}");
    }

    // metrics.prom: every line is a comment or `name[{labels}] value`.
    for line in read("metrics.prom").lines() {
        assert!(
            line.starts_with('#')
                || line
                    .split_whitespace()
                    .nth(1)
                    .map(|v| v.parse::<f64>().is_ok())
                    .unwrap_or(false),
            "malformed exposition line: {line}"
        );
    }

    // critpath.txt reports a non-empty measured path.
    let crit = read("critpath.txt");
    assert!(crit.contains("critical path of 'profiled'"));
    assert!(!crit.contains(" 0 us\n"), "path has measured time");
}
