//! The GPU runtime: owns the set of software devices.

use crate::cost::CostModel;
use crate::device::{Device, DeviceId};
use crate::error::GpuError;
use crate::fault::{FaultInjector, FaultPlan};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration for a [`GpuRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Device memory capacity in bytes (power of two). Default 256 MiB.
    pub memory_per_device: usize,
    /// Minimum buddy block size (power of two). Default 256 B.
    pub min_block: usize,
    /// Cost model for op durations.
    pub cost: CostModel,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            memory_per_device: 256 << 20,
            min_block: 256,
            cost: CostModel::default(),
        }
    }
}

/// A set of `M` software GPUs with engine threads, created once and shared
/// by executors — the simulator's stand-in for the CUDA driver.
pub struct GpuRuntime {
    devices: Vec<Device>,
    engines: Vec<JoinHandle<()>>,
    /// Installed fault injector (shared with every device).
    fault: Mutex<Option<Arc<FaultInjector>>>,
}

impl std::fmt::Debug for GpuRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuRuntime")
            .field("num_devices", &self.devices.len())
            .finish()
    }
}

impl GpuRuntime {
    /// Creates `num_devices` devices with the given configuration.
    pub fn new(num_devices: u32, config: GpuConfig) -> Self {
        let mut devices = Vec::with_capacity(num_devices as usize);
        let mut engines = Vec::with_capacity(num_devices as usize);
        for id in 0..num_devices {
            let (d, h) = Device::create(id, config.memory_per_device, config.min_block, config.cost);
            devices.push(d);
            engines.push(h);
        }
        Self {
            devices,
            engines,
            fault: Mutex::new(None),
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Device handle by id.
    pub fn device(&self, id: DeviceId) -> Result<Device, GpuError> {
        self.devices
            .get(id as usize)
            .cloned()
            .ok_or(GpuError::InvalidDevice(id))
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Blocks until every stream on every device has drained.
    pub fn synchronize_all(&self) {
        for d in &self.devices {
            d.synchronize();
        }
    }

    /// Installs (or removes, with `None`) a device-side trace sink on
    /// every device (see [`crate::trace`]).
    pub fn set_trace_sink(&self, sink: Option<std::sync::Arc<dyn crate::trace::GpuTraceSink>>) {
        for d in &self.devices {
            d.set_trace_sink(sink.clone());
        }
    }

    /// True when any device has a trace sink installed.
    pub fn tracing_enabled(&self) -> bool {
        self.devices.iter().any(|d| d.tracing())
    }

    /// Installs (or removes, with `None`) a seeded [`FaultPlan`] on every
    /// device. Installing a plan revives previously lost devices and
    /// resets their op counters; the plan's draw counters and fault cap
    /// are shared across devices so a plan behaves the same regardless of
    /// device count.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        let inj = plan.map(|p| Arc::new(FaultInjector::new(p)));
        for d in &self.devices {
            d.set_fault_injector(inj.clone());
        }
        *self.fault.lock() = inj;
    }

    /// Probabilistic faults injected by the installed plan so far
    /// (scheduled device losses are not counted).
    pub fn faults_injected(&self) -> u64 {
        self.fault.lock().as_ref().map_or(0, |i| i.injected())
    }

    /// Stalls injected by the installed plan so far.
    pub fn stalls_injected(&self) -> u64 {
        self.fault.lock().as_ref().map_or(0, |i| i.stalled())
    }

    /// Ids of devices currently marked lost.
    pub fn lost_devices(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.is_lost())
            .map(|d| d.id())
            .collect()
    }

    /// True when any device is marked lost.
    pub fn any_device_lost(&self) -> bool {
        self.devices.iter().any(|d| d.is_lost())
    }
}

impl Drop for GpuRuntime {
    fn drop(&mut self) {
        for d in &self.devices {
            d.inner.engine.shutdown.store(true, Ordering::Release);
            d.inner.engine.cv.notify_all();
        }
        for h in self.engines.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Stream;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn devices_are_independent() {
        let rt = GpuRuntime::new(3, GpuConfig::default());
        assert_eq!(rt.num_devices(), 3);
        for id in 0..3 {
            let d = rt.device(id).unwrap();
            assert_eq!(d.id(), id);
            let p = d.alloc(1024).unwrap();
            assert_eq!(p.device, id);
            d.free(p).unwrap();
        }
        assert!(rt.device(5).is_err());
    }

    #[test]
    fn drop_joins_engines_cleanly() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let rt = GpuRuntime::new(2, GpuConfig::default());
            for id in 0..2 {
                let s = Stream::new(&rt.device(id).unwrap());
                let c = Arc::clone(&counter);
                s.host_fn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            rt.synchronize_all();
            // rt dropped here: engines must shut down without hanging.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn streams_on_different_devices_run_concurrently() {
        let rt = GpuRuntime::new(2, GpuConfig::default());
        let s0 = Stream::new(&rt.device(0).unwrap());
        let s1 = Stream::new(&rt.device(1).unwrap());
        let gate = Arc::new(std::sync::Barrier::new(2));
        // Both ops block on the same barrier: only possible to finish if
        // the two device engines run them at the same time.
        let (g0, g1) = (Arc::clone(&gate), Arc::clone(&gate));
        s0.host_fn(move || {
            g0.wait();
        });
        s1.host_fn(move || {
            g1.wait();
        });
        s0.synchronize();
        s1.synchronize();
    }

    #[test]
    fn small_device_memory_exhausts() {
        let cfg = GpuConfig {
            memory_per_device: 1 << 12,
            min_block: 256,
            ..Default::default()
        };
        let rt = GpuRuntime::new(1, cfg);
        let d = rt.device(0).unwrap();
        let a = d.alloc(4096).unwrap();
        assert!(d.alloc(256).is_err());
        d.free(a).unwrap();
        assert!(d.alloc(256).is_ok());
    }
}
