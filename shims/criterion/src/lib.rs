//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! benchmarking surface it uses: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::{iter, iter_custom}`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//! Measurement is simpler than real criterion — an adaptive calibration
//! pass picks a batch size that runs long enough to time reliably, then a
//! handful of samples are taken and the median per-iteration time (plus
//! derived throughput) is printed. Accepts and ignores criterion CLI args
//! (e.g. `--bench`, filters) so `cargo bench` invocations don't break.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (median is reported).
const SAMPLES: usize = 5;
/// Minimum wall-clock time a single sample batch should cover.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Units for reporting derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Top-level benchmark driver; one per `criterion_group!` runner.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads an optional substring filter from the CLI args, skipping the
    /// flags cargo-bench passes through.
    pub fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Self { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim sizes batches adaptively.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            per_iter: Vec::new(),
        };
        f(&mut b);
        b.report(&full, self.throughput);
        self
    }

    /// Runs a benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `f`, batching iterations until each sample is long enough to
    /// measure reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut iters = 1u64;
        // Calibrate: grow the batch until one batch covers MIN_SAMPLE_TIME.
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                self.per_iter
                    .push(elapsed.as_secs_f64() / iters as f64);
                break;
            }
            // Aim past the threshold in one step, with headroom.
            let scale = (MIN_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters.saturating_mul(scale as u64 + 1)).min(1 << 24);
        }
        for _ in 1..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.per_iter
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times a closure that measures `iters` iterations itself and returns
    /// the elapsed duration (for setups with per-batch scaffolding).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let mut iters = 1u64;
        loop {
            let elapsed = f(iters);
            if elapsed >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                self.per_iter
                    .push(elapsed.as_secs_f64() / iters as f64);
                break;
            }
            let scale =
                (MIN_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters.saturating_mul(scale as u64 + 1)).min(1 << 24);
        }
        for _ in 1..SAMPLES {
            let elapsed = f(iters);
            self.per_iter
                .push(elapsed.as_secs_f64() / iters as f64);
        }
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>) {
        if self.per_iter.is_empty() {
            println!("{name:<44} (no measurement)");
            return;
        }
        self.per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = self.per_iter[self.per_iter.len() / 2];
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>12} elem/s", format_si(n as f64 / median))
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>12}B/s", format_si(n as f64 / median))
            }
            _ => String::new(),
        };
        println!("{name:<44} {:>12}/iter{rate}", format_time(median));
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records_samples() {
        let mut b = Bencher {
            per_iter: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert_eq!(b.per_iter.len(), SAMPLES);
        assert!(b.per_iter.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn group_filtering_and_reporting_run() {
        let mut c = Criterion {
            filter: Some("keep".into()),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut ran_kept = false;
        let mut ran_skipped = false;
        g.bench_function("keep_me", |b| {
            ran_kept = true;
            b.iter(|| black_box(3u32).pow(2));
        });
        g.bench_function("other", |_b| {
            ran_skipped = true;
        });
        g.finish();
        assert!(ran_kept);
        assert!(!ran_skipped);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 us");
        assert_eq!(format_time(2e-9), "2.0 ns");
        assert_eq!(format_si(2.5e9), "2.50 G");
        assert_eq!(format_si(2.5e6), "2.50 M");
        assert_eq!(format_si(2500.0), "2.50 K");
    }
}
