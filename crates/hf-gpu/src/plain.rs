//! Plain-old-data marker trait for values that may live in device memory.
//!
//! The paper's `PointerCaster` (Listing 9) reinterprets raw device bytes as
//! the kernel argument's pointee type and notes it is "designed to operate
//! on plain old data (POD) pointers". [`Plain`] is the Rust-side contract:
//! any bit pattern is a valid value, so reinterpreting device bytes as
//! `[T]` is sound.

/// Types that can be transported through device memory as raw bytes.
///
/// # Safety
///
/// Implementors must be inhabited for every bit pattern (no padding with
/// validity requirements, no niches like `bool`/`char`/references), and
/// must be `Copy + 'static`.
pub unsafe trait Plain: Copy + Send + Sync + 'static {}

macro_rules! impl_plain {
    ($($t:ty),* $(,)?) => {
        // SAFETY: primitive integers and floats are inhabited for every
        // bit pattern and have no padding or niches.
        $(unsafe impl Plain for $t {})*
    };
}

impl_plain!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// SAFETY: an array of a niche-free, padding-free type is itself niche-free
// and padding-free (array layout inserts no padding between elements).
unsafe impl<T: Plain, const N: usize> Plain for [T; N] {}

/// Reinterprets a `Plain` slice as raw bytes.
pub fn as_bytes<T: Plain>(s: &[T]) -> &[u8] {
    // SAFETY: Plain guarantees no padding-validity issues; lifetimes and
    // immutability are preserved.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Reinterprets a mutable `Plain` slice as raw bytes.
pub fn as_bytes_mut<T: Plain>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as above; exclusive access carries over.
    unsafe {
        std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s))
    }
}

/// Reinterprets raw bytes as a `Plain` slice. Panics if the byte length is
/// not a multiple of `size_of::<T>()` or the pointer is misaligned for `T`.
pub fn from_bytes<T: Plain>(b: &[u8]) -> &[T] {
    let sz = std::mem::size_of::<T>();
    assert!(sz > 0 && b.len().is_multiple_of(sz), "byte length not a multiple of element size");
    assert_eq!(b.as_ptr() as usize % std::mem::align_of::<T>(), 0, "misaligned view");
    // SAFETY: length and alignment checked; Plain allows any bit pattern.
    unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<T>(), b.len() / sz) }
}

/// Mutable variant of [`from_bytes`].
pub fn from_bytes_mut<T: Plain>(b: &mut [u8]) -> &mut [T] {
    let sz = std::mem::size_of::<T>();
    assert!(sz > 0 && b.len().is_multiple_of(sz), "byte length not a multiple of element size");
    assert_eq!(b.as_ptr() as usize % std::mem::align_of::<T>(), 0, "misaligned view");
    // SAFETY: as above, with exclusive access.
    unsafe { std::slice::from_raw_parts_mut(b.as_mut_ptr().cast::<T>(), b.len() / sz) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f32() {
        let v = [1.0f32, -2.5, 3.25];
        let b = as_bytes(&v);
        assert_eq!(b.len(), 12);
        let back: &[f32] = from_bytes(b);
        assert_eq!(back, &v);
    }

    #[test]
    fn mutate_through_bytes() {
        let mut v = [1u32, 2, 3];
        {
            let b = as_bytes_mut(&mut v);
            let ints: &mut [u32] = from_bytes_mut(b);
            ints[1] = 42;
        }
        assert_eq!(v, [1, 42, 3]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn ragged_view_panics() {
        let b = [0u8; 7];
        let _: &[u32] = from_bytes(&b);
    }
}
