//! GPU half-perimeter wirelength (HPWL) evaluation.
//!
//! DREAMPlace evaluates the wirelength objective on the GPU; this module
//! provides the same capability as a Heteroflow kernel pipeline: a
//! per-net kernel computes each net's half-perimeter into an output
//! array (one virtual thread per net), a reduction kernel folds the
//! array into a single sum, and a push returns it. The CPU oracle is
//! [`crate::PlacementDb::total_hpwl`].

use crate::db::PlacementDb;
use hf_core::data::HostVec;
use hf_core::{Executor, Heteroflow, HfError};

/// Flattens the placement into GPU-friendly arrays:
/// `(cell_xy, net_offsets, net_pins)` — positions as interleaved
/// `[x0, y0, x1, y1, ...]`, nets in CSR form.
pub fn flatten_for_gpu(db: &PlacementDb) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut xy = Vec::with_capacity(db.cells.len() * 2);
    for c in &db.cells {
        xy.push(c.x);
        xy.push(c.y);
    }
    let mut offsets = Vec::with_capacity(db.nets.len() + 1);
    let mut pins = Vec::new();
    offsets.push(0u32);
    for n in &db.nets {
        pins.extend(n.pins.iter().copied());
        offsets.push(pins.len() as u32);
    }
    (xy, offsets, pins)
}

/// Computes total HPWL on a (software) GPU through a Heteroflow graph:
/// pulls the flattened arrays, runs the per-net kernel and a tree-style
/// reduction, and pushes the result back.
pub fn hpwl_on_gpu(executor: &Executor, db: &PlacementDb) -> Result<u64, HfError> {
    let (xy, offsets, pins) = flatten_for_gpu(db);
    let num_nets = db.nets.len();

    let h_xy: HostVec<u32> = HostVec::from_vec(xy);
    let h_off: HostVec<u32> = HostVec::from_vec(offsets);
    let h_pins: HostVec<u32> = HostVec::from_vec(if pins.is_empty() {
        vec![u32::MAX]
    } else {
        pins
    });
    // Per-net partial results + one extra slot for the reduced total.
    let h_out: HostVec<u64> = HostVec::from_vec(vec![0u64; num_nets.max(1) + 1]);

    let g = Heteroflow::new("gpu-hpwl");
    let p_xy = g.pull("xy", &h_xy);
    let p_off = g.pull("net_offsets", &h_off);
    let p_pins = g.pull("net_pins", &h_pins);
    let p_out = g.pull("out", &h_out);

    // Kernel 1: one virtual thread per net computes its half-perimeter.
    let per_net = g.kernel(
        "hpwl_per_net",
        &[&p_xy, &p_off, &p_pins, &p_out],
        move |cfg, args| {
            let xy = args.slice::<u32>(0).expect("xy").to_vec();
            let off = args.slice::<u32>(1).expect("offsets").to_vec();
            let pins = args.slice::<u32>(2).expect("pins").to_vec();
            let out = args.slice_mut::<u64>(3).expect("out");
            for net in cfg.threads() {
                if net >= off.len().saturating_sub(1) {
                    continue;
                }
                let (s, e) = (off[net] as usize, off[net + 1] as usize);
                let mut min_x = u32::MAX;
                let mut max_x = 0u32;
                let mut min_y = u32::MAX;
                let mut max_y = 0u32;
                for &p in &pins[s..e] {
                    let (x, y) = (xy[p as usize * 2], xy[p as usize * 2 + 1]);
                    min_x = min_x.min(x);
                    max_x = max_x.max(x);
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                }
                out[net] = if e > s {
                    (max_x - min_x) as u64 + (max_y - min_y) as u64
                } else {
                    0
                };
            }
        },
    );
    per_net
        .cover(num_nets.max(1), 256)
        .work_units((db.nets.iter().map(|n| n.pins.len()).sum::<usize>()) as f64);

    // Kernel 2: reduction into the trailing slot ("thread 0" after a
    // grid sync, as a real implementation would do with atomics).
    let reduce = g.kernel("hpwl_reduce", &[&p_out], move |_cfg, args| {
        let out = args.slice_mut::<u64>(0).expect("out");
        let n = out.len() - 1;
        let total: u64 = out[..n].iter().sum();
        out[n] = total;
    });
    reduce.cover(1, 1).work_units(num_nets as f64);

    let push = g.push("result", &p_out, &h_out);

    let sources: [&dyn hf_core::AsTask; 4] = [&p_xy, &p_off, &p_pins, &p_out];
    per_net.succeed_all(&sources);
    per_net.precede(&reduce);
    reduce.precede(&push);

    executor.run(&g).wait()?;
    let out = h_out.to_vec();
    Ok(*out.last().expect("non-empty output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PlacementConfig;

    #[test]
    fn matches_cpu_oracle() {
        let ex = Executor::new(2, 2);
        for seed in [1u64, 2, 3] {
            let db = PlacementDb::synthesize(&PlacementConfig {
                num_cells: 500,
                num_nets: 700,
                seed,
                ..Default::default()
            });
            let gpu = hpwl_on_gpu(&ex, &db).expect("gpu hpwl runs");
            assert_eq!(gpu, db.total_hpwl(), "seed {seed}");
        }
    }

    #[test]
    fn empty_netlist_is_zero() {
        let ex = Executor::new(1, 1);
        let db = PlacementDb {
            cells: vec![crate::db::Cell { x: 0, y: 0, fixed: false }],
            nets: vec![],
            nets_of: vec![vec![]],
            num_rows: 1,
            sites_per_row: 1,
        };
        assert_eq!(hpwl_on_gpu(&ex, &db).expect("runs"), 0);
    }

    #[test]
    fn flatten_round_trips_structure() {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: 100,
            num_nets: 120,
            ..Default::default()
        });
        let (xy, off, pins) = flatten_for_gpu(&db);
        assert_eq!(xy.len(), 200);
        assert_eq!(off.len(), 121);
        assert_eq!(pins.len(), db.nets.iter().map(|n| n.pins.len()).sum::<usize>());
        // Reconstruct one net's HPWL from the flat arrays.
        let net0 = &db.nets[0];
        let (s, e) = (off[0] as usize, off[1] as usize);
        assert_eq!(&pins[s..e], net0.pins.as_slice());
    }
}
