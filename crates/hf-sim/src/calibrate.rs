//! Calibration helpers: measure real single-thread execution to obtain
//! host-task costs for the model.

use hf_gpu::SimDuration;
use std::time::Instant;

/// Times one execution of `f` and returns it as a [`SimDuration`].
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, SimDuration) {
    let t0 = Instant::now();
    let r = f();
    let el = t0.elapsed();
    (r, SimDuration::from_nanos(el.as_nanos() as u64))
}

/// Times `f` over `iters` runs and returns the mean duration.
pub fn measure_mean(iters: usize, mut f: impl FnMut()) -> SimDuration {
    let iters = iters.max(1);
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let el = t0.elapsed();
    SimDuration::from_nanos((el.as_nanos() as u64) / iters as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_positive_time() {
        let (v, d) = measure(|| {
            let mut s = 0u64;
            for i in 0..10_000 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert_eq!(v, (0..10_000u64).sum::<u64>());
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn measure_mean_divides() {
        let d = measure_mean(10, || {
            std::hint::black_box(42);
        });
        // Mean of 10 trivial runs must be far below 1 ms.
        assert!(d < SimDuration::from_millis(1));
    }
}
