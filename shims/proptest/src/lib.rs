//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! property-testing subset it uses: the [`proptest!`] macro, a [`Strategy`]
//! trait implemented for numeric ranges and tuples, [`any`], and
//! [`collection::vec`]. Cases are generated from a deterministic per-test
//! seed (hash of the test name), so runs are reproducible; there is no
//! shrinking — a failing case panics with the plain assertion message.

use rand::prelude::*;

/// Deterministic per-test random source driving all strategies.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Seeds from the test name so every run replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(rand::rngs::StdRng::seed_from_u64(h))
    }

    /// Draws a value uniformly from `range`.
    pub fn sample<T: rand::SampleUniform, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.sample(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.sample(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// (half-open / inclusive) range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.sample(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.sample(self.clone())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Runner configuration: only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written at the call site and
/// passed through) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$m:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$m])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let __case: u32 = __case;
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..10,
            x in 1u64..50,
            f in 0.5f32..2.0,
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..50).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((any::<bool>(), 1usize..5), 2..6),
            exact in crate::collection::vec(0u8..4, 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 3);
            for (_, sz) in &v {
                prop_assert!(*sz >= 1 && *sz < 5);
            }
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (1u32..5, 1u32..5).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::deterministic("prop_map_transforms");
        for _ in 0..32 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..8 {
            assert_eq!(a.bits(), b.bits());
        }
    }
}
