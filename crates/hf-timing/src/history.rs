//! Persisted task-duration history for seeding locality-aware placement.
//!
//! The correlation pipeline (Fig 5) reruns the same task graph across
//! incremental design iterations. Under `PlacementPolicy::Locality` the
//! executor refines per-task cost estimates from what actually ran, but
//! the *first* placement of a fresh process still packs from the analytic
//! model alone. [`TaskTimingHistory`] closes that gap across process
//! boundaries: capture the executor's refined estimates after a profiled
//! run ([`TaskTimingHistory::capture`]), persist them as JSON
//! ([`TaskTimingHistory::to_json`]), and seed the next session's executor
//! before its first submission ([`TaskTimingHistory::seed_executor`], which
//! feeds `Executor::seed_task_cost`). Seeds never clobber live
//! observations — the cost database keeps measured data over history.

use hf_core::Executor;
use serde_json::{Map, Value};
use std::collections::HashMap;

/// One task's aggregated duration history.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    /// Running mean of modeled duration, nanoseconds.
    mean_nanos: f64,
    /// Number of runs folded into the mean.
    count: u64,
}

/// Per-(graph, task) duration history, mergeable across runs and
/// round-trippable through JSON.
#[derive(Debug, Clone, Default)]
pub struct TaskTimingHistory {
    entries: HashMap<(String, String), Sample>,
}

impl TaskTimingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed duration into the running mean for
    /// `(graph, task)`.
    pub fn record(&mut self, graph: &str, task: &str, nanos: f64) {
        let s = self
            .entries
            .entry((graph.to_string(), task.to_string()))
            .or_insert(Sample {
                mean_nanos: 0.0,
                count: 0,
            });
        s.count += 1;
        s.mean_nanos += (nanos - s.mean_nanos) / s.count as f64;
    }

    /// Snapshots an executor's refined cost estimates into this history
    /// (each estimate counts as one run). Only meaningful after running
    /// under `PlacementPolicy::Locality`, which is when the executor
    /// records cost feedback.
    pub fn capture(&mut self, ex: &Executor) {
        for (graph, task, nanos) in ex.cost_db().export() {
            self.record(&graph, &task, nanos);
        }
    }

    /// Merges another history into this one, weighting means by sample
    /// counts.
    pub fn merge(&mut self, other: &TaskTimingHistory) {
        for (key, o) in &other.entries {
            match self.entries.get_mut(key) {
                Some(s) => {
                    let total = s.count + o.count;
                    if total > 0 {
                        s.mean_nanos = (s.mean_nanos * s.count as f64
                            + o.mean_nanos * o.count as f64)
                            / total as f64;
                        s.count = total;
                    }
                }
                None => {
                    self.entries.insert(key.clone(), *o);
                }
            }
        }
    }

    /// Current mean estimate for `(graph, task)`, if recorded.
    pub fn get(&self, graph: &str, task: &str) -> Option<f64> {
        self.entries
            .get(&(graph.to_string(), task.to_string()))
            .map(|s| s.mean_nanos)
    }

    /// Number of (graph, task) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Seeds `ex`'s cost database with every entry, so the first
    /// Locality placement of a known workload starts from measured
    /// history instead of the analytic model alone.
    pub fn seed_executor(&self, ex: &Executor) {
        for ((graph, task), s) in &self.entries {
            ex.seed_task_cost(graph, task, s.mean_nanos);
        }
    }

    /// Serializes to a stable JSON document (entries sorted by key so
    /// output is deterministic and diff-friendly).
    pub fn to_json(&self) -> String {
        let mut keys: Vec<_> = self.entries.keys().collect();
        keys.sort();
        let rows: Vec<Value> = keys
            .into_iter()
            .map(|key| {
                let s = &self.entries[key];
                let mut m = Map::new();
                m.insert("graph".to_string(), Value::Str(key.0.clone()));
                m.insert("task".to_string(), Value::Str(key.1.clone()));
                m.insert("mean_nanos".to_string(), Value::Float(s.mean_nanos));
                m.insert("count".to_string(), Value::UInt(s.count));
                Value::Object(m)
            })
            .collect();
        let mut root = Map::new();
        root.insert("version".to_string(), Value::UInt(1));
        root.insert("tasks".to_string(), Value::Array(rows));
        serde_json::to_string_pretty(&Value::Object(root)).expect("infallible")
    }

    /// Parses a document produced by [`TaskTimingHistory::to_json`].
    /// Returns `None` on malformed input or unknown version; rows with
    /// missing fields are skipped rather than failing the whole load.
    pub fn from_json(text: &str) -> Option<Self> {
        let root = serde_json::from_str(text).ok()?;
        if root.get("version")?.as_u64()? != 1 {
            return None;
        }
        let mut out = Self::new();
        for row in root.get("tasks")?.as_array()? {
            let (Some(graph), Some(task), Some(mean), Some(count)) = (
                row.get("graph").and_then(Value::as_str),
                row.get("task").and_then(Value::as_str),
                row.get("mean_nanos").and_then(Value::as_f64),
                row.get("count").and_then(Value::as_u64),
            ) else {
                continue;
            };
            if count == 0 || !mean.is_finite() {
                continue;
            }
            out.entries.insert(
                (graph.to_string(), task.to_string()),
                Sample {
                    mean_nanos: mean,
                    count,
                },
            );
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_keeps_running_mean() {
        let mut h = TaskTimingHistory::new();
        h.record("g", "t", 100.0);
        h.record("g", "t", 300.0);
        assert_eq!(h.get("g", "t"), Some(200.0));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn merge_weights_by_count() {
        let mut a = TaskTimingHistory::new();
        a.record("g", "t", 100.0); // count 1
        let mut b = TaskTimingHistory::new();
        for _ in 0..3 {
            b.record("g", "t", 500.0); // count 3
        }
        b.record("g", "only_b", 7.0);
        a.merge(&b);
        assert_eq!(a.get("g", "t"), Some(400.0));
        assert_eq!(a.get("g", "only_b"), Some(7.0));
    }

    #[test]
    fn json_round_trips() {
        let mut h = TaskTimingHistory::new();
        h.record("corr", "pull_view0", 1.5e6);
        h.record("corr", "fit_view0", 4.0e6);
        h.record("other", "k", 9.0);
        let text = h.to_json();
        let back = TaskTimingHistory::from_json(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get("corr", "pull_view0"), Some(1.5e6));
        assert_eq!(back.get("corr", "fit_view0"), Some(4.0e6));
        assert_eq!(back.get("other", "k"), Some(9.0));
        // Deterministic output.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_garbage_and_skips_bad_rows() {
        assert!(TaskTimingHistory::from_json("not json").is_none());
        assert!(TaskTimingHistory::from_json("{\"version\":2,\"tasks\":[]}").is_none());
        let text = r#"{"version":1,"tasks":[
            {"graph":"g","task":"good","mean_nanos":5.0,"count":2},
            {"graph":"g","task":"zero","mean_nanos":5.0,"count":0},
            {"graph":"g","mean_nanos":5.0,"count":1}
        ]}"#;
        let h = TaskTimingHistory::from_json(text).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("g", "good"), Some(5.0));
    }

    #[test]
    fn capture_and_seed_executor_round_trip() {
        use hf_core::prelude::*;

        // Run a tiny graph under Locality so the executor records cost
        // feedback, capture it, then seed a fresh executor from it.
        let ex = Executor::builder(2, 1)
            .placement_policy(PlacementPolicy::Locality)
            .build();
        let x: HostVec<u8> = HostVec::new();
        x.write().resize(4096, 1);
        let g = Heteroflow::new("hist");
        let _p = g.pull("px", &x);
        ex.run(&g).wait().unwrap();

        let mut h = TaskTimingHistory::new();
        h.capture(&ex);
        assert!(h.get("hist", "px").is_some());

        let ex2 = Executor::builder(2, 1).build();
        h.seed_executor(&ex2);
        assert_eq!(
            ex2.cost_db().get("hist", "px"),
            h.get("hist", "px"),
            "seed should land verbatim in a fresh cost database"
        );
    }
}
