//! Name-pattern host-task cost profiles for the discrete-event model.
//!
//! Host tasks in the application graphs have stable name shapes
//! (`gen_v3`, `match[2][1]`, ...). A [`NameCosts`] maps name prefixes to
//! measured durations; the longest matching prefix wins.

use hf_core::GraphInfo;
use hf_gpu::SimDuration;

/// Prefix → duration cost table.
#[derive(Debug, Clone, Default)]
pub struct NameCosts {
    entries: Vec<(String, SimDuration)>,
}

impl NameCosts {
    /// Empty table (all costs zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a prefix rule.
    pub fn set(mut self, prefix: &str, d: SimDuration) -> Self {
        self.entries.push((prefix.to_string(), d));
        // Longest prefix first.
        self.entries.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        self
    }

    /// Cost of a task name (longest matching prefix; zero if none).
    pub fn cost_of(&self, name: &str) -> SimDuration {
        self.entries
            .iter()
            .find(|(p, _)| name.starts_with(p.as_str()))
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Builds the `host_cost` closure for [`hf_sim::simulate`] over a
    /// given graph snapshot.
    pub fn for_graph<'a>(&'a self, info: &'a GraphInfo) -> impl Fn(usize) -> SimDuration + Copy + 'a {
        move |id| self.cost_of(&info.nodes[id].name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let c = NameCosts::new()
            .set("gen", SimDuration::from_millis(10))
            .set("gen_v1", SimDuration::from_millis(99));
        assert_eq!(c.cost_of("gen_v1"), SimDuration::from_millis(99));
        assert_eq!(c.cost_of("gen_v2"), SimDuration::from_millis(10));
        assert_eq!(c.cost_of("other"), SimDuration::ZERO);
    }
}
