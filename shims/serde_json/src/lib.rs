//! Offline stand-in for the `serde_json` crate.
//!
//! Formats the [`serde`] shim's JSON tree ([`Value`], [`Map`]) and provides
//! the [`json!`] macro subset the workspace uses: object literals with
//! string keys and plain expression values, plus bare expressions.

pub use serde::json::{Map, Value};

/// Error type for the (infallible) serializers, kept for API parity.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, None);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out, Some(0));
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON document into a [`Value`] tree (recursive descent over
/// the full JSON grammar: objects, arrays, strings with escapes, numbers,
/// booleans, null). Numbers parse to `UInt`/`Int` when integral and
/// `Float` otherwise.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error);
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error)
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error)
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or(Error)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.eat_lit("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|_| Value::Bool(false)),
            b'n' => self.eat_lit("null").map(|_| Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(Error),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            m.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(Error)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(Error)?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4).ok_or(Error)?;
                            let hex = std::str::from_utf8(hex).map_err(|_| Error)?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined — the workspace never emits them.
                            out.push(char::from_u32(code).ok_or(Error)?);
                        }
                        _ => return Err(Error),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error)?;
                    let c = rest.chars().next().ok_or(Error)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error)
    }
}

/// Builds a [`Value`] from an object literal with string keys, or from any
/// serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($item)),* ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible")
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_objects_and_arrays() {
        let v = json!({
            "name": "x",
            "values": vec![1.5f64, 2.0],
            "n": 3usize,
        });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"name":"x","values":[1.5,2.0],"n":3}"#
        );
    }

    #[test]
    fn pretty_output_indents() {
        let v = json!({"a": 1u32});
        let s = crate::to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn parser_roundtrips_serializer_output() {
        let v = json!({
            "name": "x\"y\\z",
            "values": vec![1.5f64, 2.0],
            "n": 3usize,
            "neg": -4i64,
            "ok": true,
            "none": json!(null),
        });
        let text = crate::to_string(&v).unwrap();
        let back = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
        // Pretty output parses back to the same tree too.
        let back2 = crate::from_str(&crate::to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_nesting() {
        let v = crate::from_str(
            " { \"a\" : [ 1 , {\"b\": \"q\\nr\\u0041\"} , [] ] , \"c\" : 2.5e2 } ",
        )
        .unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(250.0));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("q\nrA"));
        assert!(arr[2].as_array().unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(crate::from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nested_maps_via_inserts() {
        let mut m = crate::Map::new();
        m.insert(
            "rows".to_string(),
            json!(vec![json!({"l": "a"}), json!({"l": "b"})]),
        );
        let s = crate::to_string(&crate::Value::Object(m)).unwrap();
        assert_eq!(s, r#"{"rows":[{"l":"a"},{"l":"b"}]}"#);
    }
}
