//! Analysis views: process corners × operating modes.
//!
//! "Each view represents a unique combination of a process variation
//! corner (e.g., temperature, voltage) and an analysis mode (e.g.,
//! testing, functional). Figure 4 shows the number of required analysis
//! views increases exponentially as the technology node advances" (§IV-A).

/// A process/voltage/temperature corner; scales all gate delays.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name, e.g. "ss_0.81v_125c".
    pub name: String,
    /// Multiplier applied to nominal gate delays (slow corners > 1).
    pub delay_scale: f32,
    /// Relative early/late split used by CPPR (on-chip variation).
    pub ocv: f32,
}

/// An analysis mode; fixes the clock period.
#[derive(Debug, Clone, PartialEq)]
pub struct Mode {
    /// Mode name, e.g. "func" or "test".
    pub name: String,
    /// Clock period in nanoseconds.
    pub clock_period: f32,
}

/// One timing view = corner × mode.
#[derive(Debug, Clone, PartialEq)]
pub struct View {
    /// The PVT corner.
    pub corner: Corner,
    /// The operating mode.
    pub mode: Mode,
    /// Per-view RNG salt (distinguishes dataset sampling between views).
    pub seed: u64,
}

impl View {
    /// Human-readable view id.
    pub fn name(&self) -> String {
        format!("{}:{}", self.corner.name, self.mode.name)
    }
}

/// Generates `n` distinct views by crossing synthesized corners and
/// modes; deterministic.
pub fn make_views(n: usize, base_clock: f32) -> Vec<View> {
    let mut views = Vec::with_capacity(n);
    // Grids of plausible corners (slow..fast) and modes.
    let mut i = 0usize;
    'outer: for c in 0.. {
        // Corner delay scale walks 0.85..1.45 cyclically with drift.
        let scale = 0.85 + 0.6 * ((c * 37 % 100) as f32 / 100.0);
        let ocv = 0.03 + 0.04 * ((c * 13 % 10) as f32 / 10.0);
        for m in 0..4 {
            if i >= n {
                break 'outer;
            }
            let period = base_clock * (0.9 + 0.1 * m as f32);
            views.push(View {
                corner: Corner {
                    name: format!("corner{c}"),
                    delay_scale: scale,
                    ocv,
                },
                mode: Mode {
                    name: format!("mode{m}"),
                    clock_period: period,
                },
                seed: (c as u64) << 8 | m as u64,
            });
            i += 1;
        }
    }
    views
}

/// One row of the Fig 4 table: views required per technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewGrowthRow {
    /// Technology node in nanometers.
    pub node_nm: u32,
    /// Process corners analyzed at this node.
    pub corners: u32,
    /// Operating modes analyzed at this node.
    pub modes: u32,
}

impl ViewGrowthRow {
    /// Total views = corners × modes.
    pub fn views(&self) -> u32 {
        self.corners * self.modes
    }
}

/// The Fig 4 dataset: corners and modes grow with technology scaling,
/// making the required view count grow exponentially — from a handful at
/// 180 nm to thousands at 7 nm. (Values follow the industry trend the
/// figure plots; the paper's figure is qualitative.)
pub fn view_growth_table() -> Vec<ViewGrowthRow> {
    vec![
        ViewGrowthRow { node_nm: 180, corners: 2, modes: 2 },
        ViewGrowthRow { node_nm: 130, corners: 3, modes: 2 },
        ViewGrowthRow { node_nm: 90, corners: 4, modes: 3 },
        ViewGrowthRow { node_nm: 65, corners: 8, modes: 4 },
        ViewGrowthRow { node_nm: 40, corners: 16, modes: 6 },
        ViewGrowthRow { node_nm: 28, corners: 32, modes: 8 },
        ViewGrowthRow { node_nm: 20, corners: 64, modes: 12 },
        ViewGrowthRow { node_nm: 16, corners: 128, modes: 16 },
        ViewGrowthRow { node_nm: 7, corners: 256, modes: 24 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_views_count_and_uniqueness() {
        let vs = make_views(32, 1.0);
        assert_eq!(vs.len(), 32);
        let names: std::collections::HashSet<String> =
            vs.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 32, "duplicate view names");
        for v in &vs {
            assert!(v.corner.delay_scale > 0.5 && v.corner.delay_scale < 2.0);
            assert!(v.mode.clock_period > 0.0);
        }
    }

    #[test]
    fn growth_table_is_exponential() {
        let t = view_growth_table();
        assert_eq!(t.len(), 9);
        // Strictly decreasing node size, strictly increasing views.
        for w in t.windows(2) {
            assert!(w[1].node_nm < w[0].node_nm);
            assert!(w[1].views() > w[0].views());
        }
        // Exponential-ish: last/first ratio is huge.
        assert!(t.last().unwrap().views() / t[0].views() > 1000);
    }
}
