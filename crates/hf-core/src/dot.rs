//! Graph visualization in the standard DOT format (§III-A.6).
//!
//! `Heteroflow::dump` emits a Graphviz description of the task graph so
//! users can render it with `dot`, Python Graphviz, or viz.js — "graph
//! visualization largely facilitates testing and debugging of Heteroflow
//! applications" (Listing 11).

use crate::graph::{Heteroflow, TaskKind};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn style(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Host => "shape=ellipse",
        TaskKind::Pull => "shape=house, style=filled, fillcolor=lightskyblue",
        TaskKind::Push => "shape=invhouse, style=filled, fillcolor=lightsalmon",
        TaskKind::Kernel => "shape=box3d, style=filled, fillcolor=palegreen",
        TaskKind::Placeholder => "shape=ellipse, style=dashed",
    }
}

impl Heteroflow {
    /// Renders the graph as a DOT digraph string.
    pub fn dump(&self) -> String {
        let b = self.shared.builder.lock();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&b.name));
        let _ = writeln!(out, "  rankdir=TB;");
        for (i, n) in b.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\", {}];",
                i,
                escape(&n.name),
                style(n.work.kind())
            );
        }
        for (i, n) in b.nodes.iter().enumerate() {
            for &s in &n.succ {
                let _ = writeln!(out, "  n{i} -> n{s};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the graph as DOT with static-analysis findings overlaid
    /// (see [`Heteroflow::analyze`]). Tasks in an unordered shared-buffer
    /// access pair (`HF002`) are outlined red and bold; dead transfers —
    /// a push no kernel feeds (`HF004`) or a pull nothing consumes
    /// (`HF005`) — are dashed and grayed out. Affected labels carry the
    /// diagnostic code so a rendered graph is self-explanatory.
    pub fn dump_analyzed(&self) -> String {
        let report = self.analyze();
        let mut marks: std::collections::BTreeMap<usize, Vec<&'static str>> =
            std::collections::BTreeMap::new();
        for d in &report.diagnostics {
            if matches!(d.code, "HF002" | "HF004" | "HF005") {
                for &t in &d.task_ids {
                    let codes = marks.entry(t).or_default();
                    if !codes.contains(&d.code) {
                        codes.push(d.code);
                    }
                }
            }
        }
        let b = self.shared.builder.lock();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&b.name));
        let _ = writeln!(out, "  rankdir=TB;");
        for (i, n) in b.nodes.iter().enumerate() {
            match marks.get(&i) {
                Some(codes) => {
                    // Racy outrank dead: red outline wins when both apply.
                    let extra = if codes.contains(&"HF002") {
                        "color=red, penwidth=2"
                    } else {
                        "style=dashed, color=gray50, fontcolor=gray40"
                    };
                    let _ = writeln!(
                        out,
                        "  n{} [label=\"{}\\n{}\", {}, {}];",
                        i,
                        escape(&n.name),
                        codes.join(","),
                        style(n.work.kind()),
                        extra
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  n{} [label=\"{}\", {}];",
                        i,
                        escape(&n.name),
                        style(n.work.kind())
                    );
                }
            }
        }
        for (i, n) in b.nodes.iter().enumerate() {
            for &s in &n.succ {
                let _ = writeln!(out, "  n{i} -> n{s};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes the DOT form to a writer (`hf.dump(cout)` analogue).
    pub fn dump_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.dump().as_bytes())
    }

    /// Renders the graph as DOT with GPU tasks grouped into one cluster
    /// per device, as assigned by Algorithm 1 at the given GPU count —
    /// shows where the scheduler would place every task.
    pub fn dump_placed(&self, num_gpus: u32) -> Result<String, crate::HfError> {
        let info = self.info()?;
        let placement = crate::placement::device_placement(
            &info,
            num_gpus,
            crate::placement::PlacementPolicy::BalancedLoad,
            &hf_gpu::CostModel::default(),
        )?;
        let b = self.shared.builder.lock();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&b.name));
        let _ = writeln!(out, "  rankdir=TB;");
        // Host tasks at top level; GPU tasks inside device clusters.
        for (i, n) in b.nodes.iter().enumerate() {
            if placement.device_of[i].is_none() {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\", {}];",
                    i,
                    escape(&n.name),
                    style(n.work.kind())
                );
            }
        }
        for d in 0..num_gpus {
            let members: Vec<usize> = (0..b.nodes.len())
                .filter(|&i| placement.device_of[i] == Some(d))
                .collect();
            if members.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  subgraph cluster_gpu{d} {{");
            let _ = writeln!(out, "    label=\"GPU {d}\"; style=rounded;");
            for i in members {
                let n = &b.nodes[i];
                let _ = writeln!(
                    out,
                    "    n{} [label=\"{}\", {}];",
                    i,
                    escape(&n.name),
                    style(n.work.kind())
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for (i, n) in b.nodes.iter().enumerate() {
            for &s in &n.succ {
                let _ = writeln!(out, "  n{i} -> n{s};");
            }
        }
        out.push_str("}\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;

    #[test]
    fn dot_contains_all_tasks_and_edges() {
        let g = Heteroflow::new("fig3");
        let x: HostVec<i32> = HostVec::new();
        let h1 = g.host("host1", || {});
        let p1 = g.pull("pull1", &x);
        let k1 = g.kernel("kernel1", &[&p1], |_, _| {});
        let s1 = g.push("push1", &p1, &x);
        h1.precede(&p1);
        p1.precede(&k1);
        k1.precede(&s1);
        let dot = g.dump();
        assert!(dot.starts_with("digraph \"fig3\""));
        for name in ["host1", "pull1", "kernel1", "push1"] {
            assert!(dot.contains(name), "missing {name}");
        }
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("shape=house"), "pull style missing");
        assert!(dot.contains("shape=box3d"), "kernel style missing");
        assert!(dot.contains("shape=invhouse"), "push style missing");
    }

    #[test]
    fn dot_escapes_quotes() {
        let g = Heteroflow::new("q\"uote");
        g.host("na\"me", || {});
        let dot = g.dump();
        assert!(dot.contains("q\\\"uote"));
        assert!(dot.contains("na\\\"me"));
    }

    #[test]
    fn dump_placed_clusters_by_device() {
        let g = Heteroflow::new("placed");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let h = g.host("host", || {});
        for i in 0..4 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            h.precede(&p);
            p.precede(&k);
        }
        let dot = g.dump_placed(2).expect("placeable");
        assert!(dot.contains("cluster_gpu0"));
        assert!(dot.contains("cluster_gpu1"));
        assert!(dot.contains("\"host\""));
        // All 9 tasks and 8 edges survive.
        assert_eq!(dot.matches(" -> ").count(), 8);
        for i in 0..4 {
            assert!(dot.contains(&format!("p{i}")));
            assert!(dot.contains(&format!("k{i}")));
        }
    }

    #[test]
    fn dump_analyzed_colors_racy_pairs_and_dead_nodes() {
        let g = Heteroflow::new("lint");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        // Two unordered pushes to `x` race (HF002); an unconsumed pull of
        // a second buffer is dead (HF005).
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s1 = g.push("s1", &p, &x);
        let s2 = g.push("s2", &p, &x);
        p.precede(&k);
        k.precede(&s1);
        k.precede(&s2);
        let y: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        g.pull("dead", &y);
        let dot = g.dump_analyzed();
        assert!(dot.contains("color=red"), "racy pair not colored: {dot}");
        assert!(dot.contains("HF002"), "racy label missing code: {dot}");
        assert!(dot.contains("style=dashed"), "dead node not dashed: {dot}");
        assert!(dot.contains("HF005"), "dead label missing code: {dot}");
        // Ordered, consumed tasks keep their plain styling.
        assert!(dot.contains("\"k\""), "kernel node missing");
    }

    #[test]
    fn dump_analyzed_of_clean_graph_matches_dump() {
        let g = Heteroflow::new("clean");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        p.precede(&k);
        k.precede(&s);
        assert_eq!(g.dump_analyzed(), g.dump());
    }

    #[test]
    fn dump_to_writer() {
        let g = Heteroflow::new("w");
        g.host("a", || {});
        let mut buf = Vec::new();
        g.dump_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), g.dump());
    }
}
