//! Task handles: lightweight, typed wrappers over graph nodes.
//!
//! "Each time users create a task, the heteroflow object adds a node to
//! its task graph and returns a *task handle* ... a lightweight class
//! object that wraps a pointer to a graph node" (§III-A.1). Handles let
//! users refine task attributes (kernel launch shapes) and add dependency
//! links, while hiding the internal graph storage.

use crate::graph::{GraphShared, TaskKind, Work};
use hf_gpu::GridDim;
use parking_lot::Mutex;
use std::sync::Arc;

/// An untyped handle to a graph node. The typed handles ([`HostTask`],
/// [`PullTask`], [`PushTask`], [`KernelTask`]) deref to this.
#[derive(Clone)]
pub struct TaskRef {
    pub(crate) graph: Arc<GraphShared>,
    pub(crate) id: usize,
}

impl std::fmt::Debug for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("name", &self.name())
            .field("kind", &self.kind())
            .finish()
    }
}

impl TaskRef {
    /// Node index within its graph.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Task name.
    pub fn name(&self) -> String {
        self.graph.builder.lock().nodes[self.id].name.clone()
    }

    /// Task category.
    pub fn kind(&self) -> TaskKind {
        self.graph.builder.lock().nodes[self.id].work.kind()
    }

    /// Number of outgoing dependency links.
    pub fn num_successors(&self) -> usize {
        self.graph.builder.lock().nodes[self.id].succ.len()
    }

    /// Number of incoming dependency links.
    pub fn num_dependents(&self) -> usize {
        self.graph.builder.lock().nodes[self.id].pred.len()
    }

    /// True while the task is an unassigned placeholder.
    pub fn is_placeholder(&self) -> bool {
        self.kind() == TaskKind::Placeholder
    }

    /// Forces this task to run **before** `other` (a preceding link).
    /// Returns `&self` so links can be chained.
    pub fn precede(&self, other: &impl AsTask) -> &Self {
        let o = other.as_task();
        assert!(
            Arc::ptr_eq(&self.graph, &o.graph),
            "tasks belong to different Heteroflow graphs"
        );
        self.graph.builder.lock().add_edge(self.id, o.id);
        self
    }

    /// Forces this task to run **after** `other` (a succeeding link).
    pub fn succeed(&self, other: &impl AsTask) -> &Self {
        let o = other.as_task();
        assert!(
            Arc::ptr_eq(&self.graph, &o.graph),
            "tasks belong to different Heteroflow graphs"
        );
        self.graph.builder.lock().add_edge(o.id, self.id);
        self
    }

    /// Precedes every task in the list, like the paper's variadic
    /// `precede(push_x, push_y)`.
    pub fn precede_all(&self, others: &[&dyn AsTask]) -> &Self {
        for o in others {
            self.precede(&o.as_task());
        }
        self
    }

    /// Succeeds every task in the list.
    pub fn succeed_all(&self, others: &[&dyn AsTask]) -> &Self {
        for o in others {
            self.succeed(&o.as_task());
        }
        self
    }

    /// Renames the task (shows up in DOT dumps).
    pub fn rename(&self, name: &str) -> &Self {
        let mut b = self.graph.builder.lock();
        b.nodes[self.id].name = name.to_owned();
        b.touch();
        self
    }

    /// Assigns host work to a placeholder created via
    /// [`crate::Heteroflow::placeholder`]. Panics if the task already has
    /// work.
    pub fn assign_host<F>(&self, f: F) -> &Self
    where
        F: FnMut() + Send + 'static,
    {
        let mut b = self.graph.builder.lock();
        let node = &mut b.nodes[self.id];
        assert!(
            matches!(node.work, Work::Empty),
            "task '{}' already has work assigned",
            node.name
        );
        node.work = Work::Host(Arc::new(Mutex::new(Box::new(f))));
        b.touch();
        self
    }
}

/// Conversion into an untyped [`TaskRef`]; implemented by every handle so
/// `precede`/`succeed` accept any task type uniformly ("Heteroflow's task
/// interface is uniform", §III-A.5).
pub trait AsTask {
    /// The untyped handle.
    fn as_task(&self) -> TaskRef;
}

impl AsTask for TaskRef {
    fn as_task(&self) -> TaskRef {
        self.clone()
    }
}

macro_rules! typed_handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name(pub(crate) TaskRef);

        impl std::ops::Deref for $name {
            type Target = TaskRef;
            fn deref(&self) -> &TaskRef {
                &self.0
            }
        }

        impl AsTask for $name {
            fn as_task(&self) -> TaskRef {
                self.0.clone()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.0.fmt(f)
            }
        }
    };
}

typed_handle!(
    /// Handle to a host (CPU) task.
    HostTask
);
impl HostTask {
    /// Declares that this host task **reads** `buf`, for the static
    /// analyzer ([`crate::Heteroflow::analyze`]). Host closures are opaque
    /// to the library, so without declarations the race lint (HF002) only
    /// sees pull/push accesses; declaring accesses lets it also catch a
    /// host task racing a push or another host task on the same
    /// [`HostVec`]. Purely advisory — execution is unaffected.
    pub fn reads<T>(&self, buf: &crate::data::HostVec<T>) -> &Self {
        let mut b = self.0.graph.builder.lock();
        let id = buf.buffer_id();
        let node = &mut b.nodes[self.0.id];
        if !node.reads.contains(&id) {
            node.reads.push(id);
            b.touch();
        }
        self
    }

    /// Declares that this host task **writes** `buf` — see
    /// [`HostTask::reads`].
    pub fn writes<T>(&self, buf: &crate::data::HostVec<T>) -> &Self {
        let mut b = self.0.graph.builder.lock();
        let id = buf.buffer_id();
        let node = &mut b.nodes[self.0.id];
        if !node.writes.contains(&id) {
            node.writes.push(id);
            b.touch();
        }
        self
    }
}

typed_handle!(
    /// Handle to a pull (H2D copy) task.
    PullTask
);
typed_handle!(
    /// Handle to a push (D2H copy) task.
    PushTask
);
typed_handle!(
    /// Handle to a kernel (GPU offload) task. Exposes the launch-shape
    /// builder methods of Listing 1 (`.block_x(256).grid_x((N+255)/256)`).
    KernelTask
);

impl KernelTask {
    fn with_cfg(&self, f: impl FnOnce(&mut hf_gpu::LaunchConfig)) -> &Self {
        let mut b = self.0.graph.builder.lock();
        f(&mut b.nodes[self.0.id].cfg);
        b.touch();
        self
    }

    /// Sets the grid X dimension (blocks).
    pub fn grid_x(&self, x: u32) -> &Self {
        self.with_cfg(|c| c.grid.x = x)
    }

    /// Sets the grid Y dimension.
    pub fn grid_y(&self, y: u32) -> &Self {
        self.with_cfg(|c| c.grid.y = y)
    }

    /// Sets the grid Z dimension.
    pub fn grid_z(&self, z: u32) -> &Self {
        self.with_cfg(|c| c.grid.z = z)
    }

    /// Sets the full grid.
    pub fn grid(&self, g: GridDim) -> &Self {
        self.with_cfg(|c| c.grid = g)
    }

    /// Sets the block X dimension (threads per block).
    pub fn block_x(&self, x: u32) -> &Self {
        self.with_cfg(|c| c.block.x = x)
    }

    /// Sets the block Y dimension.
    pub fn block_y(&self, y: u32) -> &Self {
        self.with_cfg(|c| c.block.y = y)
    }

    /// Sets the block Z dimension.
    pub fn block_z(&self, z: u32) -> &Self {
        self.with_cfg(|c| c.block.z = z)
    }

    /// Sets the full block.
    pub fn block(&self, b: GridDim) -> &Self {
        self.with_cfg(|c| c.block = b)
    }

    /// Sets dynamic shared memory bytes per block.
    pub fn shm(&self, bytes: u32) -> &Self {
        self.with_cfg(|c| c.shm = bytes)
    }

    /// Covers at least `n` linear threads with blocks of `block_x`
    /// threads — shorthand for the Listing 1 idiom.
    pub fn cover(&self, n: usize, block_x: u32) -> &Self {
        self.with_cfg(|c| *c = hf_gpu::LaunchConfig::cover(n, block_x))
    }

    /// Declares the kernel's modeled cost in abstract work units (used by
    /// the device cost model and the load-balancing placement policy).
    pub fn work_units(&self, units: f64) -> &Self {
        let mut b = self.0.graph.builder.lock();
        b.nodes[self.0.id].work_units = units;
        b.touch();
        self
    }

    /// Current launch configuration.
    pub fn launch_config(&self) -> hf_gpu::LaunchConfig {
        self.0.graph.builder.lock().nodes[self.0.id].cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;

    #[test]
    fn handle_metadata() {
        let g = Heteroflow::new("t");
        let a = g.host("alpha", || {});
        assert_eq!(a.name(), "alpha");
        assert_eq!(a.kind(), TaskKind::Host);
        assert_eq!(a.id(), 0);
        a.rename("beta");
        assert_eq!(a.name(), "beta");
    }

    #[test]
    fn precede_succeed_symmetry() {
        let g = Heteroflow::new("t");
        let a = g.host("a", || {});
        let b = g.host("b", || {});
        let c = g.host("c", || {});
        a.precede(&b);
        c.succeed(&b);
        assert_eq!(a.num_successors(), 1);
        assert_eq!(b.num_dependents(), 1);
        assert_eq!(b.num_successors(), 1);
        assert_eq!(c.num_dependents(), 1);
    }

    #[test]
    fn precede_all_mixed_types() {
        let g = Heteroflow::new("t");
        let x: HostVec<i32> = HostVec::from_vec(vec![1, 2]);
        let h = g.host("h", || {});
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        h.precede_all(&[&p, &k]);
        k.succeed(&p).precede(&s);
        assert_eq!(h.num_successors(), 2);
        assert_eq!(k.num_dependents(), 2);
    }

    #[test]
    fn kernel_launch_builder() {
        let g = Heteroflow::new("t");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 1000]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.block_x(256).grid_x(4).shm(1024).work_units(5.0);
        let cfg = k.launch_config();
        assert_eq!(cfg.block.x, 256);
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.shm, 1024);
        k.cover(65536, 256);
        assert_eq!(k.launch_config().grid.x, 256);
    }

    #[test]
    #[should_panic(expected = "different Heteroflow")]
    fn cross_graph_edge_panics() {
        let g1 = Heteroflow::new("g1");
        let g2 = Heteroflow::new("g2");
        let a = g1.host("a", || {});
        let b = g2.host("b", || {});
        a.precede(&b);
    }

    #[test]
    #[should_panic(expected = "already has work")]
    fn double_assign_panics() {
        let g = Heteroflow::new("t");
        let p = g.placeholder("p");
        p.assign_host(|| {});
        p.assign_host(|| {});
    }
}
