//! Incremental static timing analysis.
//!
//! OpenTimer 2.0 (paper refs [24][25]) is an *incremental* timing engine:
//! after a local design change (gate resize/repower = delay change), only
//! the affected cone is repropagated instead of the whole netlist.
//! [`IncrementalTimer`] reproduces that capability over the [`Circuit`]
//! model:
//!
//! * **arrival** times repropagate *forward* through the fanout cone of
//!   each edited gate, level by level, stopping where values stabilize;
//! * **required** times repropagate *backward* through the fanin cone
//!   (required depends only on downstream required and edge delays);
//! * slack/WNS/TNS are derived on demand.
//!
//! Equivalence with the full sweep is property-tested.

use crate::netlist::Circuit;
use crate::sta::{gate_delay, run_sta, TimingReport};
use crate::views::View;
use std::collections::{BTreeMap, HashSet};

const EPS: f32 = 1e-6;

/// An incrementally-maintained timer over one view of a circuit.
pub struct IncrementalTimer {
    circuit: Circuit,
    view: View,
    arrival: Vec<f32>,
    /// Raw required times: `+inf` where no primary output is reachable
    /// (exactly the full sweep's internal state; clamped to the clock
    /// period only at the accessor).
    required: Vec<f32>,
    level_of: Vec<u32>,
    /// Gates whose arrival must be recomputed, bucketed by level.
    dirty_fwd: BTreeMap<u32, HashSet<u32>>,
    /// Gates whose required must be recomputed, bucketed by level.
    dirty_bwd: BTreeMap<u32, HashSet<u32>>,
    /// Gates touched by the last `update` (diagnostic / test metric).
    last_touched: usize,
}

impl IncrementalTimer {
    /// Builds the timer with a full initial sweep.
    pub fn new(circuit: Circuit, view: View) -> Self {
        let full = run_sta(&circuit, &view);
        let mut level_of = vec![0u32; circuit.num_gates()];
        for (lv, gs) in circuit.levels.iter().enumerate() {
            for &g in gs {
                level_of[g as usize] = lv as u32;
            }
        }
        // Rebuild the *raw* required times (run_sta clamps before
        // returning): propagate with +inf through unreachable cones.
        let n = circuit.num_gates();
        let period = view.mode.clock_period;
        let mut required = vec![f32::INFINITY; n];
        for &po in &circuit.primary_outputs {
            required[po as usize] = period;
        }
        for level in circuit.levels.iter().rev() {
            for &g in level {
                let g = g as usize;
                let rq = circuit.fanout[g]
                    .iter()
                    .map(|&s| {
                        let s = s as usize;
                        required[s] - gate_delay(&circuit, s, &view)
                    })
                    .fold(f32::INFINITY, f32::min);
                if rq < required[g] {
                    required[g] = rq;
                }
            }
        }
        Self {
            circuit,
            view,
            arrival: full.arrival,
            required,
            level_of,
            dirty_fwd: BTreeMap::new(),
            dirty_bwd: BTreeMap::new(),
            last_touched: 0,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Current arrival time at a gate (call [`update`](Self::update)
    /// after edits).
    pub fn arrival(&self, gate: u32) -> f32 {
        self.arrival[gate as usize]
    }

    /// Current required time at a gate (clamped to the clock period for
    /// gates that reach no primary output, matching [`run_sta`]).
    pub fn required(&self, gate: u32) -> f32 {
        let r = self.required[gate as usize];
        if r.is_finite() {
            r
        } else {
            self.view.mode.clock_period
        }
    }

    /// Current slack at a gate.
    pub fn slack(&self, gate: u32) -> f32 {
        self.required(gate) - self.arrival[gate as usize]
    }

    /// Worst negative slack over primary outputs (0 if timing is met).
    pub fn wns(&self) -> f32 {
        self.circuit
            .primary_outputs
            .iter()
            .map(|&po| self.slack(po))
            .fold(0.0f32, f32::min)
    }

    /// Gates recomputed by the last [`update`](Self::update).
    pub fn last_touched(&self) -> usize {
        self.last_touched
    }

    /// Edits a gate's delay multiplier (resize/repower) and marks the
    /// affected cones dirty. Takes effect at the next `update`.
    pub fn set_delay_factor(&mut self, gate: u32, factor: f32) {
        self.circuit.gates[gate as usize].delay_factor = factor;
        // Forward: this gate's own arrival changes.
        self.mark_fwd(gate);
        // Backward: required of this gate's fanins depends on
        // `required[gate] - delay(gate)`, so they must be revisited even
        // if required[gate] itself is unchanged.
        for f in self.circuit.fanin[gate as usize].clone() {
            self.mark_bwd(f);
        }
    }

    /// Changes the clock period (mode switch): all endpoint required
    /// times shift, which is a whole-cone backward update.
    pub fn set_clock_period(&mut self, period: f32) {
        self.view.mode.clock_period = period;
        for po in self.circuit.primary_outputs.clone() {
            self.required[po as usize] = period;
            for f in self.circuit.fanin[po as usize].clone() {
                self.mark_bwd(f);
            }
        }
    }

    fn mark_fwd(&mut self, gate: u32) {
        self.dirty_fwd
            .entry(self.level_of[gate as usize])
            .or_default()
            .insert(gate);
    }

    fn mark_bwd(&mut self, gate: u32) {
        self.dirty_bwd
            .entry(self.level_of[gate as usize])
            .or_default()
            .insert(gate);
    }

    /// Repropagates the dirty cones; returns the number of gates touched.
    pub fn update(&mut self) -> usize {
        let mut touched = 0usize;

        // Forward pass: lowest level first.
        while let Some((&lv, _)) = self.dirty_fwd.iter().next() {
            let gates: Vec<u32> = self
                .dirty_fwd
                .remove(&lv)
                .expect("key just observed")
                .into_iter()
                .collect();
            for g in gates {
                touched += 1;
                let gi = g as usize;
                let at_in = self.circuit.fanin[gi]
                    .iter()
                    .map(|&f| self.arrival[f as usize])
                    .fold(0.0f32, f32::max);
                let new = at_in + gate_delay(&self.circuit, gi, &self.view);
                if (new - self.arrival[gi]).abs() > EPS {
                    self.arrival[gi] = new;
                    for &s in &self.circuit.fanout[gi].clone() {
                        self.mark_fwd(s);
                    }
                }
            }
        }

        // Backward pass: highest level first.
        while let Some((&lv, _)) = self.dirty_bwd.iter().next_back() {
            let gates: Vec<u32> = self
                .dirty_bwd
                .remove(&lv)
                .expect("key just observed")
                .into_iter()
                .collect();
            for g in gates {
                touched += 1;
                let gi = g as usize;
                if self.circuit.gates[gi].kind == crate::netlist::GateKind::Output {
                    // Primary outputs are pinned to the clock period.
                    continue;
                }
                // Min over fanouts with raw (+inf-propagating) values;
                // an empty fanout (dead end) yields +inf, as in the
                // full sweep.
                let new = self.circuit.fanout[gi]
                    .iter()
                    .map(|&s| {
                        let si = s as usize;
                        self.required[si] - gate_delay(&self.circuit, si, &self.view)
                    })
                    .fold(f32::INFINITY, f32::min);
                let changed = match (new.is_finite(), self.required[gi].is_finite()) {
                    (false, false) => false,
                    (true, true) => (new - self.required[gi]).abs() > EPS,
                    _ => true,
                };
                if changed {
                    self.required[gi] = new;
                    for &f in &self.circuit.fanin[gi].clone() {
                        self.mark_bwd(f);
                    }
                }
            }
        }

        self.last_touched = touched;
        touched
    }

    /// Full recomputation (oracle for tests; also useful after massive
    /// edits where incrementality would not pay off).
    pub fn full_report(&self) -> TimingReport {
        run_sta(&self.circuit, &self.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::CircuitConfig;
    use crate::views::make_views;

    fn setup(n: usize, seed: u64) -> IncrementalTimer {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: n,
            seed,
            ..Default::default()
        });
        let v = make_views(1, 0.5)[0].clone();
        IncrementalTimer::new(c, v)
    }

    fn assert_matches_full(t: &IncrementalTimer) {
        let full = t.full_report();
        for g in 0..t.circuit().num_gates() {
            assert!(
                (t.arrival(g as u32) - full.arrival[g]).abs() < 1e-4,
                "arrival mismatch at {g}: {} vs {}",
                t.arrival(g as u32),
                full.arrival[g]
            );
            assert!(
                (t.required(g as u32) - full.required[g]).abs() < 1e-4,
                "required mismatch at {g}: {} vs {}",
                t.required(g as u32),
                full.required[g]
            );
        }
    }

    #[test]
    fn initial_state_matches_full_sweep() {
        let t = setup(500, 1);
        assert_matches_full(&t);
    }

    #[test]
    fn single_edit_matches_full_recompute() {
        let mut t = setup(800, 2);
        let mid = (t.circuit().num_gates() / 2) as u32;
        t.set_delay_factor(mid, 3.0);
        let touched = t.update();
        assert!(touched > 0);
        assert_matches_full(&t);
    }

    #[test]
    fn local_edit_touches_small_cone() {
        let mut t = setup(4000, 3);
        // Edit a gate near the outputs: its forward cone is tiny.
        let late = (t.circuit().num_gates() - 10) as u32;
        t.set_delay_factor(late, 1.5);
        let touched = t.update();
        assert!(
            touched < t.circuit().num_gates() / 4,
            "incremental update touched {touched} of {} gates",
            t.circuit().num_gates()
        );
        assert_matches_full(&t);
    }

    #[test]
    fn sequence_of_edits_stays_consistent() {
        let mut t = setup(600, 4);
        let n = t.circuit().num_gates() as u32;
        for (i, factor) in [(n / 3, 2.0f32), (n / 2, 0.5), (2 * n / 3, 4.0), (n / 3, 1.0)] {
            t.set_delay_factor(i, factor);
            t.update();
        }
        assert_matches_full(&t);
    }

    #[test]
    fn batched_edits_before_update() {
        let mut t = setup(600, 5);
        let n = t.circuit().num_gates() as u32;
        for i in [n / 5, n / 4, n / 3, n / 2] {
            t.set_delay_factor(i, 2.5);
        }
        t.update();
        assert_matches_full(&t);
    }

    #[test]
    fn clock_period_change_updates_required() {
        let mut t = setup(400, 6);
        let wns_before = t.wns();
        t.set_clock_period(0.01); // very tight
        t.update();
        assert!(t.wns() < wns_before, "tight clock must worsen WNS");
        assert_matches_full(&t);
        t.set_clock_period(100.0); // very loose
        t.update();
        assert_eq!(t.wns(), 0.0);
        assert_matches_full(&t);
    }

    #[test]
    fn noop_update_touches_nothing() {
        let mut t = setup(300, 7);
        assert_eq!(t.update(), 0);
        // Re-setting the current factor revisits the gate and its fanins
        // but propagation stops immediately (values unchanged).
        let c = t.circuit().gates[50].delay_factor;
        t.set_delay_factor(50, c);
        let touched = t.update();
        let fanins = t.circuit().fanin[50].len();
        assert!(
            touched <= 1 + fanins,
            "stable edit propagated: {touched} (fanins {fanins})"
        );
        assert_matches_full(&t);
    }
}
