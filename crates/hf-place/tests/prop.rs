//! Property-based tests for the placement substrate.

use hf_place::matching::{brute_force, hungarian};
use hf_place::mis::{make_priorities, mis_cpu, verify_mis};
use hf_place::partition::partition_windows;
use hf_place::{PlacementConfig, PlacementDb};
use proptest::prelude::*;

/// Random undirected graph in CSR form.
fn random_csr(n: usize, edges: &[(usize, usize)]) -> (Vec<u32>, Vec<u32>) {
    let mut sets: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a != b {
            sets[a].insert(b as u32);
            sets[b].insert(a as u32);
        }
    }
    let mut offsets = vec![0u32];
    let mut neighbors = Vec::new();
    for s in &sets {
        neighbors.extend(s.iter().copied());
        offsets.push(neighbors.len() as u32);
    }
    (offsets, neighbors)
}

proptest! {
    /// MIS output on any graph is independent and maximal, for any
    /// priority seed.
    #[test]
    fn mis_always_valid(
        n in 2usize..80,
        edges in proptest::collection::vec((0usize..80, 0usize..80), 0..300),
        seed in any::<u64>(),
    ) {
        let (off, nbr) = random_csr(n, &edges);
        let pri = make_priorities(n, seed);
        let states = mis_cpu(&off, &nbr, &pri);
        prop_assert!(verify_mis(&off, &nbr, &states).is_ok());
    }

    /// Hungarian matches the brute-force optimum on every small matrix
    /// and always returns a permutation.
    #[test]
    fn hungarian_is_optimal(
        n in 1usize..7,
        values in proptest::collection::vec(0u64..1000, 49),
    ) {
        let cost: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| values[i * 7 + j]).collect())
            .collect();
        let (asg, total) = hungarian(&cost);
        prop_assert_eq!(total, brute_force(&cost));
        let mut seen = vec![false; n];
        let mut check = 0u64;
        for (i, &j) in asg.iter().enumerate() {
            prop_assert!(!seen[j]);
            seen[j] = true;
            check += cost[i][j];
        }
        prop_assert_eq!(check, total);
    }

    /// Partitioning covers each movable member exactly once with windows
    /// within the cap, for random placements and caps.
    #[test]
    fn partition_is_a_cover(
        cells in 50usize..400,
        cap in 2usize..12,
        seed in any::<u64>(),
    ) {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: cells,
            num_nets: cells,
            seed,
            ..Default::default()
        });
        let (off, nbr) = db.conflict_adjacency();
        let pri = make_priorities(cells, seed ^ 0xF00D);
        let states = mis_cpu(&off, &nbr, &pri);
        let windows = partition_windows(&db, &states, cap);
        let mut seen = std::collections::HashSet::new();
        for w in &windows {
            prop_assert!(w.len() >= 2 && w.len() <= cap);
            for &c in w {
                prop_assert!(seen.insert(c), "cell {} twice", c);
            }
        }
    }

    /// The full sequential detailed-placement pipeline never increases
    /// HPWL and always preserves legality.
    #[test]
    fn placement_pipeline_invariants(
        cells in 60usize..250,
        iters in 1usize..4,
        seed in any::<u64>(),
    ) {
        let db = PlacementDb::synthesize(&PlacementConfig {
            num_cells: cells,
            num_nets: cells + 20,
            seed,
            ..Default::default()
        });
        let out = hf_place::detailed_place_sequential(
            db,
            hf_place::PlaceConfig {
                iterations: iters,
                ..Default::default()
            },
        );
        prop_assert!(out.hpwl_after <= out.hpwl_before);
        let mut prev = out.hpwl_before;
        for &h in &out.hpwl_trace {
            prop_assert!(h <= prev, "HPWL increased mid-trace");
            prev = h;
        }
        prop_assert!(out.db.check_legal().is_ok());
    }
}
