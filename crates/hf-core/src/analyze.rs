//! Static analysis of task graphs: data-race and dataflow linting.
//!
//! The paper's programming model pushes correctness onto the user —
//! nothing stops two tasks from mutating the same [`crate::data::HostVec`]
//! without an ordering edge, a kernel from reading device data no pull
//! populated, or a push of bytes no kernel ever wrote. This module runs a
//! diagnostics pass over a built [`Heteroflow`] *before* it is frozen and
//! dispatched, reporting structured findings ([`Diagnostic`]) with stable
//! `HF0xx` codes:
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | HF001 | Error    | dependency cycle (full ordered path) |
//! | HF002 | Error    | unordered access to a shared host buffer, ≥1 writer |
//! | HF003 | Error    | kernel/push uses a pull it has no dependency path from |
//! | HF004 | Warning  | push of device data no kernel computes |
//! | HF005 | Warning  | dead pull: device data nothing consumes |
//! | HF006 | Info     | redundant edge already implied by a longer path |
//! | HF007 | Error    | placeholder never assigned work |
//! | HF008 | Info     | graph too large; path-based lints skipped |
//!
//! Accesses are identified by *buffer identity*: pulls read their
//! [`crate::data::HostSource::source_id`], pushes write their
//! [`crate::data::HostSink::sink_id`], and host tasks contribute the
//! buffers declared via [`crate::HostTask::reads`] /
//! [`crate::HostTask::writes`] (host closures are opaque, so undeclared
//! accesses are invisible — declarations are opt-in precision, never
//! required). Dependency paths are decided with a bitset reachability
//! closure built in topological order, so indirect ordering (`a → b → c`)
//! suppresses findings just like a direct edge.
//!
//! [`Heteroflow::analyze`] never fails; it returns a [`Report`] with text
//! ([`Report::render_text`]) and JSON ([`Report::to_json`]) renderers. The
//! executor consults the same (epoch-cached) report on every submission
//! according to its [`crate::LintPolicy`].

use crate::graph::{Builder, Heteroflow, Work};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Path-based lints (HF002/HF003/HF006) build an O(V²/64) reachability
/// closure; above this many tasks they are skipped (HF008 reports it) and
/// only the local lints run.
pub const MAX_CLOSURE_TASKS: usize = 16_384;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only (redundant edges, skipped analyses).
    Info,
    /// Suspicious but not certain to misbehave.
    Warning,
    /// The graph will fail at runtime or produce nondeterministic results.
    /// [`crate::LintPolicy::Deny`] rejects graphs with Error findings.
    Error,
}

impl Severity {
    /// Stable lowercase name used in renders and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `"HF001"` … `"HF008"`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Names of the involved tasks (for HF001, the ordered cycle).
    pub tasks: Vec<String>,
    /// Node indices of the involved tasks, parallel to `tasks` (used by
    /// the DOT renderer to color offending nodes).
    pub task_ids: Vec<usize>,
    /// Human-readable explanation with a suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Canonical one-line rendering: `HF0xx [task, ...]: message`.
    pub fn render(&self) -> String {
        format!("{} [{}]: {}", self.code, self.tasks.join(", "), self.message)
    }
}

/// The result of analyzing one graph: all findings, most severe first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Name of the analyzed graph.
    pub graph: String,
    /// Findings ordered by severity (errors first), then code, then first
    /// involved task — deterministic for a given graph.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when the analyzer found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is Error severity (what
    /// [`crate::LintPolicy::Deny`] rejects on).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: &str) -> impl Iterator<Item = &Diagnostic> + '_ {
        let code = code.to_owned();
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Multi-line human-readable rendering; `"no findings"` when clean.
    pub fn render_text(&self) -> String {
        if self.is_clean() {
            return format!("graph '{}': no findings", self.graph);
        }
        let mut out = format!(
            "graph '{}': {} finding(s)\n",
            self.graph,
            self.diagnostics.len()
        );
        for d in &self.diagnostics {
            out.push_str(&format!("  {}: {}\n", d.severity, d.render()));
        }
        out
    }

    /// JSON rendering (single object; diagnostics as an array).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"graph\":");
        json_string(&mut out, &self.graph);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":");
            json_string(&mut out, d.code);
            out.push_str(",\"severity\":");
            json_string(&mut out, d.severity.name());
            out.push_str(",\"tasks\":[");
            for (j, t) in d.tasks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, t);
            }
            out.push_str("],\"task_ids\":[");
            for (j, id) in d.task_ids.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&id.to_string());
            }
            out.push_str("],\"message\":");
            json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Heteroflow {
    /// Runs the static analyzer over the graph as currently built and
    /// returns the findings. Never fails — an empty report means a clean
    /// graph. The report is cached per builder epoch, so repeated calls
    /// (and the executor's per-submission lint) on an unchanged graph do
    /// the work once.
    pub fn analyze(&self) -> Arc<Report> {
        let b = self.shared.builder.lock();
        let epoch = b.epoch;
        if let Some((cached_epoch, report)) = &*self.shared.lint_cache.lock() {
            if *cached_epoch == epoch {
                return Arc::clone(report);
            }
        }
        let report = Arc::new(run(&b));
        *self.shared.lint_cache.lock() = Some((epoch, Arc::clone(&report)));
        report
    }
}

/// Finds one cycle in a successor-list graph via Kahn's algorithm plus a
/// predecessor walk through the residual (cyclic) node set. Returns the
/// cycle's node ids in dependency order (each node's edge leads to the
/// next; the last closes back to the first), or `None` for a DAG.
pub(crate) fn cycle_path(succ: &[&[usize]]) -> Option<Vec<usize>> {
    let n = succ.len();
    let mut indeg = vec![0usize; n];
    for outs in succ {
        for &v in *outs {
            indeg[v] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if seen == n {
        return None;
    }
    // Every residual node (indeg > 0 after Kahn) has at least one residual
    // predecessor, so walking predecessors from any residual node must
    // revisit a node — that revisit closes a cycle. (A successor walk can
    // dead-end on a node merely *fed by* the cycle.)
    let residual: Vec<bool> = indeg.iter().map(|&d| d > 0).collect();
    let start = residual.iter().position(|&r| r).expect("residual nonempty");
    let mut pred_in_residual = vec![usize::MAX; n];
    for u in 0..n {
        if residual[u] {
            for &v in succ[u] {
                if residual[v] {
                    pred_in_residual[v] = u;
                }
            }
        }
    }
    let mut walk = Vec::new();
    let mut pos = vec![usize::MAX; n];
    let mut cur = start;
    loop {
        if pos[cur] != usize::MAX {
            // Closed a cycle: walk[pos[cur]..] visited predecessors from
            // `cur` back around to `cur`; reverse for dependency order.
            let mut cycle: Vec<usize> = walk[pos[cur]..].to_vec();
            cycle.reverse();
            return Some(cycle);
        }
        pos[cur] = walk.len();
        walk.push(cur);
        cur = pred_in_residual[cur];
        debug_assert_ne!(cur, usize::MAX, "residual node without residual pred");
    }
}

/// A host-buffer access contributed by one task.
struct Access {
    node: usize,
    write: bool,
}

/// Runs every lint over the builder's current nodes.
pub(crate) fn run(b: &Builder) -> Report {
    let n = b.nodes.len();
    let succ: Vec<&[usize]> = b.nodes.iter().map(|nd| nd.succ.as_slice()).collect();
    let mut diagnostics = Vec::new();

    // HF001: cycle with full path.
    let cycle = cycle_path(&succ);
    if let Some(ids) = &cycle {
        let tasks: Vec<String> = ids.iter().map(|&i| b.nodes[i].name.clone()).collect();
        let message = format!(
            "tasks form a dependency cycle: {} -> '{}'; the graph cannot be scheduled",
            tasks
                .iter()
                .map(|t| format!("'{t}'"))
                .collect::<Vec<_>>()
                .join(" -> "),
            tasks[0]
        );
        diagnostics.push(Diagnostic {
            code: "HF001",
            severity: Severity::Error,
            tasks,
            task_ids: ids.clone(),
            message,
        });
    }

    // HF007: unassigned placeholders (executing one fails with EmptyTask).
    for (i, node) in b.nodes.iter().enumerate() {
        if matches!(node.work, Work::Empty) {
            diagnostics.push(Diagnostic {
                code: "HF007",
                severity: Severity::Error,
                tasks: vec![node.name.clone()],
                task_ids: vec![i],
                message: format!(
                    "placeholder '{}' was never assigned work; executing it fails with EmptyTask",
                    node.name
                ),
            });
        }
    }

    // Which pulls feed a kernel, and which feed a push (local dataflow).
    let mut pull_feeds_kernel = vec![false; n];
    let mut pull_feeds_push = vec![false; n];
    for node in &b.nodes {
        match &node.work {
            Work::Kernel { sources, .. } => {
                for &p in sources {
                    pull_feeds_kernel[p] = true;
                }
            }
            Work::Push { source_pull, .. } => {
                pull_feeds_push[*source_pull] = true;
            }
            _ => {}
        }
    }

    for (i, node) in b.nodes.iter().enumerate() {
        match &node.work {
            // HF004: push of device data no kernel computes — the push
            // stores exactly the bytes its pull copied up.
            Work::Push { source_pull, .. } if !pull_feeds_kernel[*source_pull] => {
                diagnostics.push(Diagnostic {
                    code: "HF004",
                    severity: Severity::Warning,
                    tasks: vec![node.name.clone(), b.nodes[*source_pull].name.clone()],
                    task_ids: vec![i, *source_pull],
                    message: format!(
                        "push '{}' writes back device data of pull '{}' that no kernel \
                         computes; it stores exactly the bytes the pull copied",
                        node.name, b.nodes[*source_pull].name
                    ),
                });
            }
            // HF005: dead pull — nothing consumes the device data.
            Work::Pull { .. } if !pull_feeds_kernel[i] && !pull_feeds_push[i] => {
                diagnostics.push(Diagnostic {
                    code: "HF005",
                    severity: Severity::Warning,
                    tasks: vec![node.name.clone()],
                    task_ids: vec![i],
                    message: format!(
                        "pull '{}' copies data to the device but no kernel or push \
                         consumes it; the transfer is dead",
                        node.name
                    ),
                });
            }
            _ => {}
        }
    }

    // Path-based lints need an acyclic graph and a bounded closure.
    if cycle.is_none() {
        if n > MAX_CLOSURE_TASKS {
            diagnostics.push(Diagnostic {
                code: "HF008",
                severity: Severity::Info,
                tasks: Vec::new(),
                task_ids: Vec::new(),
                message: format!(
                    "graph has {n} tasks, above the {MAX_CLOSURE_TASKS}-task limit for \
                     path-based lints; race (HF002), ordering (HF003) and redundant-edge \
                     (HF006) checks were skipped"
                ),
            });
        } else if n > 0 {
            path_lints(b, &succ, &mut diagnostics);
        }
    }

    diagnostics.sort_by(|a, d| {
        d.severity
            .cmp(&a.severity)
            .then(a.code.cmp(d.code))
            .then(a.task_ids.first().cmp(&d.task_ids.first()))
    });
    Report {
        graph: b.name.clone(),
        diagnostics,
    }
}

/// HF002 (races), HF003 (use-before-pull), HF006 (redundant edges): all
/// the lints that need the ancestor closure. Requires an acyclic graph.
fn path_lints(b: &Builder, succ: &[&[usize]], diagnostics: &mut Vec<Diagnostic>) {
    let n = b.nodes.len();
    let stride = n.div_ceil(64);

    // Topological order (acyclicity was already established).
    let mut indeg: Vec<usize> = b.nodes.iter().map(|nd| nd.pred.len()).collect();
    let mut topo: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut cursor = 0;
    while cursor < topo.len() {
        let u = topo[cursor];
        cursor += 1;
        for &v in succ[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                topo.push(v);
            }
        }
    }
    debug_assert_eq!(topo.len(), n);

    // anc[v] = bitset of all proper ancestors of v.
    let mut anc = vec![0u64; n * stride];
    for &v in &topo {
        for &p in &b.nodes[v].pred {
            for w in 0..stride {
                let bits = anc[p * stride + w];
                anc[v * stride + w] |= bits;
            }
            anc[v * stride + p / 64] |= 1u64 << (p % 64);
        }
    }
    let ordered = |a: usize, b_: usize| {
        anc[b_ * stride + a / 64] >> (a % 64) & 1 == 1
            || anc[a * stride + b_ / 64] >> (b_ % 64) & 1 == 1
    };

    // HF003: a kernel (or push) must be a descendant of each pull it uses,
    // or at runtime it races the H2D copy (SourceNotPulled /
    // PushBeforePull).
    let is_ancestor =
        |a: usize, d: usize| anc[d * stride + a / 64] >> (a % 64) & 1 == 1;
    for (i, node) in b.nodes.iter().enumerate() {
        match &node.work {
            Work::Kernel { sources, .. } => {
                for &p in sources {
                    if !is_ancestor(p, i) {
                        diagnostics.push(Diagnostic {
                            code: "HF003",
                            severity: Severity::Error,
                            tasks: vec![node.name.clone(), b.nodes[p].name.clone()],
                            task_ids: vec![i, p],
                            message: format!(
                                "kernel '{}' reads device data of pull '{}' but has no \
                                 dependency path from it; add pull.precede(kernel)",
                                node.name, b.nodes[p].name
                            ),
                        });
                    }
                }
            }
            Work::Push { source_pull, .. } if !is_ancestor(*source_pull, i) => {
                diagnostics.push(Diagnostic {
                    code: "HF003",
                    severity: Severity::Error,
                    tasks: vec![node.name.clone(), b.nodes[*source_pull].name.clone()],
                    task_ids: vec![i, *source_pull],
                    message: format!(
                        "push '{}' copies device data of pull '{}' but has no \
                         dependency path from it; add pull.precede(push)",
                        node.name, b.nodes[*source_pull].name
                    ),
                });
            }
            _ => {}
        }
    }

    // HF002: unordered accesses to one host buffer with at least one
    // writer. Buffer identity comes from source_id/sink_id/declared ids.
    let mut accesses: BTreeMap<usize, Vec<Access>> = BTreeMap::new();
    for (i, node) in b.nodes.iter().enumerate() {
        match &node.work {
            Work::Pull { source } => {
                if let Some(id) = source.source_id() {
                    accesses.entry(id).or_default().push(Access {
                        node: i,
                        write: false,
                    });
                }
            }
            Work::Push { sink, .. } => {
                if let Some(id) = sink.sink_id() {
                    accesses.entry(id).or_default().push(Access {
                        node: i,
                        write: true,
                    });
                }
            }
            Work::Host(_) => {
                for &id in &node.reads {
                    accesses.entry(id).or_default().push(Access {
                        node: i,
                        write: false,
                    });
                }
                for &id in &node.writes {
                    accesses.entry(id).or_default().push(Access {
                        node: i,
                        write: true,
                    });
                }
            }
            _ => {}
        }
    }
    let mut reported: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for accs in accesses.values() {
        for (ai, a) in accs.iter().enumerate() {
            for acc_b in &accs[ai + 1..] {
                if a.node == acc_b.node || !(a.write || acc_b.write) {
                    continue;
                }
                let pair = (a.node.min(acc_b.node), a.node.max(acc_b.node));
                if ordered(pair.0, pair.1) || !reported.insert(pair) {
                    continue;
                }
                let (x, y) = pair;
                diagnostics.push(Diagnostic {
                    code: "HF002",
                    severity: Severity::Error,
                    tasks: vec![b.nodes[x].name.clone(), b.nodes[y].name.clone()],
                    task_ids: vec![x, y],
                    message: format!(
                        "'{}' and '{}' access the same host buffer with no dependency \
                         path between them and at least one writes; execution order is \
                         nondeterministic — add an ordering edge",
                        b.nodes[x].name, b.nodes[y].name
                    ),
                });
            }
        }
    }

    // HF006: an edge u -> v is redundant when some other predecessor of v
    // is itself a descendant of u (a longer path already orders them).
    for (u, u_succ) in succ.iter().enumerate().take(n) {
        for &v in *u_succ {
            let redundant = b.nodes[v]
                .pred
                .iter()
                .any(|&w| w != u && is_ancestor(u, w));
            if redundant {
                diagnostics.push(Diagnostic {
                    code: "HF006",
                    severity: Severity::Info,
                    tasks: vec![b.nodes[u].name.clone(), b.nodes[v].name.clone()],
                    task_ids: vec![u, v],
                    message: format!(
                        "edge '{}' -> '{}' is redundant: a longer dependency path \
                         already orders them",
                        b.nodes[u].name, b.nodes[v].name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;

    #[test]
    fn clean_saxpy_graph_has_no_findings() {
        let g = Heteroflow::new("saxpy");
        let x: HostVec<i32> = HostVec::new();
        let y: HostVec<i32> = HostVec::new();
        let hx = g.host("host_x", || {});
        let hy = g.host("host_y", || {});
        let px = g.pull("pull_x", &x);
        let py = g.pull("pull_y", &y);
        let k = g.kernel("saxpy", &[&px, &py], |_, _| {});
        let sx = g.push("push_x", &px, &x);
        let sy = g.push("push_y", &py, &y);
        hx.precede(&px);
        hy.precede(&py);
        k.succeed(&px).succeed(&py);
        k.precede(&sx).precede(&sy);
        let r = g.analyze();
        assert!(r.is_clean(), "unexpected findings:\n{}", r.render_text());
    }

    #[test]
    fn unordered_pushes_to_one_buffer_race() {
        let g = Heteroflow::new("race");
        let x: HostVec<i32> = HostVec::from_vec(vec![1]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s1 = g.push("s1", &p, &x);
        let s2 = g.push("s2", &p, &x);
        p.precede(&k);
        k.precede(&s1).precede(&s2); // s1 and s2 unordered, both write x
        let r = g.analyze();
        let race: Vec<_> = r.with_code("HF002").collect();
        assert_eq!(race.len(), 1, "report:\n{}", r.render_text());
        assert_eq!(race[0].tasks, vec!["s1", "s2"]);
        assert!(r.has_errors());
    }

    #[test]
    fn ordering_edge_suppresses_race() {
        let g = Heteroflow::new("ordered");
        let x: HostVec<i32> = HostVec::from_vec(vec![1]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s1 = g.push("s1", &p, &x);
        let s2 = g.push("s2", &p, &x);
        p.precede(&k);
        k.precede(&s1);
        s1.precede(&s2); // transitive path k -> s1 -> s2 orders the writes
        k.precede(&s2); // also makes this edge redundant (HF006)
        let r = g.analyze();
        assert_eq!(r.with_code("HF002").count(), 0, "{}", r.render_text());
        let redundant: Vec<_> = r.with_code("HF006").collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].tasks, vec!["k", "s2"]);
    }

    #[test]
    fn declared_host_access_races_with_pull() {
        let g = Heteroflow::new("hostrace");
        let x: HostVec<i32> = HostVec::from_vec(vec![1]);
        let h = g.host("fill", || {});
        h.writes(&x);
        let p = g.pull("pull_x", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        p.precede(&k); // but h is unordered with p
        let r = g.analyze();
        let race: Vec<_> = r.with_code("HF002").collect();
        assert_eq!(race.len(), 1, "{}", r.render_text());
        assert_eq!(race[0].tasks, vec!["fill", "pull_x"]);
    }

    #[test]
    fn kernel_without_path_from_pull_is_flagged() {
        let g = Heteroflow::new("nopath");
        let x: HostVec<i32> = HostVec::from_vec(vec![1]);
        let p = g.pull("p", &x);
        let _k = g.kernel("k", &[&p], |_, _| {});
        // Missing p.precede(k).
        let r = g.analyze();
        assert_eq!(r.with_code("HF003").count(), 1, "{}", r.render_text());
    }

    #[test]
    fn cycle_reports_full_path() {
        let g = Heteroflow::new("cyc");
        let a = g.host("a", || {});
        let b = g.host("b", || {});
        a.precede(&b);
        b.precede(&a);
        let r = g.analyze();
        let cyc: Vec<_> = r.with_code("HF001").collect();
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0].tasks.len(), 2);
    }

    #[test]
    fn report_caches_per_epoch() {
        let g = Heteroflow::new("cache");
        g.host("a", || {});
        let r1 = g.analyze();
        let r2 = g.analyze();
        assert!(Arc::ptr_eq(&r1, &r2));
        g.host("b", || {});
        let r3 = g.analyze();
        assert!(!Arc::ptr_eq(&r1, &r3));
    }

    #[test]
    fn renderers_cover_every_field() {
        let g = Heteroflow::new("render\"me");
        g.placeholder("ph");
        let r = g.analyze();
        assert!(!r.is_clean());
        let text = r.render_text();
        assert!(text.contains("HF007") && text.contains("ph"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"code\":\"HF007\""), "{json}");
        assert!(json.contains("render\\\"me"), "escapes quotes: {json}");
        assert!(json.contains("\"task_ids\":[0]"), "{json}");
    }

    #[test]
    fn cycle_path_recovers_dependency_order() {
        // 0 -> 1 -> 2 -> 0, plus 3 fed by the cycle (dead-ends a successor
        // walk) and source 4 feeding into it.
        let succ: Vec<&[usize]> = vec![&[1], &[2, 3], &[0], &[], &[0]];
        let cycle = cycle_path(&succ).expect("cycle exists");
        assert_eq!(cycle.len(), 3);
        // Each node's successor list contains the next node in the path.
        for (i, &u) in cycle.iter().enumerate() {
            let v = cycle[(i + 1) % cycle.len()];
            assert!(succ[u].contains(&v), "edge {u} -> {v} missing");
        }
    }

    #[test]
    fn cycle_path_none_for_dag() {
        let succ: Vec<&[usize]> = vec![&[1, 2], &[3], &[3], &[]];
        assert!(cycle_path(&succ).is_none());
    }
}
