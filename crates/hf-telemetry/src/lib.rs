//! Unified telemetry for the Heteroflow runtime.
//!
//! The runtime's observability primitives live where the data is
//! produced: `hf-core` records CPU+GPU spans ([`hf_core::TraceCollector`]
//! wired via [`hf_core::ExecutorBuilder::tracer`]), `hf-gpu` counts
//! device/pool traffic, and `hf-sim` emits modeled schedules. This crate
//! is the *consumer* layer that turns those raw sources into artifacts:
//!
//! * [`metrics`] — a registry unifying [`hf_core::StatsSnapshot`],
//!   device/pool statistics, and span-derived histograms into named
//!   counters/gauges/histograms with JSON and Prometheus text exposition.
//! * [`export`] — Perfetto / `chrome://tracing` trace export with
//!   process/thread naming metadata, for executor spans and simulated
//!   schedules alike.
//! * [`critpath`] — a post-run critical-path analyzer that walks recorded
//!   spans along the graph's dependency edges and reports the longest
//!   chain with per-kind time attribution.
//! * [`health`] — the runtime health layer: a task-lifecycle flight
//!   recorder ("black box"), latency attribution (queue delay / exec /
//!   run latency histograms), and a straggler/hang watchdog.
//! * [`serve`] — a dependency-free live HTTP endpoint exposing
//!   `/metrics` (Prometheus), `/health`, `/runs`, and `/flight`.

#![warn(missing_docs)]

pub mod critpath;
pub mod export;
pub mod health;
pub mod metrics;
pub mod serve;

pub use critpath::{critical_path, CriticalPathReport, PathStep};
pub use export::{chrome_trace, spans_from_sim};
pub use health::{
    FlightRecorder, HealthEvent, HealthVerdict, RunProgress, RunSummary, TenantLatency, Watchdog,
    WatchdogConfig,
};
pub use metrics::MetricsRegistry;
pub use serve::{HealthHub, HealthServer};
