//! Device placement — Algorithm 1 of the paper.
//!
//! "The key idea is to group each kernel with its source pull tasks and
//! then pack each unique group to a GPU bin with an optimized cost. By
//! default, we minimize the load per GPU bins for maximal concurrency but
//! can expose this strategy to a pluggable interface for custom cost
//! metrics" (§III-C).
//!
//! Grouping uses union-find over the kernel→source-pull relation; packing
//! assigns each group root to a GPU bin. Push tasks inherit the device of
//! their source pull task (their stream "is guaranteed to live in the same
//! GPU context as the source pull task", Listing 6 discussion).

use crate::error::HfError;
use crate::graph::{FrozenGraph, TaskKind, Work};
use crate::inspect::GraphInfo;
use hf_gpu::CostModel;
use hf_sync::UnionFind;

/// A placement-relevant view of a graph. Implemented by the executable
/// [`FrozenGraph`] and by the structural [`GraphInfo`] snapshot, so the
/// identical Algorithm 1 runs both inside the executor and inside the
/// `hf-sim` performance model.
pub trait PlacementView {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Task kind of node `i`.
    fn kind_of(&self, i: usize) -> TaskKind;
    /// Source pull tasks of kernel `i` (empty otherwise).
    fn kernel_sources(&self, i: usize) -> Vec<usize>;
    /// Source pull task of push `i`.
    fn push_source(&self, i: usize) -> Option<usize>;
    /// Node name (for error messages).
    fn name_of(&self, i: usize) -> String;
    /// Modeled device-time weight of node `i` for bin packing.
    fn weight_of(&self, i: usize, cost: &CostModel) -> f64;
}

impl PlacementView for FrozenGraph {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn kind_of(&self, i: usize) -> TaskKind {
        self.nodes[i].work.kind()
    }

    fn kernel_sources(&self, i: usize) -> Vec<usize> {
        match &self.nodes[i].work {
            Work::Kernel { sources, .. } => sources.clone(),
            _ => Vec::new(),
        }
    }

    fn push_source(&self, i: usize) -> Option<usize> {
        match &self.nodes[i].work {
            Work::Push { source_pull, .. } => Some(*source_pull),
            _ => None,
        }
    }

    fn name_of(&self, i: usize) -> String {
        self.nodes[i].name.clone()
    }

    fn weight_of(&self, i: usize, cost: &CostModel) -> f64 {
        node_weight(self, i, cost)
    }
}

impl PlacementView for GraphInfo {
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn kind_of(&self, i: usize) -> TaskKind {
        self.nodes[i].kind
    }

    fn kernel_sources(&self, i: usize) -> Vec<usize> {
        self.nodes[i].sources.clone()
    }

    fn push_source(&self, i: usize) -> Option<usize> {
        self.nodes[i].source_pull
    }

    fn name_of(&self, i: usize) -> String {
        self.nodes[i].name.clone()
    }

    fn weight_of(&self, i: usize, cost: &CostModel) -> f64 {
        let n = &self.nodes[i];
        match n.kind {
            TaskKind::Pull => cost.h2d(n.bytes).as_nanos() as f64,
            TaskKind::Kernel => cost.kernel(n.effective_work_units()).as_nanos() as f64,
            _ => 0.0,
        }
    }
}

/// Strategy for packing task groups onto GPU bins. `BalancedLoad` is the
/// paper's default; the others exist as ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum PlacementPolicy {
    /// Longest-processing-time greedy: heaviest group to the least-loaded
    /// bin (minimizes the maximum per-GPU load).
    #[default]
    BalancedLoad,
    /// Groups assigned cyclically in discovery order, ignoring weight.
    RoundRobin,
    /// Uniformly random bin per group (deterministic given the seed).
    Random {
        /// PRNG seed.
        seed: u64,
    },
}


/// Result of device placement for one topology.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Device per node; `None` for host/placeholder tasks.
    pub device_of: Vec<Option<u32>>,
    /// Number of kernel/pull groups found.
    pub num_groups: usize,
    /// Modeled load per GPU bin after packing, including any initial
    /// loads passed to [`device_placement_biased`] (nanoseconds).
    pub loads: Vec<f64>,
}

impl Placement {
    /// Max/min bin load ratio — 1.0 is perfectly balanced. Returns 1.0
    /// when any bin is empty-free (no meaningful ratio).
    pub fn imbalance(&self) -> f64 {
        let max = self.loads.iter().cloned().fold(0.0f64, f64::max);
        let min = self.loads.iter().cloned().fold(f64::INFINITY, f64::min);
        if min <= 0.0 || !min.is_finite() {
            1.0
        } else {
            max / min
        }
    }
}

/// Modeled weight of one node for bin packing, in nanoseconds of device
/// time.
fn node_weight(graph: &FrozenGraph, id: usize, cost: &CostModel) -> f64 {
    let node = &graph.nodes[id];
    match &node.work {
        Work::Pull { source } => cost.h2d(source.byte_len()).as_nanos() as f64,
        Work::Kernel { .. } => {
            let units = node.work_units.max(node.cfg.total_threads() as f64);
            cost.kernel(units).as_nanos() as f64
        }
        _ => 0.0,
    }
}

/// Runs Algorithm 1 (*DevicePlacement*) on any [`PlacementView`].
///
/// Returns [`HfError::NoGpus`] if the graph contains GPU tasks but
/// `num_gpus == 0`.
pub fn device_placement<G: PlacementView + ?Sized>(
    graph: &G,
    num_gpus: u32,
    policy: PlacementPolicy,
    cost: &CostModel,
) -> Result<Placement, HfError> {
    device_placement_biased(graph, num_gpus, policy, cost, &[])
}

/// [`device_placement`] with pre-existing per-device load (nanoseconds).
///
/// A live executor runs many topologies; biasing each topology's packing
/// with the load already placed on each GPU keeps devices balanced
/// *across* graphs, not just within one. The executor feeds its
/// cumulative loads here. An empty slice means no initial load.
pub fn device_placement_biased<G: PlacementView + ?Sized>(
    graph: &G,
    num_gpus: u32,
    policy: PlacementPolicy,
    cost: &CostModel,
    initial_loads: &[f64],
) -> Result<Placement, HfError> {
    let n = graph.num_nodes();
    let mut device_of: Vec<Option<u32>> = vec![None; n];
    let mut loads = vec![0.0f64; num_gpus as usize];
    for (l, &init) in loads.iter_mut().zip(initial_loads) {
        *l = init;
    }

    // Reject GPU work with no GPUs.
    if num_gpus == 0 {
        if let Some(id) = (0..n).find(|&i| {
            matches!(
                graph.kind_of(i),
                TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
            )
        }) {
            return Err(HfError::NoGpus {
                task: graph.name_of(id),
            });
        }
        return Ok(Placement {
            device_of,
            num_groups: 0,
            loads,
        });
    }

    // Lines 1-7: union each kernel with its source pull tasks.
    let mut uf = UnionFind::new(n);
    for id in 0..n {
        if graph.kind_of(id) == TaskKind::Kernel {
            for p in graph.kernel_sources(id) {
                uf.union(id, p);
            }
        }
    }

    // Lines 8-14: pack each unique group root onto a GPU bin. Collect
    // groups first so the balanced policy can sort by weight.
    let mut group_weight: std::collections::HashMap<usize, f64> = Default::default();
    let mut group_members: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for id in 0..n {
        let k = graph.kind_of(id);
        if k == TaskKind::Kernel || k == TaskKind::Pull {
            let root = uf.find(id);
            *group_weight.entry(root).or_insert(0.0) += graph.weight_of(id, cost);
            group_members.entry(root).or_default().push(id);
        }
    }

    let mut groups: Vec<(usize, f64)> = group_weight.into_iter().collect();
    // Deterministic order regardless of hash iteration.
    groups.sort_by_key(|&(root, _)| root);

    match policy {
        PlacementPolicy::BalancedLoad => {
            // LPT greedy: heaviest first onto the least-loaded bin.
            groups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
            for (root, w) in groups {
                let bin = loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                    .map(|(i, _)| i)
                    .expect("num_gpus > 0");
                loads[bin] += w;
                for &m in &group_members[&root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
        PlacementPolicy::RoundRobin => {
            for (gi, (root, w)) in groups.iter().enumerate() {
                let bin = gi % num_gpus as usize;
                loads[bin] += w;
                for &m in &group_members[root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
        PlacementPolicy::Random { seed } => {
            // splitmix64 stream; deterministic and dependency-free.
            let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            for (root, w) in &groups {
                let bin = (next() % num_gpus as u64) as usize;
                loads[bin] += w;
                for &m in &group_members[root] {
                    device_of[m] = Some(bin as u32);
                }
            }
        }
    }

    // Push tasks inherit the device of their source pull.
    for id in 0..n {
        if let Some(src) = graph.push_source(id) {
            device_of[id] = device_of[src];
        }
    }

    let num_groups = group_members.len();
    Ok(Placement {
        device_of,
        num_groups,
        loads,
    })
}

/// Re-placement after device loss: keeps every group whose device is still
/// alive where it is, and LPT-packs the stranded groups (device lost, or
/// never placed when `old_device_of` is empty) onto the surviving bins.
///
/// `old_device_of` is the current `device_of` (may be empty to place
/// everything fresh against the alive set), and `lost[d]` marks device `d`
/// as dead. Returns [`HfError::NoGpus`] if GPU tasks exist but every
/// device is lost.
pub fn failover_placement<G: PlacementView + ?Sized>(
    graph: &G,
    old_device_of: &[Option<u32>],
    lost: &[bool],
    cost: &CostModel,
) -> Result<Placement, HfError> {
    let n = graph.num_nodes();
    let num_gpus = lost.len() as u32;
    let alive: Vec<usize> = (0..lost.len()).filter(|&d| !lost[d]).collect();
    let mut device_of: Vec<Option<u32>> = vec![None; n];
    let mut loads = vec![0.0f64; num_gpus as usize];

    if alive.is_empty() {
        if let Some(id) = (0..n).find(|&i| {
            matches!(
                graph.kind_of(i),
                TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
            )
        }) {
            return Err(HfError::NoGpus {
                task: graph.name_of(id),
            });
        }
        return Ok(Placement {
            device_of,
            num_groups: 0,
            loads,
        });
    }

    // Same grouping as Algorithm 1: union kernels with their source pulls.
    let mut uf = UnionFind::new(n);
    for id in 0..n {
        if graph.kind_of(id) == TaskKind::Kernel {
            for p in graph.kernel_sources(id) {
                uf.union(id, p);
            }
        }
    }
    let mut group_weight: std::collections::HashMap<usize, f64> = Default::default();
    let mut group_members: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for id in 0..n {
        let k = graph.kind_of(id);
        if k == TaskKind::Kernel || k == TaskKind::Pull {
            let root = uf.find(id);
            *group_weight.entry(root).or_insert(0.0) += graph.weight_of(id, cost);
            group_members.entry(root).or_default().push(id);
        }
    }
    let num_groups = group_members.len();

    // Partition: groups on an alive device stay put; the rest re-pack.
    let mut stranded: Vec<(usize, f64)> = Vec::new();
    let mut groups: Vec<(usize, f64)> = group_weight.into_iter().collect();
    groups.sort_by_key(|&(root, _)| root);
    for (root, w) in groups {
        let old = group_members[&root]
            .iter()
            .find_map(|&m| old_device_of.get(m).copied().flatten());
        match old {
            Some(d) if !lost.get(d as usize).copied().unwrap_or(true) => {
                loads[d as usize] += w;
                for &m in &group_members[&root] {
                    device_of[m] = Some(d);
                }
            }
            _ => stranded.push((root, w)),
        }
    }

    // LPT greedy over the alive bins only.
    stranded.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
    for (root, w) in stranded {
        let bin = *alive
            .iter()
            .min_by(|&&a, &&b| loads[a].partial_cmp(&loads[b]).expect("loads are finite"))
            .expect("alive is non-empty");
        loads[bin] += w;
        for &m in &group_members[&root] {
            device_of[m] = Some(bin as u32);
        }
    }

    // Push tasks inherit the device of their source pull.
    for id in 0..n {
        if let Some(src) = graph.push_source(id) {
            device_of[id] = device_of[src];
        }
    }

    Ok(Placement {
        device_of,
        num_groups,
        loads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;

    /// Two kernels sharing a pull task must co-locate with it; an
    /// unrelated pull/kernel pair forms a second group.
    #[test]
    fn kernels_group_with_their_pulls() {
        let g = Heteroflow::new("grp");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 1024]);
        let y: HostVec<i32> = HostVec::from_vec(vec![0; 1024]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &y);
        let k1 = g.kernel("k1", &[&px], |_, _| {});
        let k2 = g.kernel("k2", &[&px], |_, _| {});
        let k3 = g.kernel("k3", &[&py], |_, _| {});
        px.precede(&k1).precede(&k2);
        py.precede(&k3);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 2);
        let d_px = p.device_of[px.id()].unwrap();
        assert_eq!(p.device_of[k1.id()], Some(d_px));
        assert_eq!(p.device_of[k2.id()], Some(d_px));
        let d_py = p.device_of[py.id()].unwrap();
        assert_eq!(p.device_of[k3.id()], Some(d_py));
        // Two groups on 4 GPUs must use two distinct devices (balanced).
        assert_ne!(d_px, d_py);
    }

    /// A kernel bridging two pulls merges all three into one group.
    #[test]
    fn shared_kernel_merges_groups() {
        let g = Heteroflow::new("merge");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let px = g.pull("px", &x);
        let py = g.pull("py", &x);
        let k = g.kernel("k", &[&px, &py], |_, _| {});
        px.precede(&k);
        py.precede(&k);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 1);
        let d = p.device_of[k.id()];
        assert_eq!(p.device_of[px.id()], d);
        assert_eq!(p.device_of[py.id()], d);
    }

    #[test]
    fn push_inherits_pull_device() {
        let g = Heteroflow::new("push");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 16]);
        let px = g.pull("px", &x);
        let s = g.push("push_x", &px, &x);
        px.precede(&s);
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 2, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.device_of[s.id()], p.device_of[px.id()]);
    }

    #[test]
    fn host_tasks_have_no_device() {
        let g = Heteroflow::new("h");
        let h = g.host("h", || {});
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 2, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.device_of[h.id()], None);
        assert_eq!(p.num_groups, 0);
    }

    #[test]
    fn gpu_task_with_zero_gpus_errors() {
        let g = Heteroflow::new("nogpu");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 4]);
        g.pull("px", &x);
        let f = g.freeze().unwrap();
        assert!(matches!(
            device_placement(&*f, 0, PlacementPolicy::BalancedLoad, &CostModel::default()),
            Err(HfError::NoGpus { .. })
        ));
    }

    #[test]
    fn cpu_only_graph_with_zero_gpus_is_fine() {
        let g = Heteroflow::new("cpu");
        g.host("a", || {});
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 0, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert!(p.device_of.iter().all(|d| d.is_none()));
    }

    /// Balanced packing of many equal groups spreads them evenly.
    #[test]
    fn balanced_load_is_balanced() {
        let g = Heteroflow::new("bal");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 4096]);
        for i in 0..12 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
        }
        let f = g.freeze().unwrap();
        let p = device_placement(&*f, 4, PlacementPolicy::BalancedLoad, &CostModel::default())
            .unwrap();
        assert_eq!(p.num_groups, 12);
        assert!(p.imbalance() < 1.01, "imbalance {}", p.imbalance());
        // Every device hosts exactly 3 groups' worth of load.
        let per_dev: Vec<usize> = (0..4)
            .map(|d| {
                p.device_of
                    .iter()
                    .filter(|x| **x == Some(d as u32))
                    .count()
            })
            .collect();
        assert_eq!(per_dev, vec![6, 6, 6, 6]); // 3 groups x (pull + kernel)
    }

    /// Random placement is deterministic for a fixed seed.
    #[test]
    fn random_policy_deterministic() {
        let g = Heteroflow::new("rand");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 64]);
        for i in 0..8 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
        }
        let f = g.freeze().unwrap();
        let a = device_placement(&*f, 4, PlacementPolicy::Random { seed: 7 }, &CostModel::default())
            .unwrap();
        let b = device_placement(&*f, 4, PlacementPolicy::Random { seed: 7 }, &CostModel::default())
            .unwrap();
        assert_eq!(a.device_of, b.device_of);
    }

    /// Failover keeps alive groups in place and re-packs stranded ones
    /// onto surviving devices only.
    #[test]
    fn failover_repacks_lost_groups_onto_survivors() {
        let g = Heteroflow::new("fo");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 1024]);
        let mut kernels = Vec::new();
        for i in 0..6 {
            let p = g.pull(&format!("p{i}"), &x);
            let k = g.kernel(&format!("k{i}"), &[&p], |_, _| {});
            p.precede(&k);
            kernels.push(k);
        }
        let f = g.freeze().unwrap();
        let cost = CostModel::default();
        let orig = device_placement(&*f, 3, PlacementPolicy::BalancedLoad, &cost).unwrap();
        // Lose device 1.
        let lost = vec![false, true, false];
        let fo = failover_placement(&*f, &orig.device_of, &lost, &cost).unwrap();
        assert_eq!(fo.num_groups, 6);
        for (i, (o, n)) in orig.device_of.iter().zip(&fo.device_of).enumerate() {
            let (Some(o), Some(n)) = (o, n) else { continue };
            assert_ne!(*n, 1, "node {i} still on the lost device");
            if *o != 1 {
                assert_eq!(o, n, "node {i} moved though its device survived");
            }
        }
        // Something was actually stranded and re-homed.
        assert!(orig.device_of.contains(&Some(1)));
    }

    /// Empty `old_device_of` places everything fresh on the alive set.
    #[test]
    fn failover_fresh_placement_avoids_lost_devices() {
        let g = Heteroflow::new("fo2");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 256]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        p.precede(&k);
        k.precede(&s);
        let f = g.freeze().unwrap();
        let fo =
            failover_placement(&*f, &[], &[true, false], &CostModel::default()).unwrap();
        assert_eq!(fo.device_of[p.id()], Some(1));
        assert_eq!(fo.device_of[k.id()], Some(1));
        // Push inherits the pull's (surviving) device.
        assert_eq!(fo.device_of[s.id()], Some(1));
    }

    /// All devices lost with GPU work → structured NoGpus error.
    #[test]
    fn failover_with_no_survivors_errors() {
        let g = Heteroflow::new("fo3");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 16]);
        g.pull("p", &x);
        let f = g.freeze().unwrap();
        assert!(matches!(
            failover_placement(&*f, &[], &[true, true], &CostModel::default()),
            Err(HfError::NoGpus { .. })
        ));
    }

    #[test]
    fn round_robin_cycles() {
        let g = Heteroflow::new("rr");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 64]);
        let mut pulls = Vec::new();
        for i in 0..6 {
            pulls.push(g.pull(&format!("p{i}"), &x));
        }
        let f = g.freeze().unwrap();
        let p =
            device_placement(&*f, 3, PlacementPolicy::RoundRobin, &CostModel::default()).unwrap();
        let devs: Vec<u32> = pulls.iter().map(|t| p.device_of[t.id()].unwrap()).collect();
        assert_eq!(devs, vec![0, 1, 2, 0, 1, 2]);
    }
}
