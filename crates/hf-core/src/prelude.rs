//! One-stop imports for the build-and-run surface of Heteroflow.
//!
//! `use hf_core::prelude::*;` brings in everything needed to build a
//! graph, configure an executor (including retry/failover policies and
//! fault injection), run it, and inspect the result:
//!
//! ```
//! use hf_core::prelude::*;
//!
//! let x: HostVec<i32> = HostVec::from_vec(vec![1, 2, 3]);
//! let executor = Executor::new(2, 1);
//! let g = Heteroflow::new("inc");
//! let pull = g.pull("pull", &x);
//! let kernel = g.kernel("inc", &[&pull], |cfg, args| {
//!     let xs = args.slice_mut::<i32>(0).unwrap();
//!     for i in cfg.threads() {
//!         if i < xs.len() { xs[i] += 1; }
//!     }
//! });
//! kernel.block_x(3);
//! let push = g.push("push", &pull, &x);
//! pull.precede(&kernel);
//! kernel.precede(&push);
//! executor.run(&g).wait().unwrap();
//! assert_eq!(&*x.read(), &[2, 3, 4]);
//! ```

pub use crate::admission::{
    AdmissionPolicy, Fifo, LaneView, StrictPriority, TenantConfig, TenantId, WeightedFair,
};
pub use crate::analyze::{Diagnostic, Report, Severity};
pub use crate::data::HostVec;
pub use crate::error::HfError;
pub use crate::executor::{Executor, ExecutorBuilder, LintPolicy};
pub use crate::fleet::{Fleet, FleetConfig, FleetSnapshot, TenantSnapshot};
pub use crate::graph::{FrozenGraph, Heteroflow, TaskKind};
pub use crate::lifecycle::{LifecycleEvent, LifecyclePhase};
pub use crate::observer::{SpanCat, TraceCollector, Track};
pub use crate::placement::{Placement, PlacementPolicy};
pub use crate::retry::{OnDeviceLoss, RetryPolicy};
pub use crate::stats::{ExecutorStats, StatsSnapshot};
pub use crate::stream::{EpochFuture, Session, StreamConfig};
pub use crate::task::{AsTask, HostTask, KernelTask, PullTask, PushTask, TaskRef};
pub use crate::topology::{CancelHandle, Completion, RunFuture};

// GPU substrate types that appear in the public API: device and launch
// configuration, kernel arguments, errors, and the fault injector.
pub use hf_gpu::{
    FaultPlan, FaultSite, GpuConfig, GpuError, GpuRuntime, KernelArgs, LaunchConfig,
};
