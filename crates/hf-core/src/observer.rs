//! Executor observers: task-level tracing hooks and the unified
//! CPU+GPU trace collector.
//!
//! An [`ExecutorObserver`] receives a callback around every task
//! execution (with worker id, task name/kind, and device for GPU tasks).
//! [`TraceCollector`] is the built-in observer that records spans and
//! serializes them in the Chrome trace-event format — open the output in
//! `chrome://tracing` or Perfetto to see the schedule, worker occupancy,
//! and CPU/GPU overlap.
//!
//! ## Device-side stitching
//!
//! **Historical bug, now fixed:** the original `TraceCollector` ended GPU
//! task spans when the *worker finished dispatching* the op to the device
//! stream, not when the op finished executing on the device. Every
//! kernel/pull/push span showed the (microsecond) dispatch cost instead
//! of the real device-side duration, so CPU/GPU overlap — the entire
//! point of the paper's asynchronous dispatch design — was invisible in
//! traces. The collector now doubles as a [`hf_gpu::GpuTraceSink`]: wire
//! it with [`crate::ExecutorBuilder::tracer`] and device engines report
//! true op start/finish times, which the collector merges with CPU worker
//! spans on one timeline ([`Track::Device`] vs [`Track::Worker`]). In
//! stitched mode the worker-side dispatch window is still recorded, as a
//! [`SpanCat::Dispatch`] span, so dispatch overhead stays measurable;
//! when the collector is used as a plain observer (no GPU wiring) the
//! legacy dispatch-time spans are all you get.
//!
//! Recording is designed for the hot path: spans go into per-worker and
//! per-device lock-free [`EventRing`]s, and a disabled collector
//! ([`TraceCollector::set_enabled`]) costs one atomic load per callback.

use crate::graph::TaskKind;
use hf_gpu::trace::{GpuOpKind, GpuTraceEvent, GpuTraceSink};
use hf_sync::EventRing;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-lane span buffer capacity (spans beyond this between
/// drains are dropped and counted).
const DEFAULT_LANE_CAPACITY: usize = 16 * 1024;

/// Identity of one task execution, passed to observer callbacks.
#[derive(Debug, Clone)]
pub struct TaskMeta<'a> {
    /// Worker running (or dispatching) the task.
    pub worker: usize,
    /// Task name.
    pub name: &'a str,
    /// Task kind.
    pub kind: TaskKind,
    /// Assigned device for GPU tasks.
    pub device: Option<u32>,
    /// Graph name.
    pub graph: &'a str,
}

/// Hooks invoked by the executor around task execution.
///
/// For host tasks, `on_task_end` fires when the callable returns. For GPU
/// tasks, it fires when the worker finishes *dispatching* — the op
/// completes asynchronously on the device. Use
/// [`crate::ExecutorBuilder::tracer`] to additionally capture device-side
/// completion times (see the module docs for the historical
/// dispatch-time-only bug).
pub trait ExecutorObserver: Send + Sync {
    /// Called before a task's body runs/dispatches.
    fn on_task_begin(&self, meta: &TaskMeta<'_>);
    /// Called after a task's body ran / was dispatched.
    fn on_task_end(&self, meta: &TaskMeta<'_>);
    /// Fast-path gate: when every registered observer reports inactive,
    /// the executor skips metadata construction and both callbacks
    /// entirely. Default `true`; [`TraceCollector`] returns its enabled
    /// flag so a wired-but-disabled tracer costs one relaxed load per
    /// task.
    fn is_active(&self) -> bool {
        true
    }
    /// Called on every task-lifecycle transition (ready, started,
    /// dispatched, finished, retried, run start/end — see
    /// [`crate::lifecycle::LifecyclePhase`]). Shares the
    /// [`ExecutorObserver::is_active`] fast path: with every observer
    /// inactive the executor never constructs the event. Default no-op so
    /// span-oriented observers ([`TraceCollector`]) are unaffected;
    /// `hf_telemetry`'s flight recorder overrides it.
    fn on_lifecycle(&self, event: &crate::lifecycle::LifecycleEvent) {
        let _ = event;
    }
}

/// The timeline a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A CPU worker thread.
    Worker(usize),
    /// A GPU device engine (device-side execution).
    Device(u32),
}

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCat {
    /// A task's execution (host body on a worker; device-side op
    /// duration for GPU tasks in stitched mode — or the legacy
    /// dispatch-time span in plain-observer mode).
    Task,
    /// The worker-side dispatch window of a GPU task (stitched mode).
    Dispatch,
    /// A raw device op not tied to a graph task.
    DeviceOp,
    /// Time a device stream spent blocked on an event wait.
    Wait,
    /// A device pool allocation.
    Alloc,
    /// A device pool free.
    Free,
    /// A stream-ordered host callback (completion handlers).
    Callback,
}

impl SpanCat {
    /// Stable lowercase name (used as the chrome-trace category for
    /// non-task spans).
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Task => "task",
            SpanCat::Dispatch => "dispatch",
            SpanCat::DeviceOp => "device_op",
            SpanCat::Wait => "wait",
            SpanCat::Alloc => "alloc",
            SpanCat::Free => "free",
            SpanCat::Callback => "callback",
        }
    }
}

/// One recorded span on the unified CPU+GPU timeline.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Timeline this span belongs to.
    pub track: Track,
    /// Task (or op) name.
    pub name: String,
    /// What the span measures.
    pub cat: SpanCat,
    /// Task kind ([`TaskKind::Placeholder`] for non-task device spans).
    pub kind: TaskKind,
    /// Device, for GPU-related spans.
    pub device: Option<u32>,
    /// Stream index, for device-side spans.
    pub stream: Option<usize>,
    /// Microseconds from collector creation.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Bytes moved/allocated, when meaningful.
    pub bytes: u64,
    /// Epoch index of the streaming epoch that issued the op, when the
    /// span came from a labeled device op of a [`crate::Session`] run.
    /// Span *names* stay epoch-free; use this field to attribute overlap
    /// across pipelined epochs.
    pub epoch: Option<u64>,
}

impl TraceSpan {
    /// End timestamp in microseconds from collector creation.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Worker id, when the span was recorded on a worker track.
    pub fn worker(&self) -> Option<usize> {
        match self.track {
            Track::Worker(w) => Some(w),
            Track::Device(_) => None,
        }
    }
}

/// Packs a task kind into the opaque device-op tag and back.
pub(crate) fn kind_to_tag(kind: TaskKind) -> u32 {
    match kind {
        TaskKind::Host => 0,
        TaskKind::Pull => 1,
        TaskKind::Push => 2,
        TaskKind::Kernel => 3,
        TaskKind::Placeholder => 4,
    }
}

fn kind_from_tag(tag: u32) -> TaskKind {
    match tag {
        0 => TaskKind::Host,
        1 => TaskKind::Pull,
        2 => TaskKind::Push,
        3 => TaskKind::Kernel,
        _ => TaskKind::Placeholder,
    }
}

/// A grow-only table of per-lane state with lock-free reads.
///
/// The current snapshot (a `Vec<Arc<T>>`) is published through an atomic
/// pointer; growth clones it under a mutex and publishes the new vector,
/// *retaining* every old snapshot until the table drops so concurrent
/// readers never observe a freed vector. Growth happens O(log n) times
/// (worker/device counts are small and fixed per executor), so retention
/// is bounded.
struct LaneTable<T> {
    current: AtomicPtr<Vec<Arc<T>>>,
    /// All snapshots ever published; the last one is `current`. The box
    /// is load-bearing: `current` points at the boxed `Vec` header, which
    /// must stay address-stable as this outer vector reallocates.
    #[allow(clippy::vec_box)]
    snapshots: Mutex<Vec<Box<Vec<Arc<T>>>>>,
}

impl<T> LaneTable<T> {
    fn new() -> Self {
        let first: Box<Vec<Arc<T>>> = Box::default();
        let ptr = &*first as *const Vec<Arc<T>> as *mut Vec<Arc<T>>;
        Self {
            current: AtomicPtr::new(ptr),
            snapshots: Mutex::new(vec![first]),
        }
    }

    /// Lane `i`, creating lanes up to `i` with `make` if needed.
    fn get(&self, i: usize, make: impl Fn() -> T) -> Arc<T> {
        loop {
            // Safety: the pointee is owned by `snapshots` and never freed
            // before `self` drops.
            let cur = unsafe { &*self.current.load(Ordering::Acquire) };
            if let Some(lane) = cur.get(i) {
                return Arc::clone(lane);
            }
            self.grow(i + 1, &make);
        }
    }

    /// Ensures at least `n` lanes exist.
    fn grow(&self, n: usize, make: &impl Fn() -> T) {
        let mut snaps = self.snapshots.lock();
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        if cur.len() >= n {
            return;
        }
        let mut next = cur.clone();
        while next.len() < n {
            next.push(Arc::new(make()));
        }
        let boxed = Box::new(next);
        let ptr = &*boxed as *const Vec<Arc<T>> as *mut Vec<Arc<T>>;
        snaps.push(boxed);
        self.current.store(ptr, Ordering::Release);
    }

    /// Clone of the current lane set.
    fn lanes(&self) -> Vec<Arc<T>> {
        // Safety: as in `get`.
        unsafe { (*self.current.load(Ordering::Acquire)).clone() }
    }
}

// Safety: the raw pointer always refers to a vector kept alive by
// `snapshots`; `T` is shared across threads only via `Arc`.
unsafe impl<T: Send + Sync> Send for LaneTable<T> {}
unsafe impl<T: Send + Sync> Sync for LaneTable<T> {}

/// Per-worker recording lane: a span ring plus the pending begin
/// timestamp (nanoseconds since the collector epoch, +1 so 0 = none).
struct CpuLane {
    ring: EventRing<TraceSpan>,
    begin_ns: AtomicU64,
}

/// Per-device recording lane.
struct DevLane {
    ring: EventRing<TraceSpan>,
}

/// Built-in observer recording every task span on a unified CPU+GPU
/// timeline. See the module docs for the stitched vs legacy (dispatch
/// time only) behaviour of GPU spans.
pub struct TraceCollector {
    epoch: Instant,
    enabled: AtomicBool,
    /// True once wired as a device trace sink: GPU task spans then come
    /// from the device side and worker-side windows demote to
    /// [`SpanCat::Dispatch`].
    stitching: AtomicBool,
    cpu: LaneTable<CpuLane>,
    dev: LaneTable<DevLane>,
    /// Spans moved out of the rings (the rings are bounded; `spans()` and
    /// periodic drains migrate them here).
    drained: Mutex<Vec<TraceSpan>>,
    lane_capacity: usize,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// Creates an empty collector with the default per-lane capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_LANE_CAPACITY)
    }

    /// Creates an empty collector whose per-lane span rings hold
    /// `lane_capacity` spans between drains.
    pub fn with_capacity(lane_capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            stitching: AtomicBool::new(false),
            cpu: LaneTable::new(),
            dev: LaneTable::new(),
            drained: Mutex::new(Vec::new()),
            lane_capacity,
        }
    }

    /// Shareable handle for [`crate::ExecutorBuilder::observer`] /
    /// [`crate::ExecutorBuilder::tracer`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The instant timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Enables/disables recording. Disabled, every callback returns after
    /// a single atomic load — telemetry can stay wired in production and
    /// be flipped on when needed.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// True once wired to a GPU runtime for device-side stitching.
    pub fn is_stitching(&self) -> bool {
        self.stitching.load(Ordering::Relaxed)
    }

    /// Wires this collector into `rt` as the device-side trace sink:
    /// device engines report true op start/finish times and GPU task
    /// spans move to device tracks. [`crate::ExecutorBuilder::tracer`]
    /// calls this automatically.
    pub fn connect_gpu(self: &Arc<Self>, rt: &hf_gpu::GpuRuntime) {
        rt.set_trace_sink(Some(Arc::clone(self) as Arc<dyn GpuTraceSink>));
        self.stitching.store(true, Ordering::Release);
    }

    /// Converts an instant to microseconds since the collector epoch.
    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Recorded spans so far (drains the lock-free rings), sorted by
    /// start time. Spans stay owned by the collector, so repeated calls
    /// return a growing history — for periodic scraping of a long-running
    /// executor use [`Self::take_spans`] instead.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let mut drained = self.drained.lock();
        for lane in self.cpu.lanes() {
            lane.ring.drain(|s| drained.push(s));
        }
        for lane in self.dev.lanes() {
            lane.ring.drain(|s| drained.push(s));
        }
        drained.sort_by_key(|a| (a.start_us, a.track));
        drained.clone()
    }

    /// Removes and returns every span recorded since the last call
    /// (sorted by start time). Unlike [`Self::spans`] the collector
    /// forgets them, so periodic scrapes stay O(new spans) instead of
    /// re-copying the whole history.
    pub fn take_spans(&self) -> Vec<TraceSpan> {
        let mut drained = self.drained.lock();
        for lane in self.cpu.lanes() {
            lane.ring.drain(|s| drained.push(s));
        }
        for lane in self.dev.lanes() {
            lane.ring.drain(|s| drained.push(s));
        }
        let mut out = std::mem::take(&mut *drained);
        out.sort_by_key(|a| (a.start_us, a.track));
        out
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped because a lane ring overflowed between drains.
    pub fn dropped(&self) -> u64 {
        let cpu: u64 = self.cpu.lanes().iter().map(|l| l.ring.dropped()).sum();
        let dev: u64 = self.dev.lanes().iter().map(|l| l.ring.dropped()).sum();
        cpu + dev
    }

    /// Serializes the spans as a Chrome trace-event JSON array
    /// (`chrome://tracing` / Perfetto compatible). CPU workers appear as
    /// threads of process 0; device `d` as process `1 + d` with one
    /// thread per stream. `hf_telemetry::export::chrome_trace` emits the
    /// same spans with process/thread naming metadata.
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            chrome_trace_event(&mut out, s);
        }
        out.push(']');
        out
    }
}

/// Writes one span as a chrome trace-event object (no surrounding
/// punctuation). Shared with the `hf-telemetry` exporter via the
/// formatting rules documented on [`TraceCollector::to_chrome_trace`].
pub fn chrome_trace_event(out: &mut String, s: &TraceSpan) {
    let (pid, tid) = match s.track {
        Track::Worker(w) => (0u64, w as u64),
        Track::Device(d) => (1 + d as u64, s.stream.unwrap_or(0) as u64),
    };
    let cat = match s.cat {
        SpanCat::Task => s.kind.to_string(),
        other => other.name().to_string(),
    };
    let mut args = String::new();
    if let Some(d) = s.device {
        args.push_str(&format!("\"device\":{d}"));
    }
    if s.bytes > 0 {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"bytes\":{}", s.bytes));
    }
    if !args.is_empty() {
        args.push(',');
    }
    args.push_str(&format!("\"cat\":\"{}\"", s.cat.name()));
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
        s.name.replace('\\', "\\\\").replace('"', "'"),
        cat,
        s.start_us,
        s.dur_us.max(1),
        pid,
        tid,
        args
    ));
}

impl ExecutorObserver for TraceCollector {
    fn is_active(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn on_task_begin(&self, meta: &TaskMeta<'_>) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let lane = self.cpu.get(meta.worker, || CpuLane {
            ring: EventRing::new(self.lane_capacity),
            begin_ns: AtomicU64::new(0),
        });
        let ns = Instant::now()
            .saturating_duration_since(self.epoch)
            .as_nanos() as u64;
        lane.begin_ns.store(ns + 1, Ordering::Release);
    }

    fn on_task_end(&self, meta: &TaskMeta<'_>) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let lane = self.cpu.get(meta.worker, || CpuLane {
            ring: EventRing::new(self.lane_capacity),
            begin_ns: AtomicU64::new(0),
        });
        let begin = lane.begin_ns.swap(0, Ordering::AcqRel);
        if begin == 0 {
            return;
        }
        let begin_ns = begin - 1;
        let now_ns = Instant::now()
            .saturating_duration_since(self.epoch)
            .as_nanos() as u64;
        let is_gpu = matches!(
            meta.kind,
            TaskKind::Pull | TaskKind::Push | TaskKind::Kernel
        );
        // In stitched mode the device side owns the task span; the
        // worker-side window is recorded as dispatch overhead.
        let cat = if is_gpu && self.stitching.load(Ordering::Relaxed) {
            SpanCat::Dispatch
        } else {
            SpanCat::Task
        };
        lane.ring.push(TraceSpan {
            track: Track::Worker(meta.worker),
            name: meta.name.to_string(),
            cat,
            kind: meta.kind,
            device: meta.device,
            stream: None,
            start_us: begin_ns / 1_000,
            dur_us: now_ns.saturating_sub(begin_ns) / 1_000,
            bytes: 0,
            epoch: None,
        });
    }
}

impl GpuTraceSink for TraceCollector {
    fn record(&self, ev: GpuTraceEvent) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let epoch = ev.label.as_ref().and_then(|l| l.epoch);
        let (name, cat, kind) = match (&ev.kind, &ev.label) {
            (GpuOpKind::Exec, Some(label)) => (
                label.name.to_string(),
                SpanCat::Task,
                kind_from_tag(label.tag),
            ),
            (GpuOpKind::Exec, None) => {
                ("exec".to_string(), SpanCat::DeviceOp, TaskKind::Placeholder)
            }
            (GpuOpKind::HostFn, _) => (
                "host_fn".to_string(),
                SpanCat::Callback,
                TaskKind::Placeholder,
            ),
            (GpuOpKind::EventRecord, _) => (
                "event_record".to_string(),
                SpanCat::DeviceOp,
                TaskKind::Placeholder,
            ),
            (GpuOpKind::EventWait, _) => {
                ("event_wait".to_string(), SpanCat::Wait, TaskKind::Placeholder)
            }
            (GpuOpKind::Alloc, _) => {
                ("alloc".to_string(), SpanCat::Alloc, TaskKind::Placeholder)
            }
            (GpuOpKind::Free, _) => {
                ("free".to_string(), SpanCat::Free, TaskKind::Placeholder)
            }
        };
        let start_us = self.us_since_epoch(ev.start);
        let end_us = self.us_since_epoch(ev.end);
        let lane = self.dev.get(ev.device as usize, || DevLane {
            ring: EventRing::new(self.lane_capacity),
        });
        lane.ring.push(TraceSpan {
            track: Track::Device(ev.device),
            name,
            cat,
            kind,
            device: Some(ev.device),
            stream: ev.stream,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            bytes: ev.bytes,
            epoch,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;
    use crate::Executor;

    fn traced_run(fusion: bool) -> (Arc<TraceCollector>, u64) {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(2, 1)
            .task_fusion(fusion)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("traced");
        let d: HostVec<u32> = HostVec::from_vec(vec![0; 64]);
        let h = g.host("make", || {});
        let p = g.pull("pull", &d);
        let k = g.kernel("kernel", &[&p], |_, _| {});
        k.cover(64, 32);
        let s = g.push("push", &p, &d);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        ex.run(&g).wait().expect("runs");
        let fused = ex.stats().fused.sum();
        (trace, fused)
    }

    #[test]
    fn collects_spans_for_every_task_without_fusion() {
        let (trace, fused) = traced_run(false);
        assert_eq!(fused, 0);
        let spans = trace.spans();
        assert_eq!(spans.len(), 4, "one span per task");
        let names: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        for n in ["make", "pull", "kernel", "push"] {
            assert!(names.contains(n), "missing span {n}");
        }
        let kernel_span = spans.iter().find(|s| s.name == "kernel").expect("kernel");
        assert_eq!(kernel_span.kind, TaskKind::Kernel);
        assert_eq!(kernel_span.device, Some(0));
        // Plain observer mode: legacy dispatch-time spans, category Task.
        assert_eq!(kernel_span.cat, SpanCat::Task);
        assert!(matches!(kernel_span.track, Track::Worker(_)));
    }

    #[test]
    fn fused_members_fold_into_head_span() {
        let (trace, fused) = traced_run(true);
        // pull -> kernel -> push fuse into one dispatch.
        assert_eq!(fused, 2);
        let spans = trace.spans();
        assert_eq!(spans.len(), 2, "host + chain head");
        let names: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains("make") && names.contains("pull"));
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(1, 0)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("j");
        g.host("a\"quoted\"", || {});
        ex.run(&g).wait().expect("runs");
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains("a\"quoted\""), "quotes must be escaped");
    }

    #[test]
    fn empty_collector_serializes() {
        let t = TraceCollector::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[]");
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let trace = TraceCollector::shared();
        trace.set_enabled(false);
        let ex = Executor::builder(2, 0)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("off");
        for i in 0..10 {
            g.host(&format!("t{i}"), || {});
        }
        ex.run(&g).wait().expect("runs");
        assert!(trace.is_empty());
        // Flipping it back on starts recording again.
        trace.set_enabled(true);
        ex.run(&g).wait().expect("runs");
        assert_eq!(trace.spans().len(), 10);
    }

    #[test]
    fn ring_overflow_drops_and_counts_instead_of_blocking() {
        let trace = Arc::new(TraceCollector::with_capacity(4));
        let ex = Executor::builder(1, 0)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("overflow");
        for i in 0..64 {
            g.host(&format!("t{i}"), || {});
        }
        ex.run(&g).wait().expect("runs");
        let spans = trace.spans();
        assert!(spans.len() <= 4, "bounded by lane capacity");
        assert!(trace.dropped() >= 60, "overflow counted");
    }

    #[test]
    fn stitched_mode_records_device_side_task_spans() {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(2, 1)
            .task_fusion(false)
            .tracer(Arc::clone(&trace))
            .build();
        assert!(trace.is_stitching());
        let g = Heteroflow::new("stitched");
        let d: HostVec<u32> = HostVec::from_vec(vec![0; 4096]);
        let p = g.pull("pull", &d);
        let k = g.kernel("kernel", &[&p], |_, _| {});
        k.cover(4096, 256);
        let s = g.push("push", &p, &d);
        p.precede(&k);
        k.precede(&s);
        ex.run(&g).wait().expect("runs");
        // `wait()` can return from the device completion callback before
        // the dispatching worker records its span end; join the workers
        // so every dispatch span is flushed.
        drop(ex);
        let spans = trace.spans();

        // Each GPU task appears exactly once as a device-side Task span.
        for name in ["pull", "kernel", "push"] {
            let task_spans: Vec<_> = spans
                .iter()
                .filter(|x| x.cat == SpanCat::Task && x.name == name)
                .collect();
            assert_eq!(task_spans.len(), 1, "{name} exactly once as Task");
            let t = task_spans[0];
            assert!(
                matches!(t.track, Track::Device(0)),
                "{name} Task span on device track"
            );
            // Worker-side window demoted to Dispatch.
            assert!(
                spans
                    .iter()
                    .any(|x| x.cat == SpanCat::Dispatch && x.name == name),
                "{name} has a dispatch span"
            );
        }
        let kernel = spans
            .iter()
            .find(|x| x.cat == SpanCat::Task && x.name == "kernel")
            .unwrap();
        assert_eq!(kernel.kind, TaskKind::Kernel);
        // Streams are per-worker; the index depends on which worker
        // dispatched, only its presence is deterministic.
        assert!(kernel.stream.is_some());
        // Pull allocates device memory: the pool traffic is traced too.
        assert!(spans.iter().any(|x| x.cat == SpanCat::Alloc && x.bytes > 0));
        // The completion callback is visible as device-side time.
        assert!(spans.iter().any(|x| x.cat == SpanCat::Callback));
    }

    #[test]
    fn lane_table_grows_concurrently() {
        let t: Arc<LaneTable<AtomicU64>> = Arc::new(LaneTable::new());
        let handles: Vec<_> = (0..8)
            .map(|k| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..200usize {
                        let lane = t.get((i * 7 + k) % 97, || AtomicU64::new(0));
                        lane.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = t.lanes().iter().map(|l| l.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 8 * 200);
    }
}
