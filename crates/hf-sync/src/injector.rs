//! Lock-free MPMC injector queue for external and overflow task
//! submissions.
//!
//! The executor's shared inbox: `run_*` callers push ready root tasks here
//! and workers push overflow when releasing many successors at once; idle
//! workers (thieves) pop from it. The previous implementation was a
//! `Mutex<VecDeque>`, which serialized every submission and put a lock on
//! the steady-state steal path. This is a segmented Michael–Scott-style
//! queue in the spirit of crossbeam's `SegQueue` (Lê/Morrison lineage):
//! values live in fixed 31-slot blocks linked into a list, producers claim
//! slots by CAS on a monotone tail index, consumers by CAS on a monotone
//! head index, and block memory is reclaimed by a per-slot hand-off
//! protocol (no epochs, no hazard pointers) — safe because slots are
//! independent once claimed.
//!
//! Two extensions matter for the scheduler hot path (§III-C batching):
//!
//! * [`Injector::push_batch`] claims a *range* of slots with one CAS, so
//!   releasing `k` successors costs one atomic RMW instead of `k` lock
//!   round-trips.
//! * [`Injector::pop_batch`] symmetrically claims a range on the consumer
//!   side, letting a thief refill its local deque in one operation
//!   (analogous to crossbeam's `steal_batch_and_pop`).
//!
//! `T: Copy` (work items are packed `u64` tokens), which keeps slot reads
//! trivially safe: a value is bit-copied out exactly once because each
//! slot index is claimed by exactly one consumer.

use crate::backoff::Backoff;
use crate::pad::CachePadded;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use crate::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};

/// Slots per block (one lap position is sacrificed as the "block full"
/// sentinel, so a lap of 32 index positions carries 31 values).
const BLOCK_CAP: usize = 31;
/// Index positions per block.
const LAP: usize = 32;
/// Indices advance in steps of `1 << SHIFT`; the low bit is `HAS_NEXT`.
const SHIFT: usize = 1;
/// Set on `head.index` when the head block is known not to be the tail
/// block, letting consumers skip the emptiness probe.
const HAS_NEXT: usize = 1;

/// Slot state bit: a value has been written.
const WRITE: usize = 1;
/// Slot state bit: the value has been read.
const READ: usize = 2;
/// Slot state bit: block destruction reached this slot before its reader.
const DESTROY: usize = 4;

struct Slot<T> {
    value: UnsafeCell<MaybeUninit<T>>,
    state: AtomicUsize,
}

impl<T> Slot<T> {
    /// Spins until the producer that claimed this slot finishes writing.
    fn wait_write(&self) {
        let mut backoff = Backoff::new();
        while self.state.load(Ordering::Acquire) & WRITE == 0 {
            backoff.snooze();
        }
    }
}

struct Block<T> {
    next: AtomicPtr<Block<T>>,
    slots: [Slot<T>; BLOCK_CAP],
}

impl<T> Block<T> {
    fn new() -> Box<Self> {
        // SAFETY: an all-zero Block is valid — null `next`, zeroed slot
        // states, and uninitialized (MaybeUninit) values.
        unsafe { Box::new(MaybeUninit::<Block<T>>::zeroed().assume_init()) }
    }

    /// Spins until the next block is installed by the producer that
    /// claimed this block's final slot.
    fn wait_next(&self) -> *mut Block<T> {
        let mut backoff = Backoff::new();
        loop {
            let next = self.next.load(Ordering::Acquire);
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }

    /// Frees the block once every slot in `start..` has been read.
    ///
    /// Walks the slots setting `DESTROY`; if a slot's reader has not
    /// finished (`READ` unset), responsibility transfers to that reader,
    /// which re-enters here from its own offset. The final slot needs no
    /// mark: its reader is the one that initiates destruction.
    ///
    /// # Safety
    /// `this` must point to a live block no producer will touch again, and
    /// each `(block, start)` pair is reached by exactly one thread under
    /// the hand-off protocol, so the `Box::from_raw` runs exactly once.
    unsafe fn destroy(this: *mut Block<T>, start: usize) {
        for i in start..BLOCK_CAP - 1 {
            let slot = (*this).slots.get_unchecked(i);
            if slot.state.load(Ordering::Acquire) & READ == 0
                && slot.state.fetch_or(DESTROY, Ordering::AcqRel) & READ == 0
            {
                // The reader of slot `i` will continue the destruction.
                return;
            }
        }
        drop(Box::from_raw(this));
    }
}

struct Position<T> {
    index: AtomicUsize,
    block: AtomicPtr<Block<T>>,
}

/// A lock-free unbounded MPMC queue with single-CAS batch operations.
pub struct Injector<T: Copy> {
    head: CachePadded<Position<T>>,
    tail: CachePadded<Position<T>>,
}

// SAFETY: values cross threads only through slots whose WRITE/READ state
// bits form acquire/release handshakes, and each slot index is claimed by
// exactly one producer and one consumer; `T: Send` is all that's required.
unsafe impl<T: Copy + Send> Send for Injector<T> {}
// SAFETY: as above — all shared mutation goes through atomics and
// uniquely-claimed slots.
unsafe impl<T: Copy + Send> Sync for Injector<T> {}

impl<T: Copy> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Injector<T> {
    /// Creates an empty injector. The first block is allocated lazily on
    /// first push.
    pub fn new() -> Self {
        Self {
            head: CachePadded::new(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            }),
            tail: CachePadded::new(Position {
                index: AtomicUsize::new(0),
                block: AtomicPtr::new(ptr::null_mut()),
            }),
        }
    }

    /// Pushes one value.
    pub fn push(&self, value: T) {
        self.push_batch(&[value]);
    }

    /// Pushes a slice of values, claiming each block-contiguous range of
    /// tail slots with a single CAS. An empty slice is a no-op.
    pub fn push_batch(&self, values: &[T]) {
        let mut remaining = values;
        while !remaining.is_empty() {
            let n = self.push_range(remaining);
            remaining = &remaining[n..];
        }
    }

    /// Claims up to `values.len()` slots in the current tail block and
    /// writes them; returns how many were written (at least 1).
    fn push_range(&self, values: &[T]) -> usize {
        let mut backoff = Backoff::new();
        let mut tail = self.tail.index.load(Ordering::Acquire);
        let mut block = self.tail.block.load(Ordering::Acquire);
        let mut next_block = None;

        loop {
            let offset = (tail >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // Another producer claimed the final slot and is installing
                // the next block.
                backoff.snooze();
                tail = self.tail.index.load(Ordering::Acquire);
                block = self.tail.block.load(Ordering::Acquire);
                continue;
            }

            let n = values.len().min(BLOCK_CAP - offset);

            // Pre-allocate the next block if this claim reaches the end of
            // the current one.
            if offset + n == BLOCK_CAP && next_block.is_none() {
                next_block = Some(Block::<T>::new());
            }

            // First-ever push installs the first block.
            if block.is_null() {
                let new = Box::into_raw(Block::<T>::new());
                match self.tail.block.compare_exchange(
                    block,
                    new,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.head.block.store(new, Ordering::Release);
                        block = new;
                    }
                    Err(cur) => {
                        // Lost the race; reuse the allocation as a next
                        // block candidate and retry.
                        // SAFETY: `new` came from `Box::into_raw` above and
                        // the failed CAS means no other thread saw it.
                        next_block = Some(unsafe { Box::from_raw(new) });
                        tail = self.tail.index.load(Ordering::Acquire);
                        block = cur;
                        continue;
                    }
                }
            }

            let new_tail = tail + (n << SHIFT);
            match self.tail.index.compare_exchange_weak(
                tail,
                new_tail,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the successful CAS hands this thread exclusive
                // write ownership of slots [offset, offset + n) in `block`,
                // which stays alive until its final slot is read.
                Ok(_) => unsafe {
                    // Claimed slots [offset, offset + n). If the claim
                    // covers the final slot, install the next block before
                    // writing so stalled producers/consumers can proceed.
                    if offset + n == BLOCK_CAP {
                        let next = Box::into_raw(next_block.take().unwrap());
                        let next_index = new_tail.wrapping_add(1 << SHIFT);
                        self.tail.block.store(next, Ordering::Release);
                        self.tail.index.store(next_index, Ordering::Release);
                        (*block).next.store(next, Ordering::Release);
                    }
                    for (i, v) in values[..n].iter().enumerate() {
                        let slot = (*block).slots.get_unchecked(offset + i);
                        slot.value.get().write(MaybeUninit::new(*v));
                        slot.state.fetch_or(WRITE, Ordering::Release);
                    }
                    return n;
                },
                Err(t) => {
                    tail = t;
                    block = self.tail.block.load(Ordering::Acquire);
                    backoff.snooze();
                }
            }
        }
    }

    /// Pops one value, or `None` if the queue is observed empty.
    pub fn pop(&self) -> Option<T> {
        let mut out = None;
        self.pop_batch(1, |v| out = Some(v));
        out
    }

    /// Pops up to `max` values in one head-index CAS, feeding each to
    /// `sink` in FIFO order. Returns how many were popped (0 if empty).
    ///
    /// A thief uses this to refill its local deque in a single contended
    /// operation instead of `max` round-trips.
    pub fn pop_batch(&self, max: usize, mut sink: impl FnMut(T)) -> usize {
        if max == 0 {
            return 0;
        }
        let mut backoff = Backoff::new();
        let mut head = self.head.index.load(Ordering::Acquire);
        let mut block = self.head.block.load(Ordering::Acquire);

        loop {
            let offset = (head >> SHIFT) % LAP;
            if offset == BLOCK_CAP {
                // A consumer claimed the final slot and is installing the
                // next head block.
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            let mut n = max.min(BLOCK_CAP - offset);
            let mut new_head = head + (n << SHIFT);

            if new_head & HAS_NEXT == 0 {
                // Head block might also be the tail block: probe the tail
                // to bound the claim (and detect emptiness).
                fence(Ordering::SeqCst);
                let tail = self.tail.index.load(Ordering::Relaxed);

                if head >> SHIFT == tail >> SHIFT {
                    return 0;
                }

                if (head >> SHIFT) / LAP == (tail >> SHIFT) / LAP {
                    // Same block: only slots below the tail offset exist.
                    n = n.min((tail >> SHIFT) % LAP - offset);
                    new_head = head + (n << SHIFT);
                } else {
                    // Tail has moved on; the rest of this block is fully
                    // claimed by producers. Remember that across retries.
                    new_head |= HAS_NEXT;
                }
            }

            if block.is_null() {
                // Non-empty but the first block is still being installed.
                backoff.snooze();
                head = self.head.index.load(Ordering::Acquire);
                block = self.head.block.load(Ordering::Acquire);
                continue;
            }

            match self.head.index.compare_exchange_weak(
                head,
                new_head,
                Ordering::SeqCst,
                Ordering::Acquire,
            ) {
                // SAFETY: the successful CAS hands this thread exclusive
                // read ownership of slots [offset, offset + n); each slot
                // is read only after its producer's WRITE release-store,
                // and the destroy hand-off frees the block exactly once.
                Ok(_) => unsafe {
                    // Claimed slots [offset, offset + n). If the claim
                    // covers the final slot, advance the head block first
                    // so other consumers stop spinning on offset 31.
                    if offset + n == BLOCK_CAP {
                        let next = (*block).wait_next();
                        let mut next_index =
                            (new_head & !HAS_NEXT).wrapping_add(1 << SHIFT);
                        if !(*next).next.load(Ordering::Relaxed).is_null() {
                            next_index |= HAS_NEXT;
                        }
                        self.head.block.store(next, Ordering::Release);
                        self.head.index.store(next_index, Ordering::Release);
                    }
                    for i in 0..n {
                        let o = offset + i;
                        let slot = (*block).slots.get_unchecked(o);
                        slot.wait_write();
                        let value = slot.value.get().read().assume_init();
                        if o + 1 == BLOCK_CAP {
                            // Reader of the final slot initiates block
                            // destruction.
                            Block::destroy(block, 0);
                        } else if slot.state.fetch_or(READ, Ordering::AcqRel) & DESTROY != 0 {
                            // Destruction already reached this slot; we
                            // are responsible for continuing it.
                            Block::destroy(block, o + 1);
                        }
                        sink(value);
                    }
                    return n;
                },
                Err(h) => {
                    head = h;
                    block = self.head.block.load(Ordering::Acquire);
                    backoff.snooze();
                }
            }
        }
    }

    /// True if the queue is observed empty (racy; callers re-check via the
    /// notifier's two-phase wait protocol before sleeping).
    pub fn is_empty(&self) -> bool {
        let head = self.head.index.load(Ordering::SeqCst);
        let tail = self.tail.index.load(Ordering::SeqCst);
        head >> SHIFT == tail >> SHIFT
    }

    /// Number of values in the queue (consistent snapshot; diagnostic).
    pub fn len(&self) -> usize {
        loop {
            let mut tail = self.tail.index.load(Ordering::SeqCst);
            let mut head = self.head.index.load(Ordering::SeqCst);
            // Retry if the tail moved while reading the head.
            if self.tail.index.load(Ordering::SeqCst) == tail {
                tail &= !((1 << SHIFT) - 1);
                head &= !((1 << SHIFT) - 1);
                // Indices at the block-full sentinel belong to the next lap.
                if (tail >> SHIFT) & (LAP - 1) == LAP - 1 {
                    tail = tail.wrapping_add(1 << SHIFT);
                }
                if (head >> SHIFT) & (LAP - 1) == LAP - 1 {
                    head = head.wrapping_add(1 << SHIFT);
                }
                let lap = (head >> SHIFT) / LAP;
                tail = tail.wrapping_sub((lap * LAP) << SHIFT);
                head = head.wrapping_sub((lap * LAP) << SHIFT);
                let tail = tail >> SHIFT;
                let head = head >> SHIFT;
                // One position per lap is the sentinel, not a value.
                return tail - head - tail / LAP;
            }
        }
    }
}

impl<T: Copy> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access: free the remaining block chain. Values are
        // `Copy`, so only the block boxes need reclaiming.
        let mut block = *self.head.block.get_mut();
        while !block.is_null() {
            // SAFETY: `&mut self` means no concurrent access; every block
            // reachable from head is a live `Box::into_raw` allocation not
            // yet reclaimed by the destroy hand-off.
            let next = unsafe { (*block).next.load(Ordering::Relaxed) };
            // SAFETY: as above; each block in the chain is freed once.
            drop(unsafe { Box::from_raw(block) });
            block = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_single_block() {
        let q = Injector::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        for i in 0..10u64 {
            q.push(i);
        }
        assert_eq!(q.len(), 10);
        for i in 0..10u64 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_across_many_blocks() {
        let q = Injector::new();
        let n = 10 * BLOCK_CAP + 7;
        for i in 0..n {
            q.push(i as u64);
        }
        assert_eq!(q.len(), n);
        for i in 0..n {
            assert_eq!(q.pop(), Some(i as u64));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn batch_push_batch_pop_preserve_order() {
        let q = Injector::new();
        let items: Vec<u64> = (0..200).collect();
        q.push_batch(&items);
        assert_eq!(q.len(), 200);
        let mut got = Vec::new();
        while q.pop_batch(17, |v| got.push(v)) > 0 {}
        assert_eq!(got, items);
    }

    #[test]
    fn pop_batch_bounded_by_tail_in_same_block() {
        let q = Injector::new();
        q.push_batch(&[1u64, 2, 3]);
        let mut got = Vec::new();
        // Ask for more than is available.
        let n = q.pop_batch(100, |v| got.push(v));
        assert_eq!(n, 3);
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(q.pop_batch(100, |_| panic!("empty")), 0);
    }

    #[test]
    fn interleaved_push_pop_never_duplicates() {
        let q = Injector::new();
        let mut next = 0u64;
        let mut expect = 0u64;
        for round in 0..100 {
            let k = (round % 7) + 1;
            let batch: Vec<u64> = (0..k).map(|i| next + i).collect();
            next += k;
            q.push_batch(&batch);
            let take = (round % 5) + 1;
            q.pop_batch(take as usize, |v| {
                assert_eq!(v, expect);
                expect += 1;
            });
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn concurrent_producers_consumers_deliver_exactly_once() {
        const PRODUCERS: u64 = 3;
        const CONSUMERS: usize = 3;
        const PER: u64 = 20_000;
        let q = Arc::new(Injector::new());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut i = 0;
                    while i < PER {
                        // Mix singles and batches.
                        if i % 3 == 0 {
                            let hi = (i + 5).min(PER);
                            let batch: Vec<u64> =
                                (i..hi).map(|j| p * PER + j).collect();
                            q.push_batch(&batch);
                            i = hi;
                        } else {
                            q.push(p * PER + i);
                            i += 1;
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|c| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 1000 {
                        let before = got.len();
                        if c % 2 == 0 {
                            q.pop_batch(8, |v| got.push(v));
                        } else if let Some(v) = q.pop() {
                            got.push(v);
                        }
                        if got.len() == before {
                            dry += 1;
                            thread::yield_now();
                        } else {
                            dry = 0;
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        // Drain any leftovers the consumers gave up on.
        while let Some(v) = q.pop() {
            all.push(v);
        }
        assert_eq!(all.len() as u64, PRODUCERS * PER);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len() as u64, PRODUCERS * PER, "duplicate delivery");
    }

    #[test]
    fn drop_frees_partially_consumed_queue() {
        let q = Injector::new();
        for i in 0..(3 * BLOCK_CAP as u64) {
            q.push(i);
        }
        for _ in 0..BLOCK_CAP {
            q.pop().unwrap();
        }
        drop(q); // must not leak or double-free (validated under the test allocator)
    }
}
