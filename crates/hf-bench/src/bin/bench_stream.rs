//! Streaming-vs-resubmission benchmark: steady-state epochs/sec and
//! per-epoch latency of a resident [`hf_core::Session`] against
//! back-to-back `run()` resubmission of the same copy-heavy graph.
//!
//! The round models a serving loop: a large table is re-copied (chunked
//! H2D) every round, and the scoring kernel may only run against that
//! round's upload — a control edge orders copy before compute within
//! each round. Resubmission therefore pays copy + compute serially (plus
//! the per-round submission preamble); the session pipelines round N+1's
//! transfers under round N's kernel, so its steady-state period is
//! max(copy, compute).
//!
//! Kernel occupancy is modeled with a sleep on the device engine (as on
//! a real GPU, a running kernel occupies its device without consuming
//! host CPU), so the copy engine can genuinely overlap it regardless of
//! host core count. The chunked copies are real memcpys.
//!
//! Usage: `cargo run --release -p hf-bench --bin bench_stream --
//! [--smoke] [--out BENCH_stream.json]`

use hf_bench::cli::Args;
use hf_core::data::HostVec;
use hf_core::{Executor, Heteroflow, StreamConfig};
use serde_json::json;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let out = args.get_str("out").unwrap_or("BENCH_stream.json").to_string();

    let (table_elems, feature_elems, occupancy_ms, rounds) = if smoke {
        (1usize << 22, 1usize << 12, 6u64, 16usize)
    } else {
        (1usize << 23, 1usize << 13, 10u64, 48usize)
    };

    let resubmit = run_resubmit(table_elems, feature_elems, occupancy_ms, rounds);
    let stream = run_stream(table_elems, feature_elems, occupancy_ms, rounds);

    let resubmit_eps = resubmit.eps;
    let stream_eps = stream.eps;
    let doc = json!({
        "bench": "stream",
        "smoke": smoke,
        "rounds": rounds,
        "table_bytes": table_elems * 4,
        "feature_elems": feature_elems,
        "kernel_occupancy_ms": occupancy_ms,
        "resubmit": resubmit.to_json(),
        "stream": stream.to_json(),
        "speedup": stream_eps / resubmit_eps,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    println!("\nwrote {out}");

    assert!(
        stream_eps >= resubmit_eps,
        "streamed throughput ({stream_eps:.2} epochs/s) fell below \
         back-to-back resubmission ({resubmit_eps:.2} epochs/s)"
    );
}

struct Measured {
    eps: f64,
    p50: Duration,
    p99: Duration,
}

impl Measured {
    fn from_latencies(total: Duration, mut lat: Vec<Duration>) -> Self {
        lat.sort_unstable();
        let p50 = lat[lat.len() / 2];
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        Measured {
            eps: lat.len() as f64 / total.as_secs_f64(),
            p50,
            p99,
        }
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "epochs_per_sec": self.eps,
            "p50_epoch_ms": self.p50.as_secs_f64() * 1e3,
            "p99_epoch_ms": self.p99.as_secs_f64() * 1e3,
        })
    }
}

/// One serving round: the feature vector feeds a scoring kernel, and a
/// large table is re-pulled (chunked). A control edge orders the table
/// upload before the kernel *within* a round — the kernel must score
/// against this round's table — but carries no data, so placement keeps
/// the chunked copy in its own group on its own device. Resubmission
/// eats copy-then-compute serially every round; a resident session
/// overlaps round N+1's copy (one device) with round N's kernel (the
/// other).
///
/// The kernel touches its features (functional), then sleeps
/// `occupancy_ms` on its engine to model device occupancy that does not
/// consume host CPU.
fn build(
    table_elems: usize,
    feature_elems: usize,
    occupancy_ms: u64,
) -> (Heteroflow, HostVec<f32>) {
    let features: HostVec<f32> = HostVec::from_vec(vec![1.0; feature_elems]);
    let table: HostVec<f32> = HostVec::from_vec(vec![0.5; table_elems]);
    let g = Heteroflow::new("serving_round");
    let pf = g.pull("pull_features", &features);
    let k = g.kernel("score", &[&pf], move |cfg, args| {
        let v = args.slice_mut::<f32>(0).expect("features");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] = v[t].mul_add(1.5, 0.25);
            }
        }
        std::thread::sleep(Duration::from_millis(occupancy_ms));
    });
    k.cover(feature_elems, 256);
    pf.precede(&k);
    let pt = g.pull("pull_table", &table);
    pt.precede(&k);
    (g, table)
}

fn executor() -> Executor {
    Executor::builder(2, 2)
        .copy_chunk_threshold(64 * 1024)
        .copy_lanes(2)
        .build()
}

/// Untimed rounds before measurement in both modes: first-touch device
/// allocation and residency setup land here, so the timed window is
/// steady state for both contenders.
const WARMUP: usize = 3;

/// Baseline: mutate inputs, `run`, `wait` — copy and compute serialize
/// within every round, and the submission preamble is paid per round.
fn run_resubmit(
    table_elems: usize,
    feature_elems: usize,
    occupancy_ms: u64,
    rounds: usize,
) -> Measured {
    let ex = executor();
    let (g, table) = build(table_elems, feature_elems, occupancy_ms);
    for r in 0..WARMUP {
        table.write()[0] = r as f32;
        ex.run(&g).wait().expect("warmup round");
    }
    let mut lat = Vec::with_capacity(rounds);
    let t0 = Instant::now();
    for r in 0..rounds {
        table.write()[0] = (WARMUP + r) as f32;
        let t = Instant::now();
        ex.run(&g).wait().expect("resubmission round");
        lat.push(t.elapsed());
    }
    Measured::from_latencies(t0.elapsed(), lat)
}

/// Streaming: a depth-2 resident session; round N+1's table copy runs
/// under round N's kernel. Per-epoch latency is submit-return to
/// completion, measured by a concurrent waiter so backpressured
/// submissions and completions interleave as they would in a server.
fn run_stream(
    table_elems: usize,
    feature_elems: usize,
    occupancy_ms: u64,
    rounds: usize,
) -> Measured {
    let ex = executor();
    let (g, table) = build(table_elems, feature_elems, occupancy_ms);
    let session = ex
        .run_stream_with(&g, StreamConfig { depth: 2 })
        .expect("open stream");
    for r in 0..WARMUP {
        let table = table.clone();
        session
            .submit_with(move || {
                table.write()[0] = r as f32;
            })
            .wait()
            .expect("warmup epoch");
    }
    let (tx, rx) = std::sync::mpsc::channel();
    let t0 = Instant::now();
    let (lat, total) = std::thread::scope(|scope| {
        let waiter = scope.spawn(move || {
            let mut lat = Vec::with_capacity(rounds);
            // Epochs complete in order, so waiting in receive order
            // timestamps each completion accurately.
            for (e, (f, submitted)) in rx.iter().enumerate() {
                let f: hf_core::EpochFuture = f;
                let submitted: Duration = submitted;
                f.wait().unwrap_or_else(|err| panic!("epoch {e} failed: {err}"));
                lat.push(t0.elapsed() - submitted);
            }
            (lat, t0.elapsed())
        });
        for r in 0..rounds {
            let table = table.clone();
            let f = session.submit_with(move || {
                table.write()[0] = (WARMUP + r) as f32;
            });
            tx.send((f, t0.elapsed())).expect("waiter alive");
        }
        drop(tx);
        waiter.join().expect("waiter thread")
    });
    session.close();
    Measured::from_latencies(total, lat)
}
