//! Cross-validation: the discrete-event model must agree with the real
//! executor where they are comparable (single worker, known task costs).

use hf_core::placement::PlacementPolicy;
use hf_core::{Executor, Heteroflow};
use hf_gpu::SimDuration;
use hf_sim::{simulate, Machine};
use std::time::{Duration, Instant};

/// A chain and a fan of spin-wait tasks, executed for real on one worker
/// and simulated on one core: makespans must agree within 50%.
#[test]
fn sim_matches_real_single_core_makespan() {
    const TASK_MS: u64 = 5;
    const N: usize = 8;

    let g = Heteroflow::new("validate");
    let mut prev = None;
    for i in 0..N {
        let t = g.host(&format!("chain{i}"), move || {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(TASK_MS) {
                std::hint::spin_loop();
            }
        });
        if let Some(p) = &prev {
            t.succeed(p);
        }
        prev = Some(t);
    }

    // Real execution on one worker.
    let ex = Executor::new(1, 0);
    let t0 = Instant::now();
    ex.run(&g).wait().unwrap();
    let real = t0.elapsed().as_secs_f64();

    // Simulated execution with the known per-task cost.
    let info = g.info().unwrap();
    let r = simulate(&info, &Machine::new(1, 0), PlacementPolicy::BalancedLoad, |_| {
        SimDuration::from_millis(TASK_MS)
    })
    .unwrap();

    let modeled = r.makespan_secs;
    let expected = (N as u64 * TASK_MS) as f64 / 1e3;
    assert!((modeled - expected).abs() < 1e-9, "model should be exact");
    let ratio = real / modeled;
    assert!(
        (0.5..2.0).contains(&ratio),
        "real {real:.4}s vs modeled {modeled:.4}s (ratio {ratio:.2})"
    );
}

/// The model's total busy time equals the sum of task durations — work is
/// conserved for any topology.
#[test]
fn sim_conserves_work() {
    let g = Heteroflow::new("work");
    let a = g.host("a", || {});
    let b = g.host("b", || {});
    let c = g.host("c", || {});
    let d = g.host("d", || {});
    a.precede(&b).precede(&c);
    d.succeed(&b).succeed(&c);
    let info = g.info().unwrap();
    for cores in [1, 2, 3, 8] {
        let r = simulate(&info, &Machine::new(cores, 0), PlacementPolicy::BalancedLoad, |i| {
            SimDuration::from_millis((i as u64 + 1) * 2)
        })
        .unwrap();
        let total: f64 = (0..4).map(|i| ((i + 1) * 2) as f64 / 1e3).sum();
        assert!(
            (r.cpu_busy_secs - total).abs() < 1e-9,
            "cores={cores}: busy {} != total {}",
            r.cpu_busy_secs,
            total
        );
    }
}
