//! Data-movement fast path: transfer elision, pull-buffer persistence
//! across rounds and resubmissions, and pipelined (chunked) copies.

use heteroflow::core::{SpanCat, TraceCollector, Track};
use heteroflow::prelude::*;
use std::sync::Arc;

/// pull -> push round trip with no kernel: after one round the device
/// bytes mirror the host bytes exactly.
fn copy_through(n: usize) -> (Heteroflow, HostVec<i32>) {
    let data = HostVec::from_vec(vec![7i32; n]);
    let g = Heteroflow::new("copy");
    let p = g.pull("pull", &data);
    let s = g.push("push", &p, &data);
    p.precede(&s);
    (g, data)
}

/// pull -> kernel(+1) -> push: each round increments every element, so
/// stale device bytes are visible as wrong values.
fn increment_graph(data: &HostVec<i32>, n: usize) -> Heteroflow {
    let g = Heteroflow::new("incr");
    let p = g.pull("pull", data);
    let k = g.kernel("incr", &[&p], |cfg, args| {
        let v = args.slice_mut::<i32>(0).expect("arg");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] += 1;
            }
        }
    });
    k.cover(n, 128);
    let s = g.push("push", &p, data);
    p.precede(&k);
    k.precede(&s);
    g
}

/// The pull buffer is allocated once and reused across every round of a
/// multi-round run: the pool sees one allocation, not one per round.
#[test]
fn pull_buffer_persists_across_rounds() {
    const N: usize = 1024;
    let ex = Executor::new(2, 1);
    let (g, data) = copy_through(N);
    ex.run_n(&g, 8).wait().expect("runs");
    assert!(data.read().iter().all(|&v| v == 7));
    let allocs: u64 = ex
        .gpu_runtime()
        .devices()
        .iter()
        .map(|d| d.pool_stats().allocs)
        .sum();
    assert_eq!(allocs, 1, "one pull buffer allocated, reused every round");
}

/// With unchanged host data, every round after the first elides its H2D
/// copy (push wrote the same bytes back, revalidating residency).
#[test]
fn unchanged_rounds_elide_h2d_copies() {
    const N: usize = 1024;
    const ROUNDS: u64 = 8;
    let ex = Executor::new(2, 1);
    let (g, data) = copy_through(N);
    ex.run_n(&g, ROUNDS as usize).wait().expect("runs");
    assert!(data.read().iter().all(|&v| v == 7));
    let s = ex.stats().snapshot();
    assert_eq!(s.transfers_elided, ROUNDS - 1, "all but the first round elide");
    assert_eq!(s.bytes_h2d, (N * 4) as u64, "exactly one real H2D copy");
    assert_eq!(s.bytes_d2h, ROUNDS * (N * 4) as u64, "push copies every round");
}

/// Resubmitting the same graph elides the pull: residency survives
/// between `run` calls because the frozen snapshot is cached.
#[test]
fn resubmission_elides_h2d() {
    const N: usize = 512;
    let ex = Executor::new(2, 1);
    let (g, data) = copy_through(N);
    ex.run(&g).wait().expect("first run");
    ex.run(&g).wait().expect("second run");
    assert!(data.read().iter().all(|&v| v == 7));
    let s = ex.stats().snapshot();
    assert_eq!(s.transfers_elided, 1, "second submission skips the copy");
    assert_eq!(s.bytes_h2d, (N * 4) as u64);
}

/// Mutating the host vector between runs invalidates residency: the next
/// pull re-copies and the kernel sees the new values, never stale bytes.
#[test]
fn host_mutation_forces_recopy() {
    const N: usize = 256;
    let ex = Executor::new(2, 1);
    let data = HostVec::from_vec(vec![0i32; N]);
    let g = increment_graph(&data, N);

    ex.run(&g).wait().expect("first run");
    assert!(data.read().iter().all(|&v| v == 1));

    data.write().iter_mut().for_each(|v| *v = 10);
    ex.run(&g).wait().expect("second run");
    // Stale elision would leave the device at 1 and produce 2 here.
    assert!(
        data.read().iter().all(|&v| v == 11),
        "kernel must see mutated host data, got {:?}...",
        &data.read()[..4]
    );
    assert_eq!(ex.stats().snapshot().transfers_elided, 0);
}

/// Transfers above the chunk threshold are split across copy lanes and
/// reassemble to exactly the right bytes in both directions.
#[test]
fn chunked_copies_are_correct() {
    const N: usize = 1000; // 4000 bytes -> 63 chunks at a 64-byte threshold
    let ex = Executor::builder(2, 1)
        .copy_chunk_threshold(64)
        .copy_lanes(3)
        .build();
    let data = HostVec::from_vec((0..N as i32).collect());
    let g = increment_graph(&data, N);
    ex.run(&g).wait().expect("runs");
    let d = data.read();
    for (i, &v) in d.iter().enumerate() {
        assert_eq!(v, i as i32 + 1, "element {i}");
    }
    let s = ex.stats().snapshot();
    assert_eq!(s.bytes_h2d, (N * 4) as u64);
    assert_eq!(s.bytes_d2h, (N * 4) as u64);
}

/// The chunked path participates in elision too: an unchanged rerun
/// skips the whole pipelined copy.
#[test]
fn chunked_copy_elides_on_rerun() {
    const N: usize = 2048;
    let ex = Executor::builder(2, 1)
        .copy_chunk_threshold(256)
        .build();
    let (g, data) = copy_through(N);
    ex.run(&g).wait().expect("first run");
    ex.run(&g).wait().expect("second run");
    assert!(data.read().iter().all(|&v| v == 7));
    let s = ex.stats().snapshot();
    assert_eq!(s.transfers_elided, 1);
    assert_eq!(s.bytes_h2d, (N * 4) as u64, "only the first run copies");
}

/// Chunked copies show up in the stitched trace as per-chunk device
/// spans, while the task itself still appears exactly once under its
/// canonical name (the telemetry exactly-once invariant).
#[test]
fn chunked_copy_traces_per_chunk_spans() {
    const N: usize = 4096; // 16 KiB -> 4 chunks
    let trace = TraceCollector::shared();
    let ex = Executor::builder(2, 1)
        .copy_chunk_threshold(4096)
        .copy_lanes(2)
        .tracer(Arc::clone(&trace))
        .build();
    let data = HostVec::from_vec(vec![1i32; N]);
    let g = increment_graph(&data, N);
    ex.run(&g).wait().expect("runs");
    drop(ex);
    let spans = trace.spans();
    let chunk_spans: Vec<_> = spans
        .iter()
        .filter(|s| {
            matches!(s.track, Track::Device(_))
                && s.cat == SpanCat::Task
                && s.name.contains("#c")
        })
        .collect();
    assert!(
        chunk_spans.len() >= 4,
        "expected per-chunk spans, got {:?}",
        spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    // The canonical task names still appear exactly once each.
    for name in ["pull", "incr", "push"] {
        let n = spans
            .iter()
            .filter(|s| s.cat == SpanCat::Task && s.name == name)
            .count();
        assert_eq!(n, 1, "{name} appears exactly once");
    }
}

/// Running the cached graph on a different executor (different devices)
/// must not reuse the first executor's residency: the buffer reallocates
/// on the new device and the data stays correct.
#[test]
fn cross_executor_rerun_reallocates() {
    const N: usize = 512;
    let ex1 = Executor::new(2, 1);
    let ex2 = Executor::new(2, 1);
    let data = HostVec::from_vec(vec![0i32; N]);
    let g = increment_graph(&data, N);

    ex1.run(&g).wait().expect("first executor");
    assert!(data.read().iter().all(|&v| v == 1));
    ex2.run(&g).wait().expect("second executor");
    assert!(
        data.read().iter().all(|&v| v == 2),
        "second executor must copy fresh data, got {:?}...",
        &data.read()[..4]
    );
    assert_eq!(ex2.stats().snapshot().transfers_elided, 0);
}
