//! Streaming serving loop: a resident [`Session`] pipelines epochs so
//! the next round's H2D transfers overlap the current round's kernels.
//!
//! The graph models one inference-style round: a feature vector feeds a
//! scoring kernel on one device, while a large table is re-pulled
//! (chunked H2D) onto another. A control edge orders the table upload
//! before the kernel *within* each round — the kernel must score against
//! this round's table — so a plain `run()` pays copy then compute
//! serially. With `run_stream`, the submission preamble — freeze,
//! placement, fusion — is paid once, device residency stays warm across
//! rounds, and epoch N+1's chunked H2D copies execute while epoch N's
//! kernel still occupies its device. (Kernel occupancy is modeled with a
//! sleep on the device engine: as on a real GPU, a running kernel holds
//! its device without consuming host CPU, which is what the copy engine
//! overlaps.)
//!
//! The example *asserts* the pipelining via the stitched trace: it finds
//! a kernel span of epoch N wall-overlapping an H2D chunk span of epoch
//! N+1 (the interleaving is a race the scheduler usually wins, so a few
//! attempts are allowed).
//!
//! Run: `cargo run --release --example stream_serving`

use heteroflow::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FEATURES: usize = 1 << 13; // scoring-kernel input (f32)
const TABLE: usize = 1 << 21; // chunked re-pull per round (f32)
const OCCUPANCY_MS: u64 = 8; // modeled kernel occupancy per round
const EPOCHS: usize = 6;
const ATTEMPTS: usize = 10;

fn main() {
    for attempt in 1..=ATTEMPTS {
        if let Some((k_epoch, kernel_span, chunk_span)) = serve_once() {
            println!(
                "pipelining observed on attempt {attempt}: epoch {} kernel \
                 [{}..{}us] overlaps epoch {} H2D chunks [{}..{}us]",
                k_epoch, kernel_span.0, kernel_span.1, k_epoch + 1, chunk_span.0, chunk_span.1,
            );
            return;
        }
    }
    panic!("no cross-epoch overlap observed in {ATTEMPTS} attempts");
}

/// A wall-clock extent in trace microseconds.
type ExtentUs = (u64, u64);

/// One serving campaign: opens a depth-2 stream, submits `EPOCHS` rounds
/// with per-round input mutation, checks the results, and scans the trace
/// for an epoch-N kernel span overlapping an epoch-N+1 chunk span.
/// Returns `(N, kernel_extent_us, chunk_extent_us)` on success.
fn serve_once() -> Option<(u64, ExtentUs, ExtentUs)> {
    let trace = TraceCollector::shared();
    let ex = Executor::builder(2, 2)
        .copy_chunk_threshold(64 * 1024)
        .copy_lanes(2)
        .tracer(Arc::clone(&trace))
        .build();

    // Branch A: small pull -> scoring kernel (the per-round compute).
    // Branch B: large pull, re-copied every round (the per-round data).
    // The control edge B -> kernel orders copy before compute within a
    // round but carries no data, so placement keeps the groups on
    // different devices.
    let features: HostVec<f32> = HostVec::from_vec(vec![1.0; FEATURES]);
    let table: HostVec<f32> = HostVec::from_vec(vec![0.5; TABLE]);
    let g = Heteroflow::new("serving_round");
    let pf = g.pull("pull_features", &features);
    let k = g.kernel("score", &[&pf], |cfg, args| {
        let v = args.slice_mut::<f32>(0).expect("features");
        for t in cfg.threads() {
            if t < v.len() {
                v[t] = v[t].mul_add(1.5, 0.25);
            }
        }
        // Device occupancy: holds this engine (not the host CPU) so the
        // kernel span is wide on the trace.
        std::thread::sleep(Duration::from_millis(OCCUPANCY_MS));
    });
    k.cover(FEATURES, 256);
    pf.precede(&k);
    let pt = g.pull("pull_table", &table);
    pt.precede(&k);

    let session = ex.run_stream(&g).expect("open stream");
    let futures: Vec<_> = (0..EPOCHS)
        .map(|e| {
            let table = table.clone();
            // Fresh table bytes each round: the chunked H2D must really
            // run every epoch (no elision).
            session.submit_with(move || {
                table.write()[0] = e as f32;
            })
        })
        .collect();
    for (e, f) in futures.iter().enumerate() {
        f.wait().unwrap_or_else(|err| panic!("epoch {e} failed: {err}"));
    }
    session.close();
    drop(ex);

    let spans = trace.spans();
    // Kernel spans and H2D chunk spans, both tagged with their epoch.
    // Span names stay epoch-free; the epoch rides as a field.
    let kernels: Vec<_> = spans
        .iter()
        .filter(|s| s.cat == SpanCat::Task && s.name == "score" && s.epoch.is_some())
        .collect();
    let chunks: Vec<_> = spans
        .iter()
        .filter(|s| {
            matches!(s.track, Track::Device(_))
                && s.cat == SpanCat::Task
                && s.name.contains("#c")
                && s.epoch.is_some()
        })
        .collect();
    assert_eq!(kernels.len(), EPOCHS, "one kernel span per epoch");
    assert!(!chunks.is_empty(), "chunked H2D produced no chunk spans");

    for kspan in &kernels {
        let ke = kspan.epoch.expect("filtered");
        let next: Vec<_> = chunks
            .iter()
            .filter(|c| c.epoch == Some(ke + 1))
            .collect();
        if next.is_empty() {
            continue;
        }
        let first = next.iter().map(|c| c.start_us).min().expect("non-empty");
        let last = next.iter().map(|c| c.end_us()).max().expect("non-empty");
        if kspan.start_us < last && first < kspan.end_us() {
            return Some((ke, (kspan.start_us, kspan.end_us()), (first, last)));
        }
    }
    None
}
