//! Quickstart: the paper's Listing 1 — saxpy ("single-precision A·X plus
//! Y") as a Heteroflow task graph.
//!
//! Two host tasks create the data vectors, two pull tasks send them to a
//! GPU, one kernel task computes `y = a*x + y` on the device, and two
//! push tasks bring the results home (Fig 1).
//!
//! Run: `cargo run --example quickstart`

use heteroflow::prelude::*;

const N: usize = 65536;

fn main() {
    // An executor with 8 CPU worker threads and 4 (software) GPUs.
    let executor = Executor::new(8, 4);
    let g = Heteroflow::new("saxpy");

    let x: HostVec<i32> = HostVec::new();
    let y: HostVec<i32> = HostVec::new();

    // Host tasks run callables on CPU cores. The pulls below see the
    // resized vectors because pull tasks bind their data *statefully* —
    // contents are read when the copy executes, not when it is declared.
    let host_x = g.host("host_x", {
        let x = x.clone();
        move || x.write().resize(N, 1)
    });
    let host_y = g.host("host_y", {
        let y = y.clone();
        move || y.write().resize(N, 2)
    });

    let pull_x = g.pull("pull_x", &x);
    let pull_y = g.pull("pull_y", &y);

    // The kernel binds to its pull tasks (its device-data gateways) and a
    // launch shape, exactly like `<<<grid, block>>>` in Listing 1.
    let a = 2i32;
    let kernel = g.kernel("saxpy", &[&pull_x, &pull_y], move |cfg, args| {
        let (xs, ys) = args.slice2_mut::<i32, i32>(0, 1).expect("disjoint buffers");
        for i in cfg.threads() {
            if i < N {
                ys[i] += a * xs[i];
            }
        }
    });
    kernel.block_x(256).grid_x((N as u32).div_ceil(256));

    let push_x = g.push("push_x", &pull_x, &x);
    let push_y = g.push("push_y", &pull_y, &y);

    // Dependencies are explicit; Heteroflow never adds implicit edges.
    host_x.precede(&pull_x);
    host_y.precede(&pull_y);
    kernel.succeed_all(&[&pull_x, &pull_y]);
    kernel.precede_all(&[&push_x, &push_y]);

    // The static analyzer confirms the graph is well-formed before it
    // ever runs (no races, no missing pull dependencies, no dead tasks).
    assert!(g.analyze().is_clean(), "lint:\n{}", g.analyze().render_text());

    // Non-blocking submission; the future reports completion.
    let future = executor.run(&g);
    future.wait().expect("saxpy graph runs");

    let ys = y.read();
    assert!(ys.iter().all(|&v| v == 4), "y = 2*1 + 2 everywhere");
    println!("saxpy over {N} elements: y[0..4] = {:?} (expected all 4s)", &ys[..4]);
    println!("\nTask graph in DOT (render with `dot -Tpng`):\n{}", g.dump());
}
