//! Chase–Lev work-stealing deque.
//!
//! The owner pushes and pops at the *bottom*; thieves steal from the *top*.
//! This is the queue behind every Heteroflow executor worker (paper §III-C:
//! "the scheduler enters a work-stealing loop where each worker thread
//! iteratively drains out tasks from its local queue and transitions to a
//! thief").
//!
//! The implementation follows the memory-ordering discipline of Lê et al.,
//! *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP'13),
//! restricted to `T: Copy` elements. Heteroflow only ever stores node
//! indices in the deque, so `Copy` costs nothing and removes every
//! ownership question from the concurrent paths: a value read by a loser of
//! the top-CAS race is simply never used.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

const MIN_CAP: usize = 64;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// A concurrent operation interfered; the caller may retry.
    Retry,
    /// A value was stolen.
    Success(T),
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// Fixed-capacity ring buffer; grown by allocating a bigger one and keeping
/// the old buffer alive until the deque is dropped (so racing thieves can
/// still read from a stale buffer pointer without use-after-free).
struct Buffer<T> {
    cap: usize,
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the `UnsafeCell` slots only hold `T` values; moving the buffer
// between threads is sound whenever `T` itself is `Send`.
unsafe impl<T: Send> Send for Buffer<T> {}
// SAFETY: shared access is governed by the Chase–Lev protocol (owner-only
// writes, top-CAS-gated reads); any racy read is discarded by the loser,
// and `T: Copy` means such a read never observes partially-moved state.
unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T: Copy> Buffer<T> {
    fn new(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Self {
            cap,
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Writes `v` at logical index `i`.
    ///
    /// # Safety
    ///
    /// Caller must be the unique owner of that slot (only the deque owner
    /// writes, and only to slots outside the live `top..bottom` window).
    #[inline]
    unsafe fn write(&self, i: isize, v: T) {
        let slot = &self.slots[(i as usize) & self.mask];
        (*slot.get()).write(v);
    }

    /// Reads the value at logical index `i`.
    ///
    /// # Safety
    ///
    /// `i` must have been initialized by a prior `write`. The read may
    /// race with a writer on a *different* logical index mapping to the
    /// same slot only if the caller already lost the top-CAS; the
    /// returned value is then discarded. `T: Copy` makes the read itself
    /// harmless.
    #[inline]
    unsafe fn read(&self, i: isize) -> T {
        let slot = &self.slots[(i as usize) & self.mask];
        (*slot.get()).assume_init_read()
    }
}

struct Inner<T> {
    /// Next index thieves steal from.
    top: AtomicIsize,
    /// Next index the owner pushes to.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by `grow`; freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: `Inner` owns its buffers through raw pointers; ownership moves
// with the struct, so `Send` needs only `T: Send`.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: concurrent access to the buffer pointers follows the Chase–Lev
// protocol — `grow` retires (never frees) replaced buffers, so a stale
// pointer held by a racing thief always stays dereferenceable until drop.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no owner or thief handle is alive, so
        // the current buffer and every retired buffer are exclusively ours;
        // each was created by `Box::into_raw` and is freed exactly once.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for b in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(b));
            }
        }
    }
}

/// Owner handle of a Chase–Lev deque. Not `Clone`: exactly one thread may
/// push/pop. Create stealer handles with [`StealDeque::stealer`].
pub struct StealDeque<T: Copy + Send> {
    inner: Arc<Inner<T>>,
}

/// Thief handle; cheap to clone and share across threads.
pub struct Stealer<T: Copy + Send> {
    inner: Arc<Inner<T>>,
}

impl<T: Copy + Send> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Send> fmt::Debug for StealDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StealDeque").field("len", &self.len()).finish()
    }
}

impl<T: Copy + Send> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer")
    }
}

impl<T: Copy + Send> Default for StealDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Send> StealDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        let buf = Box::into_raw(Box::new(Buffer::<T>::new(MIN_CAP)));
        Self {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(buf),
                retired: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Creates a thief handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of elements currently visible (approximate under concurrency).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value at the bottom (owner only).
    pub fn push(&self, v: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);

        // SAFETY: we are the unique owner (StealDeque is not Clone), so
        // `buf` is the live buffer and slot `b` is outside the window
        // thieves may read (`top..bottom` excludes `b` until the release
        // store below publishes it).
        unsafe {
            if b - t >= (*buf).cap as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, v);
        }
        // Release the write to thieves that acquire `bottom`.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Grows the buffer to twice the capacity, copying the live window.
    /// Returns the new buffer pointer. The old buffer is retired, not
    /// freed, because a thief may still hold a pointer to it.
    ///
    /// # Safety
    ///
    /// Owner-only: `old` must be the current live buffer and `t..b` its
    /// initialized window.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Box::into_raw(Box::new(Buffer::<T>::new((*old).cap * 2)));
        for i in t..b {
            (*new).write(i, (*old).read(i));
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.lock().unwrap().push(old);
        new
    }

    /// Pops a value from the bottom (owner only, LIFO).
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // SeqCst fence: order the bottom store before the top load, against
        // the thief's top-CAS / bottom-load pair (classic Chase–Lev race).
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t > b {
            // Already empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }

        // SAFETY: `t <= b` here, so slot `b` is inside the initialized
        // window; we are the owner, so no writer can touch it.
        let v = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: race with thieves via CAS on top.
            let won = inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            inner.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                Some(v)
            } else {
                None
            }
        } else {
            Some(v)
        }
    }
}

impl<T: Copy + Send> Stealer<T> {
    /// Attempts to steal one value from the top (FIFO relative to pushes).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);

        if t >= b {
            return Steal::Empty;
        }

        // Read the value *before* the CAS; if we lose the race the value is
        // discarded (safe because T: Copy).
        let buf = inner.buffer.load(Ordering::Acquire);
        // SAFETY: `t < b` was observed, so slot `t` was initialized; `buf`
        // stays dereferenceable even if the owner grew concurrently (old
        // buffers are retired, not freed), and a lost CAS discards `v`.
        let v = unsafe { (*buf).read(t) };

        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(v)
        } else {
            Steal::Retry
        }
    }

    /// Approximate number of visible elements.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let d = StealDeque::new();
        for i in 0..10 {
            d.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let d = StealDeque::new();
        let s = d.stealer();
        for i in 0..5 {
            d.push(i);
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(4));
        assert_eq!(s.steal(), Steal::Success(2));
    }

    #[test]
    fn steal_empty() {
        let d: StealDeque<u32> = StealDeque::new();
        assert_eq!(d.stealer().steal(), Steal::Empty);
    }

    #[test]
    fn grows_past_min_capacity() {
        let d = StealDeque::new();
        let n = MIN_CAP * 4 + 3;
        for i in 0..n {
            d.push(i);
        }
        assert_eq!(d.len(), n);
        for i in (0..n).rev() {
            assert_eq!(d.pop(), Some(i));
        }
    }

    #[test]
    fn len_tracks_both_ends() {
        let d = StealDeque::new();
        let s = d.stealer();
        for i in 0..8 {
            d.push(i);
        }
        assert_eq!(d.len(), 8);
        d.pop();
        s.steal();
        assert_eq!(d.len(), 6);
        assert_eq!(s.len(), 6);
    }

    /// Every pushed element is received exactly once across the owner and
    /// many thieves — no loss, no duplication.
    #[test]
    fn concurrent_no_loss_no_duplication() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let d = StealDeque::new();
        let stealers: Vec<_> = (0..THIEVES).map(|_| d.stealer()).collect();
        let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let handles: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                let done = std::sync::Arc::clone(&done);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut owner_got = Vec::new();
        for i in 0..N {
            d.push(i);
            if i % 3 == 0 {
                if let Some(v) = d.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = d.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all: Vec<usize> = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), N, "lost or duplicated elements");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), N, "duplicated elements");
    }
}
