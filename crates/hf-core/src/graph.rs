//! The task dependency graph: construction ("builder") and the frozen,
//! executable form.
//!
//! A [`Heteroflow`] is a DAG whose nodes are *host*, *pull*, *push*, and
//! *kernel* tasks and whose edges are explicit dependency constraints
//! (§III-A). Users build it through [`Heteroflow::host`],
//! [`Heteroflow::pull`], [`Heteroflow::push`], [`Heteroflow::kernel`] and
//! the `precede`/`succeed` methods on the returned task handles, then hand
//! it to an [`crate::Executor`].
//!
//! Internally construction happens on a mutable builder; submitting the
//! graph *freezes* it into an immutable [`FrozenGraph`] shared with the
//! executor's worker threads. Re-submitting an unmodified graph reuses the
//! frozen form.

use crate::data::{HostSink, HostSource};
use crate::error::HfError;
use crate::task::{HostTask, KernelTask, PullTask, PushTask, TaskRef};
use hf_gpu::{DevicePtr, KernelFn, LaunchConfig};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// The four task categories of the Heteroflow programming model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Runs a callable on a CPU core.
    Host,
    /// Copies data from the host to a GPU (H2D).
    Pull,
    /// Copies data from a GPU back to the host (D2H).
    Push,
    /// Offloads computation to a GPU.
    Kernel,
    /// A placeholder not yet assigned work.
    Placeholder,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskKind::Host => "host",
            TaskKind::Pull => "pull",
            TaskKind::Push => "push",
            TaskKind::Kernel => "kernel",
            TaskKind::Placeholder => "placeholder",
        };
        f.write_str(s)
    }
}

/// Shareable host-task callable.
pub(crate) type HostFn = Arc<Mutex<Box<dyn FnMut() + Send>>>;

/// Work payload of a node (builder and frozen forms share it; closures are
/// behind `Arc` so freezing clones cheaply).
pub(crate) enum Work {
    Empty,
    Host(HostFn),
    Pull {
        source: Arc<dyn HostSource>,
    },
    Push {
        source_pull: usize,
        sink: Arc<dyn HostSink>,
    },
    Kernel {
        func: KernelFn,
        sources: Vec<usize>,
    },
}

impl Work {
    pub(crate) fn kind(&self) -> TaskKind {
        match self {
            Work::Empty => TaskKind::Placeholder,
            Work::Host(_) => TaskKind::Host,
            Work::Pull { .. } => TaskKind::Pull,
            Work::Push { .. } => TaskKind::Push,
            Work::Kernel { .. } => TaskKind::Kernel,
        }
    }

    fn clone_payload(&self) -> Work {
        match self {
            Work::Empty => Work::Empty,
            Work::Host(f) => Work::Host(Arc::clone(f)),
            Work::Pull { source } => Work::Pull {
                source: Arc::clone(source),
            },
            Work::Push { source_pull, sink } => Work::Push {
                source_pull: *source_pull,
                sink: Arc::clone(sink),
            },
            Work::Kernel { func, sources } => Work::Kernel {
                func: Arc::clone(func),
                sources: sources.clone(),
            },
        }
    }
}

/// A node in the builder.
pub(crate) struct BuildNode {
    pub(crate) name: String,
    pub(crate) work: Work,
    pub(crate) succ: Vec<usize>,
    pub(crate) pred: Vec<usize>,
    /// Kernel launch configuration (kernels only).
    pub(crate) cfg: LaunchConfig,
    /// Declared kernel cost in abstract work units (kernels only).
    pub(crate) work_units: f64,
    /// Host-buffer ids this task declares it reads (host tasks; see
    /// [`crate::HostTask::reads`]). Consumed by the static analyzer only.
    pub(crate) reads: Vec<usize>,
    /// Host-buffer ids this task declares it writes (host tasks).
    pub(crate) writes: Vec<usize>,
}

pub(crate) struct Builder {
    pub(crate) name: String,
    pub(crate) nodes: Vec<BuildNode>,
    pub(crate) dirty: bool,
    /// Monotonic mutation counter: every structural or payload change
    /// bumps it, invalidating the per-executor scheduling cache keyed on
    /// it (freeze + placement + fusion of the unchanged graph).
    pub(crate) epoch: u64,
}

impl Builder {
    /// Marks the graph mutated: stales the frozen snapshot and advances
    /// the epoch so cached placements are not reused.
    pub(crate) fn touch(&mut self) {
        self.dirty = true;
        self.epoch = self.epoch.wrapping_add(1);
    }

    fn add(&mut self, name: &str, work: Work) -> usize {
        self.touch();
        self.nodes.push(BuildNode {
            name: name.to_owned(),
            work,
            succ: Vec::new(),
            pred: Vec::new(),
            cfg: LaunchConfig::default(),
            work_units: 0.0,
            reads: Vec::new(),
            writes: Vec::new(),
        });
        self.nodes.len() - 1
    }

    pub(crate) fn add_edge(&mut self, from: usize, to: usize) {
        // Ignore duplicate edges: precede(a); precede(a) must not double
        // the join counter.
        if self.nodes[from].succ.contains(&to) {
            return;
        }
        self.touch();
        self.nodes[from].succ.push(to);
        self.nodes[to].pred.push(from);
    }
}

/// Runtime state of a pull node: its current device allocation plus the
/// residency record that lets unchanged re-pulls skip the H2D copy.
///
/// The allocation persists across rounds and submissions for as long as
/// the frozen snapshot lives; dropping the snapshot (graph mutation or
/// executor teardown) returns it to the owning device's pool.
#[derive(Debug, Default)]
pub(crate) struct PullState {
    pub(crate) ptr: Option<DevicePtr>,
    /// Host-source version whose bytes the device buffer currently holds.
    /// `None` means the device copy is invalid (never copied, source is
    /// unversioned, a kernel mutated the buffer, or retry/failover/
    /// cancellation tore it down) and the next pull must copy.
    pub(crate) resident_version: Option<u64>,
    /// Handle to the device owning `ptr` — used for `free` on drop and to
    /// verify residency still refers to the live runtime's device.
    pub(crate) device: Option<hf_gpu::Device>,
}

impl Drop for PullState {
    fn drop(&mut self) {
        if let (Some(ptr), Some(dev)) = (self.ptr.take(), self.device.take()) {
            // Best-effort: a lost device rejects the free, which is fine —
            // its arena dies with it.
            let _ = dev.free(ptr);
        }
    }
}

/// An immutable, executable snapshot of the graph.
pub struct FrozenGraph {
    pub(crate) name: String,
    pub(crate) nodes: Vec<FrozenNode>,
    /// Node ids with no predecessors (the round's initial ready set).
    pub(crate) sources: Vec<usize>,
}

pub(crate) struct FrozenNode {
    pub(crate) name: String,
    pub(crate) work: Work,
    pub(crate) succ: Vec<usize>,
    pub(crate) num_deps: usize,
    pub(crate) cfg: LaunchConfig,
    pub(crate) work_units: f64,
    pub(crate) pull_state: Mutex<PullState>,
}

impl FrozenGraph {
    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Task category of node `id`.
    pub fn kind(&self, id: usize) -> TaskKind {
        self.nodes[id].work.kind()
    }

    /// Verifies acyclicity via Kahn's algorithm. Returns the tasks of one
    /// cycle in dependency order (first task's edge leads to the second,
    /// and the last task's edge closes back to the first), if any.
    fn find_cycle(nodes: &[FrozenNode]) -> Option<Vec<String>> {
        let succ: Vec<&[usize]> = nodes.iter().map(|n| n.succ.as_slice()).collect();
        crate::analyze::cycle_path(&succ)
            .map(|ids| ids.into_iter().map(|i| nodes[i].name.clone()).collect())
    }
}

/// State of queued/active executions of one graph. Only one run (a
/// sequential driver or an open streaming session) holds the graph's
/// claim at a time; further `run`/`run_stream` calls queue a starter
/// closure behind it (the paper's topology list, §III-C) which the
/// releasing owner promotes.
pub(crate) struct RunState {
    /// True while a driver or session owns this graph's claim.
    pub(crate) active: bool,
    /// Starter closures of runs waiting for the active one to finish.
    pub(crate) queued: std::collections::VecDeque<Box<dyn FnOnce() + Send>>,
}

/// Cached result of the per-submission scheduling preamble (freeze +
/// Algorithm 1 placement + fusion planning) for one executor. Valid while
/// the builder epoch matches; any mutation bumps the epoch and the next
/// submission recomputes.
pub(crate) struct SchedCache {
    /// Identity of the executor the placement was computed for (device
    /// count, policy, cost model and fusion flag are per-executor).
    pub(crate) exec_id: u64,
    /// Builder epoch the cache was computed at.
    pub(crate) epoch: u64,
    pub(crate) placement: Arc<crate::placement::Placement>,
    pub(crate) fusion: Arc<crate::topology::FusionPlan>,
    /// This graph's own modeled load per device (placement loads minus
    /// the bias snapshot they were computed against), re-applied to the
    /// executor's decaying device-load estimate on cache hits.
    pub(crate) own_loads: Vec<f64>,
}

pub(crate) struct GraphShared {
    pub(crate) builder: Mutex<Builder>,
    pub(crate) frozen: Mutex<Option<Arc<FrozenGraph>>>,
    pub(crate) run_state: Mutex<RunState>,
    /// Single-entry scheduling cache (graphs overwhelmingly run on one
    /// executor at a time; a second executor simply evicts the entry).
    pub(crate) sched_cache: Mutex<Option<SchedCache>>,
    /// Cached static-analysis report, keyed on the builder epoch it was
    /// computed at (any mutation bumps the epoch and invalidates it), so
    /// repeated submissions of an unchanged graph lint once.
    pub(crate) lint_cache: Mutex<Option<(u64, Arc<crate::analyze::Report>)>>,
}

/// A CPU-GPU task dependency graph.
///
/// Mirrors the paper's `hf::Heteroflow` object: an object-oriented
/// container for tasks and dependencies, independent of any executor.
/// Cloning the handle shares the same underlying graph.
///
/// ```
/// use hf_core::{Heteroflow, data::HostVec};
/// let g = Heteroflow::new("demo");
/// let x: HostVec<i32> = HostVec::new();
/// let h = g.host("make_x", {
///     let x = x.clone();
///     move || x.write().resize(16, 1)
/// });
/// let p = g.pull("pull_x", &x);
/// h.precede(&p);
/// assert_eq!(g.num_tasks(), 2);
/// ```
#[derive(Clone)]
pub struct Heteroflow {
    pub(crate) shared: Arc<GraphShared>,
}

impl fmt::Debug for Heteroflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.shared.builder.lock();
        f.debug_struct("Heteroflow")
            .field("name", &b.name)
            .field("num_tasks", &b.nodes.len())
            .finish()
    }
}

impl Heteroflow {
    /// Creates an empty graph.
    pub fn new(name: &str) -> Self {
        Self {
            shared: Arc::new(GraphShared {
                builder: Mutex::new(Builder {
                    name: name.to_owned(),
                    nodes: Vec::new(),
                    dirty: true,
                    epoch: 0,
                }),
                frozen: Mutex::new(None),
                run_state: Mutex::new(RunState {
                    active: false,
                    queued: std::collections::VecDeque::new(),
                }),
                sched_cache: Mutex::new(None),
                lint_cache: Mutex::new(None),
            }),
        }
    }

    /// Graph name.
    pub fn name(&self) -> String {
        self.shared.builder.lock().name.clone()
    }

    /// Number of tasks created so far.
    pub fn num_tasks(&self) -> usize {
        self.shared.builder.lock().nodes.len()
    }

    /// True if no tasks have been created.
    pub fn is_empty(&self) -> bool {
        self.num_tasks() == 0
    }

    /// Number of dependency links created so far.
    pub fn num_dependencies(&self) -> usize {
        self.shared
            .builder
            .lock()
            .nodes
            .iter()
            .map(|n| n.succ.len())
            .sum()
    }

    /// Number of tasks of each kind `(host, pull, push, kernel,
    /// placeholder)` — a quick structural fingerprint.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize, usize) {
        let b = self.shared.builder.lock();
        let mut c = (0, 0, 0, 0, 0);
        for n in &b.nodes {
            match n.work.kind() {
                TaskKind::Host => c.0 += 1,
                TaskKind::Pull => c.1 += 1,
                TaskKind::Push => c.2 += 1,
                TaskKind::Kernel => c.3 += 1,
                TaskKind::Placeholder => c.4 += 1,
            }
        }
        c
    }

    fn task_ref(&self, id: usize) -> TaskRef {
        TaskRef {
            graph: Arc::clone(&self.shared),
            id,
        }
    }

    /// Creates a *host* task running `f` on a CPU core (Listing 2).
    pub fn host<F>(&self, name: &str, f: F) -> HostTask
    where
        F: FnMut() + Send + 'static,
    {
        let id = self
            .shared
            .builder
            .lock()
            .add(name, Work::Host(Arc::new(Mutex::new(Box::new(f)))));
        HostTask(self.task_ref(id))
    }

    /// Creates a *pull* task copying `source`'s bytes host→device
    /// (Listing 3). The copy is *stateful*: the bytes are read when the
    /// task executes, so preceding host tasks may resize or fill the data.
    pub fn pull(&self, name: &str, source: &(impl HostSource + Clone)) -> PullTask {
        self.pull_source(name, Arc::new(source.clone()))
    }

    /// `pull` with an explicit type-erased source.
    pub fn pull_source(&self, name: &str, source: Arc<dyn HostSource>) -> PullTask {
        let id = self
            .shared
            .builder
            .lock()
            .add(name, Work::Pull { source });
        PullTask(self.task_ref(id))
    }

    /// Creates a *push* task copying `pull`'s device data back into
    /// `sink` (Listing 5).
    pub fn push(
        &self,
        name: &str,
        pull: &PullTask,
        sink: &(impl HostSink + Clone),
    ) -> PushTask {
        self.push_sink(name, pull, Arc::new(sink.clone()))
    }

    /// `push` with an explicit type-erased sink.
    pub fn push_sink(&self, name: &str, pull: &PullTask, sink: Arc<dyn HostSink>) -> PushTask {
        assert!(
            Arc::ptr_eq(&pull.0.graph, &self.shared),
            "push source pull task belongs to a different Heteroflow"
        );
        let id = self.shared.builder.lock().add(
            name,
            Work::Push {
                source_pull: pull.0.id,
                sink,
            },
        );
        PushTask(self.task_ref(id))
    }

    /// Creates a *kernel* task offloading `f` to a GPU (Listing 7). The
    /// pull tasks in `sources` are the kernel's device-data gateways; the
    /// scheduler unions them with the kernel for device placement
    /// (Algorithm 1). Dependencies remain explicit: the caller must still
    /// add `pull.precede(&kernel)` edges.
    pub fn kernel<F>(&self, name: &str, sources: &[&PullTask], f: F) -> KernelTask
    where
        F: Fn(&LaunchConfig, &mut hf_gpu::KernelArgs<'_, '_>) + Send + Sync + 'static,
    {
        for s in sources {
            assert!(
                Arc::ptr_eq(&s.0.graph, &self.shared),
                "kernel source pull task belongs to a different Heteroflow"
            );
        }
        let ids = sources.iter().map(|s| s.0.id).collect();
        let id = self.shared.builder.lock().add(
            name,
            Work::Kernel {
                func: Arc::new(f),
                sources: ids,
            },
        );
        KernelTask(self.task_ref(id))
    }

    /// Creates an empty placeholder task (§III-A.1): a node whose work is
    /// assigned later via [`TaskRef::assign_host`]. Executing it
    /// unassigned is an error.
    pub fn placeholder(&self, name: &str) -> TaskRef {
        let id = self.shared.builder.lock().add(name, Work::Empty);
        self.task_ref(id)
    }

    /// Freezes the graph for execution, verifying acyclicity. Reuses the
    /// previous snapshot when nothing changed. Fails with
    /// [`HfError::GraphBusy`] if the graph was modified while a topology
    /// is still running.
    ///
    /// The busy contract, precisely: `GraphBusy` is only possible for a
    /// graph that was *mutated* (tasks or edges added, work assigned)
    /// after a run of it started and before that run finished.
    /// Re-submitting an **unchanged** graph concurrently — from any
    /// number of threads — never fails; the submissions queue on the
    /// graph's run claim and execute back-to-back in submission order.
    /// Submissions of *different* graphs never interact: each graph has
    /// its own claim, and their topologies run concurrently on the
    /// shared workers.
    pub fn freeze(&self) -> Result<Arc<FrozenGraph>, HfError> {
        self.freeze_with_epoch().map(|(f, _)| f)
    }

    /// [`Heteroflow::freeze`] plus the builder epoch the snapshot belongs
    /// to, read atomically under the builder lock. The executor keys its
    /// placement cache on the epoch.
    pub(crate) fn freeze_with_epoch(&self) -> Result<(Arc<FrozenGraph>, u64), HfError> {
        let mut b = self.shared.builder.lock();
        if !b.dirty {
            if let Some(f) = self.shared.frozen.lock().as_ref() {
                return Ok((Arc::clone(f), b.epoch));
            }
        }
        if self.shared.run_state.lock().active {
            return Err(HfError::GraphBusy);
        }
        // Residency carry-over: a re-freeze (graph mutated) would reset
        // every pull's device buffer, forcing full recopies even of
        // untouched data. Instead, move each still-present pull's state —
        // matched by (name, storage identity) — from the retiring
        // snapshot into the new one. The old topology has fully drained
        // (`active` is false), so nothing is executing against the old
        // state; taking it out also keeps the old snapshot's `Drop` from
        // freeing the transplanted buffer.
        let prev = self.shared.frozen.lock().clone();
        let mut carry: std::collections::HashMap<(String, usize), usize> = Default::default();
        if let Some(prev) = &prev {
            for (i, n) in prev.nodes.iter().enumerate() {
                if let Work::Pull { source } = &n.work {
                    if let Some(sid) = source.source_id() {
                        carry.insert((n.name.clone(), sid), i);
                    }
                }
            }
        }
        let nodes: Vec<FrozenNode> = b
            .nodes
            .iter()
            .map(|n| {
                let pull_state = match (&n.work, &prev) {
                    (Work::Pull { source }, Some(prev)) => source
                        .source_id()
                        .and_then(|sid| carry.remove(&(n.name.clone(), sid)))
                        .map(|old| std::mem::take(&mut *prev.nodes[old].pull_state.lock()))
                        .unwrap_or_default(),
                    _ => PullState::default(),
                };
                FrozenNode {
                    name: n.name.clone(),
                    work: n.work.clone_payload(),
                    succ: n.succ.clone(),
                    num_deps: n.pred.len(),
                    cfg: n.cfg,
                    work_units: n.work_units,
                    pull_state: Mutex::new(pull_state),
                }
            })
            .collect();
        if let Some(path) = FrozenGraph::find_cycle(&nodes) {
            return Err(HfError::CycleDetected { path });
        }
        let sources = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.num_deps == 0)
            .map(|(i, _)| i)
            .collect();
        let frozen = Arc::new(FrozenGraph {
            name: b.name.clone(),
            nodes,
            sources,
        });
        *self.shared.frozen.lock() = Some(Arc::clone(&frozen));
        b.dirty = false;
        Ok((frozen, b.epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;

    #[test]
    fn build_saxpy_shape() {
        let g = Heteroflow::new("saxpy");
        let x: HostVec<i32> = HostVec::new();
        let y: HostVec<i32> = HostVec::new();
        let hx = g.host("host_x", {
            let x = x.clone();
            move || x.write().resize(64, 1)
        });
        let hy = g.host("host_y", {
            let y = y.clone();
            move || y.write().resize(64, 2)
        });
        let px = g.pull("pull_x", &x);
        let py = g.pull("pull_y", &y);
        let k = g.kernel("saxpy", &[&px, &py], |_, _| {});
        let sx = g.push("push_x", &px, &x);
        let sy = g.push("push_y", &py, &y);
        hx.precede(&px);
        hy.precede(&py);
        k.succeed(&px).succeed(&py);
        k.precede(&sx).precede(&sy);
        assert_eq!(g.num_tasks(), 7);
        let f = g.freeze().unwrap();
        assert_eq!(f.num_tasks(), 7);
        assert_eq!(f.sources, vec![0, 1]);
        assert_eq!(f.kind(4), TaskKind::Kernel);
        assert_eq!(f.nodes[4].num_deps, 2);
        assert_eq!(f.nodes[4].succ, vec![5, 6]);
    }

    #[test]
    fn cycle_is_detected() {
        let g = Heteroflow::new("cyc");
        let a = g.host("a", || {});
        let b = g.host("b", || {});
        let c = g.host("c", || {});
        a.precede(&b);
        b.precede(&c);
        c.precede(&a);
        match g.freeze() {
            Err(HfError::CycleDetected { path }) => {
                // The full cycle, in dependency order from some rotation.
                assert_eq!(path.len(), 3);
                let start = path.iter().position(|n| n == "a").unwrap();
                let rotated: Vec<&str> =
                    (0..3).map(|i| path[(start + i) % 3].as_str()).collect();
                assert_eq!(rotated, vec!["a", "b", "c"]);
            }
            other => panic!("expected CycleDetected, got {:?}", other.err()),
        }
    }

    #[test]
    fn self_loop_cycle_path_is_single_task() {
        let g = Heteroflow::new("self");
        let a = g.host("a", || {});
        a.precede(&a);
        match g.freeze() {
            Err(HfError::CycleDetected { path }) => assert_eq!(path, vec!["a"]),
            other => panic!("expected CycleDetected, got {:?}", other.err()),
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Heteroflow::new("dup");
        let a = g.host("a", || {});
        let b = g.host("b", || {});
        a.precede(&b);
        a.precede(&b);
        b.succeed(&a);
        let f = g.freeze().unwrap();
        assert_eq!(f.nodes[0].succ, vec![1]);
        assert_eq!(f.nodes[1].num_deps, 1);
    }

    #[test]
    fn structural_counters() {
        let g = Heteroflow::new("counts");
        let x: HostVec<i32> = HostVec::from_vec(vec![1; 8]);
        let h = g.host("h", || {});
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        let s = g.push("s", &p, &x);
        g.placeholder("ph");
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        assert_eq!(g.num_dependencies(), 3);
        assert_eq!(g.kind_counts(), (1, 1, 1, 1, 1));
    }

    #[test]
    fn freeze_is_cached_until_dirty() {
        let g = Heteroflow::new("cache");
        g.host("a", || {});
        let f1 = g.freeze().unwrap();
        let f2 = g.freeze().unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        g.host("b", || {});
        let f3 = g.freeze().unwrap();
        assert!(!Arc::ptr_eq(&f1, &f3));
        assert_eq!(f3.num_tasks(), 2);
    }

    #[test]
    fn placeholder_then_assign() {
        let g = Heteroflow::new("ph");
        let p = g.placeholder("later");
        assert_eq!(p.kind(), TaskKind::Placeholder);
        p.assign_host(|| {});
        assert_eq!(p.kind(), TaskKind::Host);
        let f = g.freeze().unwrap();
        assert_eq!(f.kind(0), TaskKind::Host);
    }

    #[test]
    fn empty_graph_freezes() {
        let g = Heteroflow::new("empty");
        let f = g.freeze().unwrap();
        assert_eq!(f.num_tasks(), 0);
        assert!(f.sources.is_empty());
    }

    #[test]
    #[should_panic(expected = "different Heteroflow")]
    fn cross_graph_pull_panics() {
        let g1 = Heteroflow::new("g1");
        let g2 = Heteroflow::new("g2");
        let x: HostVec<i32> = HostVec::new();
        let p1 = g1.pull("p", &x);
        let _k = g2.kernel("k", &[&p1], |_, _| {});
    }
}
