//! Post-run critical-path profiling.
//!
//! [`hf_core::GraphInfo::critical_path_len`] counts the longest chain in
//! *tasks* — a structural lower bound. This module weighs the chain with
//! *measured* time: [`critical_path`] joins recorded spans to graph nodes
//! by task name, runs a longest-path DP along the dependency edges, and
//! reports the heaviest chain with per-kind time attribution. The result
//! answers the first profiling question — "which sequence of tasks bounds
//! my makespan, and is it compute, copies, or host work?"
//!
//! Spans must come from a single run of the graph (names join 1:1); use
//! device-stitched spans ([`hf_core::ExecutorBuilder::tracer`]) so GPU
//! durations are real device time, or simulated spans via
//! [`crate::export::spans_from_sim`].

use hf_core::{GraphInfo, SpanCat, TaskKind, TraceSpan};
use std::collections::HashMap;
use std::fmt;

/// One task on the critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Node id in the graph.
    pub node: usize,
    /// Task name.
    pub name: String,
    /// Task kind.
    pub kind: TaskKind,
    /// Measured duration in microseconds (0 when the task has no span).
    pub dur_us: u64,
    /// Measured start timestamp, when a span was found.
    pub start_us: Option<u64>,
}

/// The measured critical path of one graph run.
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// Graph name.
    pub graph: String,
    /// The longest (by measured time) dependency chain, in order.
    pub steps: Vec<PathStep>,
    /// Total measured time on the path, microseconds.
    pub total_us: u64,
    /// Path time attributed per task kind, heaviest first.
    pub by_kind: Vec<(TaskKind, u64)>,
    /// Number of tasks that had no matching span (counted as zero time).
    pub unmatched: usize,
}

impl CriticalPathReport {
    /// Fraction of path time spent in `kind`, in `[0, 1]`.
    pub fn fraction(&self, kind: TaskKind) -> f64 {
        if self.total_us == 0 {
            return 0.0;
        }
        self.by_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, us)| *us as f64 / self.total_us as f64)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "critical path of '{}': {} tasks, {} us",
            self.graph,
            self.steps.len(),
            self.total_us
        )?;
        for (kind, us) in &self.by_kind {
            writeln!(
                f,
                "  {:<12} {us:>10} us  ({:5.1}%)",
                kind.to_string(),
                100.0 * self.fraction(*kind)
            )?;
        }
        if self.unmatched > 0 {
            writeln!(f, "  ({} tasks had no span; counted as 0)", self.unmatched)?;
        }
        for s in &self.steps {
            writeln!(f, "    {:<10} {:>8} us  {}", s.kind.to_string(), s.dur_us, s.name)?;
        }
        Ok(())
    }
}

/// Computes the measured critical path of `info` from `spans`.
///
/// Only [`SpanCat::Task`] spans participate (dispatch windows, waits, and
/// pool traffic are overhead, not task time). When several Task spans
/// share a name (e.g. `run_n`), their durations are summed — so pass the
/// spans of a single run for per-run numbers.
pub fn critical_path(info: &GraphInfo, spans: &[TraceSpan]) -> CriticalPathReport {
    // Join spans to nodes by task name.
    let mut by_name: HashMap<&str, (u64, Option<u64>)> = HashMap::new();
    for s in spans {
        if s.cat != SpanCat::Task {
            continue;
        }
        let e = by_name.entry(s.name.as_str()).or_insert((0, None));
        e.0 += s.dur_us;
        e.1 = Some(e.1.map_or(s.start_us, |p: u64| p.min(s.start_us)));
    }

    let n = info.nodes.len();
    let mut dur = vec![0u64; n];
    let mut start = vec![None; n];
    let mut unmatched = 0usize;
    for (i, node) in info.nodes.iter().enumerate() {
        match by_name.get(node.name.as_str()) {
            Some(&(d, s)) => {
                dur[i] = d;
                start[i] = s;
            }
            None => unmatched += 1,
        }
    }

    // Longest path by measured time, over the DAG in topological order.
    // best[i] = heaviest path ending at i (inclusive); pred for recovery.
    let mut indeg: Vec<usize> = info.nodes.iter().map(|x| x.num_deps).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut best = dur.clone();
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut tail: Option<usize> = None;
    while let Some(u) = queue.pop() {
        if tail.is_none_or(|t| best[u] > best[t]) {
            tail = Some(u);
        }
        for &v in &info.nodes[u].successors {
            if best[u] + dur[v] > best[v] {
                best[v] = best[u] + dur[v];
                pred[v] = Some(u);
            }
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }

    let mut path = Vec::new();
    let mut cur = tail;
    while let Some(i) = cur {
        path.push(i);
        cur = pred[i];
    }
    path.reverse();

    let steps: Vec<PathStep> = path
        .iter()
        .map(|&i| PathStep {
            node: i,
            name: info.nodes[i].name.clone(),
            kind: info.nodes[i].kind,
            dur_us: dur[i],
            start_us: start[i],
        })
        .collect();
    let total_us = steps.iter().map(|s| s.dur_us).sum();
    let mut agg: HashMap<TaskKind, u64> = HashMap::new();
    for s in &steps {
        *agg.entry(s.kind).or_insert(0) += s.dur_us;
    }
    let mut by_kind: Vec<(TaskKind, u64)> = agg.into_iter().collect();
    by_kind.sort_by_key(|&(_, us)| std::cmp::Reverse(us));

    CriticalPathReport {
        graph: info.name.clone(),
        steps,
        total_us,
        by_kind,
        unmatched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_core::Track;

    fn span(name: &str, kind: TaskKind, start_us: u64, dur_us: u64) -> TraceSpan {
        TraceSpan {
            track: Track::Worker(0),
            name: name.to_string(),
            cat: SpanCat::Task,
            kind,
            device: None,
            stream: None,
            start_us,
            dur_us,
            bytes: 0,
            epoch: None,
        }
    }

    /// Diamond: a -> {b, c} -> d. b is slow, c fast: path is a-b-d.
    fn diamond() -> GraphInfo {
        use hf_core::data::HostVec;
        use hf_core::Heteroflow;
        let g = Heteroflow::new("diamond");
        let x: HostVec<u8> = HostVec::from_vec(vec![0; 16]);
        let a = g.host("a", || {});
        let b = g.pull("b", &x);
        let c = g.host("c", || {});
        let d = g.host("d", || {});
        a.precede(&b);
        a.precede(&c);
        b.precede(&d);
        c.precede(&d);
        g.info().unwrap()
    }

    #[test]
    fn picks_heaviest_chain_and_attributes_kinds() {
        let info = diamond();
        let spans = vec![
            span("a", TaskKind::Host, 0, 10),
            span("b", TaskKind::Pull, 10, 100),
            span("c", TaskKind::Host, 10, 5),
            span("d", TaskKind::Host, 110, 20),
        ];
        let r = critical_path(&info, &spans);
        let names: Vec<&str> = r.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
        assert_eq!(r.total_us, 130);
        assert_eq!(r.unmatched, 0);
        assert_eq!(r.by_kind[0], (TaskKind::Pull, 100));
        assert!((r.fraction(TaskKind::Host) - 30.0 / 130.0).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("critical path of 'diamond'"));
        assert!(text.contains("pull"));
    }

    #[test]
    fn non_task_spans_and_missing_spans_are_tolerated() {
        let info = diamond();
        let mut dispatch = span("b", TaskKind::Pull, 0, 999);
        dispatch.cat = SpanCat::Dispatch; // must be ignored
        let spans = vec![span("a", TaskKind::Host, 0, 10), dispatch];
        let r = critical_path(&info, &spans);
        // Only "a" carries weight; the rest of the chain rides at 0.
        assert_eq!(r.total_us, 10);
        assert_eq!(r.unmatched, 3);
        assert_eq!(r.steps.first().unwrap().name, "a");
    }

    #[test]
    fn empty_graph_yields_empty_report() {
        let info = GraphInfo {
            name: "empty".into(),
            nodes: Vec::new(),
        };
        let r = critical_path(&info, &[]);
        assert!(r.steps.is_empty());
        assert_eq!(r.total_us, 0);
    }
}
