//! Locality-aware placement A/B ablation: `PlacementPolicy::Locality`
//! versus the default `BalancedLoad` on two workloads.
//!
//! * **copy_heavy** — unequal pull-only lanes resubmitted across mutated
//!   epochs while an alternating interference graph skews the cross-graph
//!   device-load bias. BalancedLoad chases the bias and flips lanes
//!   between devices (recopying every flip); Locality's warm-residency
//!   credit keeps lanes pinned to the device already holding their bytes,
//!   so resubmissions elide. The bench asserts Locality never moves more
//!   bytes than BalancedLoad (and ≥25% fewer in full mode).
//! * **wavefront** — a dependency-dominated kernel grid where placement
//!   barely matters; guards that Locality's makespan stays within 5% of
//!   BalancedLoad (full mode).
//!
//! Usage: `cargo run --release -p hf-bench --bin bench_locality --
//! [--smoke] [--out BENCH_locality.json]`

use hf_bench::cli::Args;
use hf_core::data::HostVec;
use hf_core::{Executor, Heteroflow, PlacementPolicy};
use serde_json::json;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let out = args.get_str("out").unwrap_or("BENCH_locality.json").to_string();

    let copy_heavy = copy_heavy_ab(smoke);
    let wavefront = wavefront_ab(smoke);

    let bal_bytes = copy_heavy
        .get("balanced")
        .and_then(|v| v.get("bytes_h2d"))
        .and_then(|v| v.as_u64())
        .expect("balanced bytes");
    let loc_bytes = copy_heavy
        .get("locality")
        .and_then(|v| v.get("bytes_h2d"))
        .and_then(|v| v.as_u64())
        .expect("locality bytes");
    let reduction = 1.0 - loc_bytes as f64 / bal_bytes as f64;
    let ratio = wavefront
        .get("makespan_ratio")
        .and_then(|v| v.as_f64())
        .expect("makespan ratio");

    let doc = json!({
        "bench": "locality",
        "smoke": smoke,
        "copy_heavy": copy_heavy,
        "wavefront": wavefront,
        "bytes_reduction": reduction,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out, &text).expect("write report");
    println!("{text}");
    println!("\nwrote {out}");

    // Self-checks: CI runs --smoke and relies on these to gate merges.
    assert!(
        loc_bytes <= bal_bytes,
        "Locality moved MORE bytes than BalancedLoad: {loc_bytes} > {bal_bytes}"
    );
    println!("PASS copy_heavy: locality bytes {loc_bytes} <= balanced bytes {bal_bytes}");
    if !smoke {
        assert!(
            reduction >= 0.25,
            "Locality bytes reduction {reduction:.3} below the 25% target"
        );
        println!("PASS copy_heavy: bytes reduction {:.1}% >= 25%", reduction * 100.0);
        assert!(
            ratio <= 1.05,
            "Locality wavefront makespan ratio {ratio:.3} exceeds 1.05"
        );
        println!("PASS wavefront: makespan ratio {ratio:.3} <= 1.05");
    }
}

/// Runs the copy-heavy lane workload under one policy and reports the
/// transfer counters.
fn run_lanes(policy: PlacementPolicy, smoke: bool) -> serde_json::Value {
    let lanes = 4usize;
    let (lane_unit, epochs) = if smoke { (8 << 10, 6) } else { (64 << 10, 20) };
    let noise_elems = lane_unit / 2;

    let ex = Executor::builder(4, 2).placement_policy(policy).build();

    // Unequal lanes so LPT order (and therefore any bias-driven flip) is
    // deterministic: lane i pulls (i+1) x lane_unit i64 elements.
    let g = Heteroflow::new("lanes");
    let mut bufs = Vec::new();
    for lane in 0..lanes {
        let data: HostVec<i64> = HostVec::from_vec(vec![lane as i64; (lane + 1) * lane_unit]);
        g.pull(&format!("lane{lane}"), &data);
        bufs.push(data);
    }

    // Two single-pull interference graphs, run on alternating epochs.
    // Each caches its own placement, so re-running one re-applies its
    // modeled load to *its* device — alternating them seesaws the
    // cross-graph bias between the two devices every epoch.
    let noise_a_buf: HostVec<i64> = HostVec::from_vec(vec![1; noise_elems]);
    let noise_a = Heteroflow::new("noise_a");
    noise_a.pull("na", &noise_a_buf);
    let noise_b_buf: HostVec<i64> = HostVec::from_vec(vec![2; noise_elems]);
    let noise_b = Heteroflow::new("noise_b");
    noise_b.pull("nb", &noise_b_buf);

    let t0 = Instant::now();
    for epoch in 0..epochs {
        ex.run(&g).wait().expect("lane graph runs");
        let noise = if epoch % 2 == 0 { &noise_a } else { &noise_b };
        ex.run(noise).wait().expect("noise graph runs");
        // Any mutation bumps the builder epoch: the next submission
        // misses the scheduling cache and re-places against the shifted
        // bias, with lane residency carried over from this epoch.
        g.host(&format!("tick{epoch}"), || {});
    }
    let secs = t0.elapsed().as_secs_f64();

    let s = ex.stats().snapshot();
    let lane_bytes: u64 = (1..=lanes as u64).map(|k| k * lane_unit as u64 * 8).sum();
    json!({
        "epochs": epochs,
        "lane_bytes_total": lane_bytes,
        "bytes_h2d": s.bytes_h2d,
        "transfers_elided": s.transfers_elided,
        "placement_warm_hits": s.placement_warm_hits,
        "placement_est_bytes_saved": s.placement_est_bytes_saved,
        "placement_imbalance": s.placement_imbalance,
        "tasks_executed": s.tasks_executed,
        "secs": secs,
    })
}

/// Copy-heavy A/B: same workload, both policies, fresh executors.
fn copy_heavy_ab(smoke: bool) -> serde_json::Value {
    let balanced = run_lanes(PlacementPolicy::BalancedLoad, smoke);
    let locality = run_lanes(PlacementPolicy::Locality, smoke);
    json!({
        "balanced": balanced,
        "locality": locality,
    })
}

/// Builds a WxW wavefront kernel grid (each block's kernel waits on its
/// left and upper neighbors) and returns the makespan of one submission.
fn wavefront_once(policy: PlacementPolicy, w: usize, n: usize) -> f64 {
    let ex = Executor::builder(4, 2).placement_policy(policy).build();
    let g = Heteroflow::new("wavefront");
    let mut bufs = Vec::new();
    let mut kernels: Vec<Vec<hf_core::KernelTask>> = Vec::new();
    for i in 0..w {
        let mut row: Vec<hf_core::KernelTask> = Vec::new();
        for j in 0..w {
            let data: HostVec<f32> = HostVec::from_vec(vec![0.5; n]);
            let p = g.pull(&format!("pull_{i}_{j}"), &data);
            let k = g.kernel(&format!("block_{i}_{j}"), &[&p], move |cfg, args| {
                let v = args.slice_mut::<f32>(0).expect("arg");
                for t in cfg.threads() {
                    if t < v.len() {
                        v[t] = v[t].sin().mul_add(1.5, 0.25);
                    }
                }
            });
            k.cover(n, 128);
            p.precede(&k);
            if i > 0 {
                kernels[i - 1][j].precede(&k);
            }
            if j > 0 {
                row[j - 1].precede(&k);
            }
            row.push(k);
            bufs.push(data);
        }
        kernels.push(row);
    }
    // Warm once (placement + pools), then time the steady-state run.
    ex.run(&g).wait().expect("wavefront warms");
    let t0 = Instant::now();
    ex.run(&g).wait().expect("wavefront runs");
    t0.elapsed().as_secs_f64()
}

/// Wavefront makespan guard: min-of-N for each policy to squeeze out
/// scheduler noise, then the Locality/BalancedLoad ratio.
fn wavefront_ab(smoke: bool) -> serde_json::Value {
    let (w, n, reps) = if smoke { (3, 1 << 12, 2) } else { (4, 1 << 16, 7) };
    // Interleave the two policies so machine-load drift hits both sides
    // equally, and take each side's minimum.
    let mut balanced_secs = f64::INFINITY;
    let mut locality_secs = f64::INFINITY;
    for _ in 0..reps {
        balanced_secs = balanced_secs.min(wavefront_once(PlacementPolicy::BalancedLoad, w, n));
        locality_secs = locality_secs.min(wavefront_once(PlacementPolicy::Locality, w, n));
    }
    json!({
        "grid": w,
        "elems_per_block": n,
        "reps": reps,
        "balanced_secs": balanced_secs,
        "locality_secs": locality_secs,
        "makespan_ratio": locality_secs / balanced_secs,
    })
}
