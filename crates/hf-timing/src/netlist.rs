//! Gate-level circuit model and synthetic benchmark generator.
//!
//! The paper analyzes `netcard` (1.5M gates, 1.5M nets). That proprietary
//! ISPD benchmark is not available here, so [`Circuit::synthesize`]
//! produces circuits with the same structural statistics that matter for
//! the experiment: a deep combinational DAG between registers/IOs with a
//! skewed fanout distribution (most nets drive 1–4 sinks, a few drive
//! many) and realistic logic depth. Sizes are parameterized so the full
//! 1.5M-gate scale is reachable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Logic function of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input / register output (path start).
    Input,
    /// Primary output / register input (path end).
    Output,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
}

impl GateKind {
    /// Nominal propagation delay in nanoseconds at the typical corner.
    pub fn base_delay(self) -> f32 {
        match self {
            GateKind::Input | GateKind::Output => 0.0,
            GateKind::Inv => 0.010,
            GateKind::Buf => 0.012,
            GateKind::Nand => 0.015,
            GateKind::Nor => 0.017,
            GateKind::And => 0.020,
            GateKind::Or => 0.022,
            GateKind::Xor => 0.030,
        }
    }
}

/// One gate instance.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Logic function.
    pub kind: GateKind,
    /// Per-instance delay variation multiplier (process variation),
    /// sampled at synthesis time.
    pub delay_factor: f32,
}

/// Parameters for [`Circuit::synthesize`].
#[derive(Debug, Clone, Copy)]
pub struct CircuitConfig {
    /// Total gates (including IOs). The paper's netcard is 1.5M.
    pub num_gates: usize,
    /// Fraction of gates that are primary inputs (path starts).
    pub input_fraction: f64,
    /// Fraction of gates that are primary outputs (path ends).
    pub output_fraction: f64,
    /// Target mean fanin for logic gates (1..=2 realistic).
    pub mean_fanin: f64,
    /// Locality window: a gate draws fanins from the previous `window`
    /// gates, bounding logic depth like physical locality does.
    pub window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        Self {
            num_gates: 10_000,
            input_fraction: 0.08,
            output_fraction: 0.08,
            mean_fanin: 1.8,
            window: 512,
            seed: 0x5EED,
        }
    }
}

/// A combinational gate-level netlist as a DAG.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Gates, topologically ordered by construction.
    pub gates: Vec<Gate>,
    /// Fanin edges per gate (driver gate ids).
    pub fanin: Vec<Vec<u32>>,
    /// Fanout edges per gate (sink gate ids).
    pub fanout: Vec<Vec<u32>>,
    /// Primary inputs (no fanin).
    pub primary_inputs: Vec<u32>,
    /// Primary outputs (no fanout).
    pub primary_outputs: Vec<u32>,
    /// Gates grouped by logic level (levelization).
    pub levels: Vec<Vec<u32>>,
}

impl Circuit {
    /// Generates a synthetic circuit per `cfg`. Deterministic for a given
    /// seed.
    pub fn synthesize(cfg: &CircuitConfig) -> Circuit {
        assert!(cfg.num_gates >= 4, "need at least 4 gates");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = cfg.num_gates;
        let n_in = ((n as f64 * cfg.input_fraction) as usize).max(2);
        let n_out = ((n as f64 * cfg.output_fraction) as usize).max(2);
        let n_logic = n.saturating_sub(n_in + n_out);

        let mut gates = Vec::with_capacity(n);
        let mut fanin: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];

        // 1) Primary inputs.
        for _ in 0..n_in {
            gates.push(Gate {
                kind: GateKind::Input,
                delay_factor: 1.0,
            });
        }

        // 2) Logic gates, each drawing 1-3 fanins from a trailing window
        // (keeps the graph a DAG and bounds depth).
        let logic_kinds = [
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Inv,
            GateKind::Buf,
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
        ];
        for _ in 0..n_logic {
            let id = gates.len();
            let kind = logic_kinds[rng.gen_range(0..logic_kinds.len())];
            let nf = match kind {
                GateKind::Inv | GateKind::Buf => 1,
                _ => {
                    // Mean around cfg.mean_fanin, clipped to [1, 3].
                    let f = cfg.mean_fanin + rng.gen_range(-0.8..0.8);
                    (f.round() as usize).clamp(1, 3)
                }
            };
            let lo = id.saturating_sub(cfg.window);
            for _ in 0..nf {
                // Skewed driver selection: prefer recent gates (locality)
                // but occasionally reach far back (global nets).
                let src = if rng.gen_bool(0.9) {
                    rng.gen_range(lo..id)
                } else {
                    rng.gen_range(0..id)
                } as u32;
                if !fanin[id].contains(&src) {
                    fanin[id].push(src);
                    fanout[src as usize].push(id as u32);
                }
            }
            gates.push(Gate {
                kind,
                delay_factor: 1.0 + rng.gen_range(-0.1f32..0.1),
            });
        }

        // 3) Primary outputs tap the most recent *logic* region (never
        // another output).
        let logic_end = n_in + n_logic;
        for _ in 0..n_out {
            let id = gates.len();
            let lo = logic_end.saturating_sub(cfg.window.max(8));
            let src = rng.gen_range(lo..logic_end) as u32;
            fanin.resize(id + 1, Vec::new());
            fanout.resize(id + 1, Vec::new());
            fanin[id].push(src);
            fanout[src as usize].push(id as u32);
            gates.push(Gate {
                kind: GateKind::Output,
                delay_factor: 1.0,
            });
        }

        let primary_inputs: Vec<u32> = (0..n_in as u32).collect();
        let primary_outputs: Vec<u32> =
            ((n_in + n_logic) as u32..gates.len() as u32).collect();

        let levels = levelize(&gates, &fanin, &fanout);
        Circuit {
            gates,
            fanin,
            fanout,
            primary_inputs,
            primary_outputs,
            levels,
        }
    }

    /// Assembles a circuit from explicit parts (used by netlist parsers),
    /// computing the levelization.
    ///
    /// # Panics
    /// If the connectivity contains a combinational cycle.
    pub fn from_parts(
        gates: Vec<Gate>,
        fanin: Vec<Vec<u32>>,
        fanout: Vec<Vec<u32>>,
        primary_inputs: Vec<u32>,
        primary_outputs: Vec<u32>,
    ) -> Circuit {
        let levels = levelize(&gates, &fanin, &fanout);
        Circuit {
            gates,
            fanin,
            fanout,
            primary_inputs,
            primary_outputs,
            levels,
        }
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of (collapsed) nets = edges.
    pub fn num_edges(&self) -> usize {
        self.fanin.iter().map(|f| f.len()).sum()
    }

    /// Maximum logic depth.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Groups gates by logic level (Kahn order).
fn levelize(gates: &[Gate], fanin: &[Vec<u32>], fanout: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = gates.len();
    let mut indeg: Vec<usize> = fanin.iter().map(|f| f.len()).collect();
    let mut level_of = vec![0usize; n];
    let mut queue: std::collections::VecDeque<u32> = (0..n as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .collect();
    let mut max_level = 0;
    let mut seen = 0usize;
    while let Some(u) = queue.pop_front() {
        seen += 1;
        for &v in &fanout[u as usize] {
            let lv = level_of[u as usize] + 1;
            if lv > level_of[v as usize] {
                level_of[v as usize] = lv;
                max_level = max_level.max(lv);
            }
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push_back(v);
            }
        }
    }
    assert_eq!(seen, n, "netlist contains a combinational cycle");
    let mut levels = vec![Vec::new(); max_level + 1];
    for (g, &lv) in level_of.iter().enumerate() {
        levels[lv].push(g as u32);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = CircuitConfig {
            num_gates: 500,
            ..Default::default()
        };
        let a = Circuit::synthesize(&cfg);
        let b = Circuit::synthesize(&cfg);
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.fanin, b.fanin);
    }

    #[test]
    fn structure_is_a_dag_with_io() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 1000,
            ..Default::default()
        });
        assert_eq!(c.num_gates(), 1000);
        assert!(!c.primary_inputs.is_empty());
        assert!(!c.primary_outputs.is_empty());
        for &pi in &c.primary_inputs {
            assert!(c.fanin[pi as usize].is_empty());
        }
        for &po in &c.primary_outputs {
            assert!(c.fanout[po as usize].is_empty(), "PO has fanout");
            assert_eq!(c.fanin[po as usize].len(), 1);
        }
        // Every edge goes to a strictly later-created gate (DAG witness).
        for (g, fi) in c.fanin.iter().enumerate() {
            for &src in fi {
                assert!((src as usize) < g);
            }
        }
    }

    #[test]
    fn levelization_respects_edges() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 800,
            ..Default::default()
        });
        let mut level_of = vec![0usize; c.num_gates()];
        for (lv, gs) in c.levels.iter().enumerate() {
            for &g in gs {
                level_of[g as usize] = lv;
            }
        }
        for (g, fi) in c.fanin.iter().enumerate() {
            for &src in fi {
                assert!(level_of[src as usize] < level_of[g]);
            }
        }
        let total: usize = c.levels.iter().map(|l| l.len()).sum();
        assert_eq!(total, c.num_gates());
    }

    #[test]
    fn fanout_distribution_is_skewed() {
        let c = Circuit::synthesize(&CircuitConfig {
            num_gates: 5000,
            ..Default::default()
        });
        let fanouts: Vec<usize> = c.fanout.iter().map(|f| f.len()).collect();
        let small = fanouts.iter().filter(|&&f| f <= 4).count();
        let max = fanouts.iter().max().copied().unwrap_or(0);
        // Most nets are small, but some high-fanout nets exist.
        assert!(small as f64 / fanouts.len() as f64 > 0.8);
        assert!(max >= 5, "no high-fanout nets at all");
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_config_rejected() {
        Circuit::synthesize(&CircuitConfig {
            num_gates: 2,
            ..Default::default()
        });
    }
}
