//! Graph introspection: a closure-free structural snapshot.
//!
//! [`GraphInfo`] captures everything about a graph except the callables:
//! task kinds, names, dependency edges, pull sizes, kernel shapes and
//! sources. The `hf-sim` discrete-event model replays graphs from this
//! form, and it doubles as a stable inspection API for tests and tools.

use crate::error::HfError;
use crate::graph::{Heteroflow, TaskKind, Work};
use hf_gpu::LaunchConfig;

/// Structural description of one task.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Task name.
    pub name: String,
    /// Task category.
    pub kind: TaskKind,
    /// Successor node ids.
    pub successors: Vec<usize>,
    /// Number of dependencies.
    pub num_deps: usize,
    /// Bytes moved (pull: current source size; push: its pull's size;
    /// otherwise 0).
    pub bytes: usize,
    /// Kernel launch configuration (kernels only; default otherwise).
    pub launch: LaunchConfig,
    /// Declared kernel work units (kernels only; 0 = derive from launch).
    pub work_units: f64,
    /// Source pull tasks (kernels only).
    pub sources: Vec<usize>,
    /// Source pull task (push only).
    pub source_pull: Option<usize>,
}

impl NodeInfo {
    /// Effective modeled kernel work: declared units, or the launch's
    /// total thread count when undeclared — matching the executor's rule.
    pub fn effective_work_units(&self) -> f64 {
        if self.work_units > 0.0 {
            self.work_units
        } else {
            self.launch.total_threads() as f64
        }
    }
}

/// Structural snapshot of a whole graph.
#[derive(Debug, Clone)]
pub struct GraphInfo {
    /// Graph name.
    pub name: String,
    /// All tasks, indexed by node id.
    pub nodes: Vec<NodeInfo>,
}

impl GraphInfo {
    /// Node ids with no dependencies.
    pub fn sources(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.num_deps == 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tasks of a given kind.
    pub fn count_kind(&self, kind: TaskKind) -> usize {
        self.nodes.iter().filter(|n| n.kind == kind).count()
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.successors.len()).sum()
    }

    /// Length (in tasks) of the longest dependency chain — the critical
    /// path that lower-bounds any schedule.
    pub fn critical_path_len(&self) -> usize {
        let n = self.nodes.len();
        let mut depth = vec![0usize; n];
        // Process in topological order via Kahn.
        let mut indeg: Vec<usize> = self.nodes.iter().map(|x| x.num_deps).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut best = 0;
        while let Some(u) = queue.pop() {
            let du = depth[u] + 1;
            best = best.max(du);
            for &v in &self.nodes[u].successors {
                depth[v] = depth[v].max(du);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        best
    }
}

impl Heteroflow {
    /// Extracts a structural snapshot (freezes the graph to validate
    /// acyclicity first).
    pub fn info(&self) -> Result<GraphInfo, HfError> {
        let frozen = self.freeze()?;
        let nodes = frozen
            .nodes
            .iter()
            .map(|n| {
                let (bytes, sources, source_pull) = match &n.work {
                    Work::Pull { source } => (source.byte_len(), Vec::new(), None),
                    Work::Push { source_pull, sink: _ } => {
                        let b = match &frozen.nodes[*source_pull].work {
                            Work::Pull { source } => source.byte_len(),
                            _ => 0,
                        };
                        (b, Vec::new(), Some(*source_pull))
                    }
                    Work::Kernel { sources, .. } => (0, sources.clone(), None),
                    _ => (0, Vec::new(), None),
                };
                NodeInfo {
                    name: n.name.clone(),
                    kind: n.work.kind(),
                    successors: n.succ.clone(),
                    num_deps: n.num_deps,
                    bytes,
                    launch: n.cfg,
                    work_units: n.work_units,
                    sources,
                    source_pull,
                }
            })
            .collect();
        Ok(GraphInfo {
            name: frozen.name.clone(),
            nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;

    fn sample() -> (Heteroflow, GraphInfo) {
        let g = Heteroflow::new("sample");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 100]);
        let h = g.host("h", || {});
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.work_units(42.0);
        let s = g.push("s", &p, &x);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        let info = g.info().unwrap();
        (g, info)
    }

    #[test]
    fn info_captures_structure() {
        let (_g, info) = sample();
        assert_eq!(info.num_tasks(), 4);
        assert_eq!(info.num_edges(), 3);
        assert_eq!(info.sources(), vec![0]);
        assert_eq!(info.count_kind(TaskKind::Pull), 1);
        assert_eq!(info.nodes[1].bytes, 400);
        assert_eq!(info.nodes[2].sources, vec![1]);
        assert_eq!(info.nodes[2].work_units, 42.0);
        assert_eq!(info.nodes[3].source_pull, Some(1));
        assert_eq!(info.nodes[3].bytes, 400);
    }

    #[test]
    fn critical_path() {
        let (_g, info) = sample();
        assert_eq!(info.critical_path_len(), 4);
    }

    #[test]
    fn effective_work_units_fallback() {
        let g = Heteroflow::new("wu");
        let x: HostVec<i32> = HostVec::from_vec(vec![0; 8]);
        let p = g.pull("p", &x);
        let k = g.kernel("k", &[&p], |_, _| {});
        k.cover(1000, 128);
        p.precede(&k);
        let info = g.info().unwrap();
        assert_eq!(info.nodes[1].effective_work_units(), 1024.0);
    }
}
