//! Incremental timing ECO loop — OpenTimer-2.0-style usage.
//!
//! Loads (or synthesizes) a netlist, reports the critical paths, then
//! iteratively "repowers" the slowest gate on the worst path (reducing
//! its delay factor) and re-times **incrementally**, printing how few
//! gates each update touches compared to the full netlist.
//!
//! Run: `cargo run --release --example incremental_timing [-- netlist.bench]`

use heteroflow::timing::incremental::IncrementalTimer;
use heteroflow::timing::report::{report_timing, ReportConfig};
use heteroflow::timing::views::make_views;
use heteroflow::timing::{k_critical_paths, parse_bench, Circuit, CircuitConfig};

fn main() {
    let circuit = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable netlist file");
            parse_bench(&text).expect("valid .bench netlist")
        }
        None => Circuit::synthesize(&CircuitConfig {
            num_gates: 10_000,
            ..Default::default()
        }),
    };
    let n = circuit.num_gates();
    // A clock tight enough to leave violations to fix.
    let view = {
        let mut v = make_views(1, 1.0)[0].clone();
        let sta = heteroflow::timing::run_sta(&circuit, &v);
        let max_at = sta.arrival.iter().cloned().fold(0.0f32, f32::max);
        v.mode.clock_period = max_at * 0.95;
        v
    };

    println!(
        "{}",
        report_timing(
            &circuit,
            &view,
            &ReportConfig {
                num_paths: 3,
                expand_paths: false,
                ..Default::default()
            }
        )
    );

    // --- ECO loop: repower the dominant gate of the worst path. ---
    let mut timer = IncrementalTimer::new(circuit, view.clone());
    for round in 0..8 {
        let wns = timer.wns();
        if wns >= 0.0 {
            println!("round {round}: timing met — stopping");
            break;
        }
        // Worst path under the current delays.
        let paths = k_critical_paths(timer.circuit(), &view, 1);
        let worst = &paths[0];
        // Pick the slowest non-IO gate on it.
        let (&gate, _) = worst
            .gates
            .iter()
            .map(|&g| {
                (
                    worst.gates.iter().find(|&&x| x == g).expect("present"),
                    heteroflow::timing::sta::gate_delay(timer.circuit(), g as usize, &view),
                )
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty path");

        let old = timer.circuit().gates[gate as usize].delay_factor;
        timer.set_delay_factor(gate, old * 0.6); // upsize: 40% faster
        let touched = timer.update();
        println!(
            "round {round}: WNS {wns:.4} ns -> repower G{gate} (factor {:.2} -> {:.2}); \
             incremental update touched {touched}/{n} gates ({:.1}%) -> WNS {:.4} ns",
            old,
            old * 0.6,
            100.0 * touched as f64 / n as f64,
            timer.wns()
        );
    }

    // Sanity: the incremental state equals a from-scratch recompute.
    let full = timer.full_report();
    let drift = (0..n)
        .map(|g| (timer.arrival(g as u32) - full.arrival[g]).abs())
        .fold(0.0f32, f32::max);
    println!("max drift vs full recompute after ECO loop: {drift:.2e} ns");
    assert!(drift < 1e-3);
}
