//! VLSI detailed placement application substrate (DREAMPlace-like).
//!
//! The paper's second evaluation workload (§IV-B) is matching-based
//! detailed placement for the 2.2M-cell `bigblue4` circuit: iterate
//! (1) a **parallel maximal independent set** step (Blelloch's algorithm,
//! offloaded to GPU — the step DREAMPlace accelerates 40×), (2) a
//! **sequential partitioning** step clustering independent cells into
//! local windows, and (3) a **parallel weighted bipartite matching** step
//! finding the best permutation of cell locations per window (CPU). This
//! crate rebuilds the whole pipeline:
//!
//! * [`db`] — placement database (rows/sites, cells, nets, HPWL) and a
//!   synthetic `bigblue4`-like generator.
//! * [`mis`] — Blelloch random-priority MIS as two-phase Heteroflow GPU
//!   kernels, plus a CPU reference.
//! * [`partition`] — spatial clustering of independent cells into
//!   windows.
//! * [`matching`] — Hungarian algorithm for the per-window assignment
//!   problem, plus a brute-force reference.
//! * [`graph`] — the flattened K-iteration Heteroflow task graph of
//!   Fig 8.
//! * [`algo`] — end-to-end drivers (Heteroflow-parallel and sequential
//!   reference).

#![warn(missing_docs)]

pub mod algo;
pub mod bookshelf;
pub mod db;
pub mod global;
pub mod graph;
pub mod hpwl_gpu;
pub mod legalize;
pub mod matching;
pub mod mis;
pub mod partition;

pub use algo::{detailed_place, detailed_place_sequential, PlaceConfig, PlaceOutcome};
pub use bookshelf::{parse_bookshelf, write_bookshelf, BookshelfError};
pub use global::{global_place, GlobalConfig};
pub use db::{Cell, Net, PlacementConfig, PlacementDb};
pub use graph::build_placement_graph;
pub use hpwl_gpu::hpwl_on_gpu;
pub use legalize::{legalize, legalize_into_db, LegalizeStats, Target};
pub use matching::hungarian;
pub use mis::{mis_cpu, verify_mis};
pub use partition::partition_windows;
