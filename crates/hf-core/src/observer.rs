//! Executor observers: task-level tracing hooks and a chrome-trace
//! profiler.
//!
//! An [`ExecutorObserver`] receives a callback around every task
//! execution (with worker id, task name/kind, and device for GPU tasks).
//! [`TraceCollector`] is the built-in observer that records spans and
//! serializes them in the Chrome trace-event format — open the output in
//! `chrome://tracing` or Perfetto to see the schedule, worker occupancy,
//! and CPU/GPU overlap.

use crate::graph::TaskKind;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Identity of one task execution, passed to observer callbacks.
#[derive(Debug, Clone)]
pub struct TaskMeta<'a> {
    /// Worker running (or dispatching) the task.
    pub worker: usize,
    /// Task name.
    pub name: &'a str,
    /// Task kind.
    pub kind: TaskKind,
    /// Assigned device for GPU tasks.
    pub device: Option<u32>,
    /// Graph name.
    pub graph: &'a str,
}

/// Hooks invoked by the executor around task execution.
///
/// For host tasks, `on_task_end` fires when the callable returns. For
/// GPU tasks, it fires when the worker finishes *dispatching* (the op
/// completes asynchronously on the device; device-side timing is
/// available from [`hf_gpu::Device::busy_time`]).
pub trait ExecutorObserver: Send + Sync {
    /// Called before a task's body runs/dispatches.
    fn on_task_begin(&self, meta: &TaskMeta<'_>);
    /// Called after a task's body ran / was dispatched.
    fn on_task_end(&self, meta: &TaskMeta<'_>);
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Worker id (trace "thread").
    pub worker: usize,
    /// Task name.
    pub name: String,
    /// Task kind.
    pub kind: TaskKind,
    /// Device, for GPU tasks.
    pub device: Option<u32>,
    /// Microseconds from collector creation.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

struct Pending {
    worker: usize,
    start: Instant,
}

/// Built-in observer recording every task span.
pub struct TraceCollector {
    epoch: Instant,
    spans: Mutex<Vec<TraceSpan>>,
    // One pending slot per worker (a worker runs one task at a time).
    pending: Mutex<Vec<Option<Pending>>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Shareable handle for [`crate::ExecutorBuilder::observer`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Recorded spans so far.
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.spans.lock().clone()
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the spans as a Chrome trace-event JSON array
    /// (`chrome://tracing` / Perfetto compatible).
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans.lock();
        let mut out = String::from("[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cat = s.kind.to_string();
            let dev = s
                .device
                .map(|d| format!(",\"args\":{{\"device\":{d}}}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}{}}}",
                s.name.replace('"', "'"),
                cat,
                s.start_us,
                s.dur_us.max(1),
                s.worker,
                dev
            ));
        }
        out.push(']');
        out
    }
}

impl ExecutorObserver for TraceCollector {
    fn on_task_begin(&self, meta: &TaskMeta<'_>) {
        let mut pending = self.pending.lock();
        if pending.len() <= meta.worker {
            pending.resize_with(meta.worker + 1, || None);
        }
        pending[meta.worker] = Some(Pending {
            worker: meta.worker,
            start: Instant::now(),
        });
    }

    fn on_task_end(&self, meta: &TaskMeta<'_>) {
        let started = {
            let mut pending = self.pending.lock();
            pending
                .get_mut(meta.worker)
                .and_then(|slot| slot.take())
        };
        if let Some(p) = started {
            let start_us = p.start.duration_since(self.epoch).as_micros() as u64;
            let dur_us = p.start.elapsed().as_micros() as u64;
            self.spans.lock().push(TraceSpan {
                worker: p.worker,
                name: meta.name.to_string(),
                kind: meta.kind,
                device: meta.device,
                start_us,
                dur_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::HostVec;
    use crate::graph::Heteroflow;
    use crate::Executor;

    fn traced_run(fusion: bool) -> (Arc<TraceCollector>, u64) {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(2, 1)
            .task_fusion(fusion)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("traced");
        let d: HostVec<u32> = HostVec::from_vec(vec![0; 64]);
        let h = g.host("make", || {});
        let p = g.pull("pull", &d);
        let k = g.kernel("kernel", &[&p], |_, _| {});
        k.cover(64, 32);
        let s = g.push("push", &p, &d);
        h.precede(&p);
        p.precede(&k);
        k.precede(&s);
        ex.run(&g).wait().expect("runs");
        let fused = ex.stats().fused.sum();
        (trace, fused)
    }

    #[test]
    fn collects_spans_for_every_task_without_fusion() {
        let (trace, fused) = traced_run(false);
        assert_eq!(fused, 0);
        let spans = trace.spans();
        assert_eq!(spans.len(), 4, "one span per task");
        let names: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        for n in ["make", "pull", "kernel", "push"] {
            assert!(names.contains(n), "missing span {n}");
        }
        let kernel_span = spans.iter().find(|s| s.name == "kernel").expect("kernel");
        assert_eq!(kernel_span.kind, TaskKind::Kernel);
        assert_eq!(kernel_span.device, Some(0));
    }

    #[test]
    fn fused_members_fold_into_head_span() {
        let (trace, fused) = traced_run(true);
        // pull -> kernel -> push fuse into one dispatch.
        assert_eq!(fused, 2);
        let spans = trace.spans();
        assert_eq!(spans.len(), 2, "host + chain head");
        let names: std::collections::HashSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains("make") && names.contains("pull"));
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let trace = TraceCollector::shared();
        let ex = Executor::builder(1, 0)
            .observer(Arc::clone(&trace) as Arc<dyn ExecutorObserver>)
            .build();
        let g = Heteroflow::new("j");
        g.host("a\"quoted\"", || {});
        ex.run(&g).wait().expect("runs");
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains("a\"quoted\""), "quotes must be escaped");
    }

    #[test]
    fn empty_collector_serializes() {
        let t = TraceCollector::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[]");
    }
}
