//! Cancellation and timeout semantics of the run-control API:
//! `RunFuture::cancel`, `wait_timeout`, `is_done`, and their interaction
//! with in-flight rounds and GPU streams.

use heteroflow::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn gpu_lane(g: &Heteroflow, name: &str, data: &HostVec<i32>) {
    let p = g.pull(&format!("{name}_pull"), data);
    let k = g.kernel(&format!("{name}_k"), &[&p], |cfg, args| {
        let xs = args.slice_mut::<i32>(0).unwrap();
        for i in cfg.threads() {
            if i < xs.len() {
                xs[i] += 1;
            }
        }
    });
    k.block_x(64);
    let s = g.push(&format!("{name}_push"), &p, data);
    p.precede(&k);
    k.precede(&s);
}

/// Cancelling a long multi-round run settles it promptly with
/// `HfError::Cancelled`, counts it in the stats, and leaves the executor
/// fully usable.
#[test]
fn cancel_mid_run_settles_with_cancelled() {
    let ex = Executor::new(2, 1);
    let g = Heteroflow::new("long");
    let x: HostVec<i32> = HostVec::from_vec(vec![1; 64]);
    // A slow host tick plus a GPU lane: cancellation must reach both the
    // worker path and ops pending on the device stream.
    g.host("tick", || std::thread::sleep(Duration::from_micros(200)));
    gpu_lane(&g, "lane", &x);

    let fut = ex.run_n(&g, 1_000_000);
    std::thread::sleep(Duration::from_millis(20));
    assert!(!fut.is_done());
    fut.cancel();
    let res = fut
        .wait_timeout(Duration::from_secs(10))
        .expect("cancelled run must settle, not hang");
    assert_eq!(res, Err(HfError::Cancelled));
    assert!(fut.is_done());
    assert!(ex.stats().snapshot().cancelled >= 1);

    // The executor takes new work afterwards.
    let g2 = Heteroflow::new("after");
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    g2.host("fine", move || {
        r.store(1, Ordering::SeqCst);
    });
    ex.run(&g2).wait().unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 1);
}

/// `wait_timeout` returns `None` while the run is in flight and the
/// result once it finishes; a finished future answers immediately.
#[test]
fn wait_timeout_expires_then_succeeds() {
    let ex = Executor::new(2, 0);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Heteroflow::new("gated");
    let gate2 = Arc::clone(&gate);
    g.host("gated", move || {
        while !gate2.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let fut = ex.run(&g);
    assert_eq!(fut.wait_timeout(Duration::from_millis(50)), None);
    assert!(!fut.is_done());
    gate.store(true, Ordering::Release);
    assert_eq!(fut.wait(), Ok(()));
    assert!(fut.is_done());
    assert_eq!(fut.wait_timeout(Duration::ZERO), Some(Ok(())));
}

/// The future is multi-wait: repeated waits and waits through clones all
/// observe the same result.
#[test]
fn double_wait_and_clones_agree() {
    let ex = Executor::new(2, 0);
    let g = Heteroflow::new("multi");
    g.host("t", || {});
    let fut = ex.run(&g);
    let clone = fut.clone();
    assert_eq!(fut.wait(), Ok(()));
    assert_eq!(fut.wait(), Ok(()));
    assert_eq!(clone.wait(), Ok(()));
    assert_eq!(clone.wait_timeout(Duration::ZERO), Some(Ok(())));
}

/// Cancelling after completion is a no-op: the settled result stays, and
/// nothing is counted as cancelled.
#[test]
fn cancel_after_complete_is_noop() {
    let ex = Executor::new(2, 0);
    let g = Heteroflow::new("done");
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    g.host("t", move || {
        c.fetch_add(1, Ordering::SeqCst);
    });
    let fut = ex.run(&g);
    assert_eq!(fut.wait(), Ok(()));
    fut.cancel();
    assert_eq!(fut.wait(), Ok(()));
    assert!(fut.is_done());
    assert_eq!(count.load(Ordering::SeqCst), 1);
    assert_eq!(ex.stats().snapshot().cancelled, 0);
}

/// A cancelled GPU-heavy run never reports success for skipped work and
/// never corrupts data: each element is either fully updated by a
/// completed round or untouched.
#[test]
fn cancel_preserves_data_integrity() {
    let ex = Executor::new(2, 2);
    let x: HostVec<i32> = HostVec::from_vec(vec![0; 64]);
    let g = Heteroflow::new("integrity");
    gpu_lane(&g, "lane", &x);
    let fut = ex.run_n(&g, 100_000);
    std::thread::sleep(Duration::from_millis(10));
    fut.cancel();
    let res = fut
        .wait_timeout(Duration::from_secs(10))
        .expect("must settle");
    assert_eq!(res, Err(HfError::Cancelled));
    // Rounds are atomic: all elements advanced the same number of times.
    let v = x.read();
    assert!(
        v.iter().all(|&e| e == v[0]),
        "partial round became visible after cancel: {:?}...",
        &v[..8]
    );
}
