//! Seeded, deterministic GPU fault injection.
//!
//! Real accelerator deployments lose allocations, copies, kernel launches,
//! and whole boards; a runtime that claims fault tolerance needs a way to
//! *provoke* those failures on demand and reproducibly. A [`FaultPlan`]
//! installed on a [`crate::GpuRuntime`] makes every failure path a
//! first-class, testable code path:
//!
//! * per-site failure probabilities ([`FaultSite::Alloc`],
//!   [`FaultSite::H2d`], [`FaultSite::D2h`], [`FaultSite::Kernel`]) decide
//!   whether the *i*-th operation at a site fails — the verdict depends
//!   only on `(seed, site, i)`, never on thread interleaving, so a failing
//!   chaos run replays exactly from its seed;
//! * whole-device loss ([`FaultPlan::lose_device`]) marks a device lost
//!   after it has executed a configured number of stream ops; every
//!   subsequent operation on it fails with
//!   [`crate::GpuError::DeviceLost`].
//!
//! Injected faults fire *before* the faulted operation touches any device
//! or host state (the check precedes the copy/launch), so a caller
//! retrying a failed operation never double-applies its effect.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where in the device substrate an injected fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// Device memory allocation (`Device::alloc`, pull staging).
    Alloc,
    /// A host-to-device copy (pull task execution).
    H2d,
    /// A device-to-host copy (push task execution).
    D2h,
    /// A kernel launch.
    Kernel,
}

impl FaultSite {
    /// Every injectable site, for iterating plans and tests.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::Alloc,
        FaultSite::H2d,
        FaultSite::D2h,
        FaultSite::Kernel,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            FaultSite::Alloc => 0,
            FaultSite::H2d => 1,
            FaultSite::D2h => 2,
            FaultSite::Kernel => 3,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Alloc => "alloc",
            FaultSite::H2d => "h2d",
            FaultSite::D2h => "d2h",
            FaultSite::Kernel => "kernel",
        };
        f.write_str(s)
    }
}

/// A scheduled whole-device loss: the device is marked lost once it has
/// executed `after_ops` stream ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLoss {
    /// Device to lose.
    pub device: u32,
    /// Stream ops the device completes before the loss takes effect
    /// (`0` loses it before its first op).
    pub after_ops: u64,
}

/// A seeded, deterministic fault plan. Install with
/// [`crate::GpuRuntime::set_fault_plan`]; remove with `None`.
///
/// ```
/// use hf_gpu::{FaultPlan, FaultSite};
/// let plan = FaultPlan::seeded(42)
///     .fail(FaultSite::Kernel, 0.05)
///     .fail(FaultSite::H2d, 0.01)
///     .lose_device(1, 100)
///     .max_faults(10);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    probs: [f64; 4],
    losses: Vec<DeviceLoss>,
    max_faults: Option<u64>,
    /// Per-site stall probabilities and delays (see [`FaultPlan::stall`]).
    stall_probs: [f64; 4],
    stall_delays: [Duration; 4],
    max_stalls: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fails operations at `site` with the given probability in `[0, 1]`.
    pub fn fail(mut self, site: FaultSite, probability: f64) -> Self {
        self.probs[site.index()] = probability.clamp(0.0, 1.0);
        self
    }

    /// Fails every site with the same probability.
    pub fn fail_all(mut self, probability: f64) -> Self {
        for site in FaultSite::ALL {
            self = self.fail(site, probability);
        }
        self
    }

    /// Marks `device` lost after it executes `after_ops` stream ops.
    pub fn lose_device(mut self, device: u32, after_ops: u64) -> Self {
        self.losses.push(DeviceLoss { device, after_ops });
        self
    }

    /// Caps the total number of probabilistic faults injected across all
    /// sites and devices (device losses are not counted). Useful for
    /// "exactly one launch failure" style tests.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = Some(n);
        self
    }

    /// Stalls operations at `site` for `delay` with the given probability
    /// in `[0, 1]` — the op then proceeds normally. Stalls model the
    /// *slow* failure mode real accelerators exhibit (thermal throttling,
    /// contended links, a wedged firmware queue): nothing errors, work
    /// just stops making progress, which is exactly what a hang/straggler
    /// watchdog must detect. The verdict draw is deterministic on
    /// `(seed, site, i)` like [`FaultPlan::fail`], from an independent
    /// draw stream, so adding stalls never perturbs fault verdicts.
    pub fn stall(mut self, site: FaultSite, delay: Duration, probability: f64) -> Self {
        self.stall_probs[site.index()] = probability.clamp(0.0, 1.0);
        self.stall_delays[site.index()] = delay;
        self
    }

    /// Caps the total number of injected stalls across all sites.
    pub fn max_stalls(mut self, n: u64) -> Self {
        self.max_stalls = Some(n);
        self
    }
}

/// Runtime state of an installed [`FaultPlan`]: per-site draw counters and
/// the injected-fault total, shared by every device of a runtime so the
/// cap and the counters are global.
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    draws: [AtomicU64; 4],
    injected: AtomicU64,
    stall_draws: [AtomicU64; 4],
    stalled: AtomicU64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            draws: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            injected: AtomicU64::new(0),
            stall_draws: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            stalled: AtomicU64::new(0),
        }
    }

    /// Probabilistic faults injected so far.
    pub(crate) fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub(crate) fn stalled(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }

    /// Draws the next stall verdict for `site`: `Some(delay)` when the
    /// op should sleep before proceeding. Deterministic on
    /// `(seed, site, i)` over an independent draw stream (salted apart
    /// from the failure draws).
    pub(crate) fn stall_duration(&self, site: FaultSite) -> Option<Duration> {
        let p = self.plan.stall_probs[site.index()];
        if p <= 0.0 {
            return None;
        }
        let idx = self.stall_draws[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.plan.seed ^ ((site.index() as u64 + 5) << 56) ^ idx);
        let x = (h >> 11) as f64 / (1u64 << 53) as f64;
        if x >= p {
            return None;
        }
        let delay = self.plan.stall_delays[site.index()];
        match self.plan.max_stalls {
            None => {
                self.stalled.fetch_add(1, Ordering::Relaxed);
                Some(delay)
            }
            Some(cap) => self
                .stalled
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < cap).then_some(n + 1)
                })
                .is_ok()
                .then_some(delay),
        }
    }

    /// Draws the next verdict for `site`. The i-th call for a site yields
    /// the same verdict for a given seed regardless of which thread makes
    /// it or how calls at other sites interleave.
    pub(crate) fn should_fail(&self, site: FaultSite) -> bool {
        let p = self.plan.probs[site.index()];
        if p <= 0.0 {
            return false;
        }
        let idx = self.draws[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.plan.seed ^ ((site.index() as u64 + 1) << 56) ^ idx);
        // Top 53 bits give a uniform draw in [0, 1).
        let x = (h >> 11) as f64 / (1u64 << 53) as f64;
        if x >= p {
            return false;
        }
        match self.plan.max_faults {
            None => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(cap) => self
                .injected
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < cap).then_some(n + 1)
                })
                .is_ok(),
        }
    }

    /// True when the plan loses `device` at or before op number `op_seq`.
    pub(crate) fn loses(&self, device: u32, op_seq: u64) -> bool {
        self.plan
            .losses
            .iter()
            .any(|l| l.device == device && op_seq >= l.after_ops)
    }
}

/// splitmix64 — the same dependency-free mixer used for seeded placement.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_per_site_and_index() {
        let plan = FaultPlan::seeded(7).fail_all(0.5);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..256 {
            for site in FaultSite::ALL {
                assert_eq!(a.should_fail(site), b.should_fail(site));
            }
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "p=0.5 over 1024 draws must fire");
    }

    #[test]
    fn zero_probability_never_fires() {
        let inj = FaultInjector::new(FaultPlan::seeded(1));
        for _ in 0..100 {
            assert!(!inj.should_fail(FaultSite::Kernel));
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn max_faults_caps_injections() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).fail_all(1.0).max_faults(2));
        let fired: usize = (0..50)
            .filter(|_| inj.should_fail(FaultSite::H2d))
            .count();
        assert_eq!(fired, 2);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn device_loss_matches_schedule() {
        let inj = FaultInjector::new(FaultPlan::seeded(0).lose_device(1, 3));
        assert!(!inj.loses(0, 100));
        assert!(!inj.loses(1, 2));
        assert!(inj.loses(1, 3));
        assert!(inj.loses(1, 4));
    }

    #[test]
    fn stall_draws_are_deterministic_and_capped() {
        let plan = FaultPlan::seeded(11)
            .stall(FaultSite::Kernel, Duration::from_millis(5), 0.5)
            .max_stalls(3);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for _ in 0..64 {
            assert_eq!(
                a.stall_duration(FaultSite::Kernel),
                b.stall_duration(FaultSite::Kernel)
            );
        }
        assert_eq!(a.stalled(), 3);
        assert_eq!(b.stalled(), 3);
    }

    #[test]
    fn stalls_do_not_perturb_fault_draws() {
        let base = FaultPlan::seeded(21).fail_all(0.3);
        let with_stalls = base
            .clone()
            .stall(FaultSite::H2d, Duration::from_millis(1), 1.0);
        let a = FaultInjector::new(base);
        let b = FaultInjector::new(with_stalls);
        for _ in 0..128 {
            for site in FaultSite::ALL {
                let _ = b.stall_duration(site);
                assert_eq!(a.should_fail(site), b.should_fail(site));
            }
        }
    }

    #[test]
    fn zero_stall_probability_never_stalls() {
        let inj = FaultInjector::new(FaultPlan::seeded(2).fail_all(0.5));
        for site in FaultSite::ALL {
            for _ in 0..32 {
                assert!(inj.stall_duration(site).is_none());
            }
        }
        assert_eq!(inj.stalled(), 0);
    }

    #[test]
    fn probability_one_always_fires() {
        let inj = FaultInjector::new(FaultPlan::seeded(9).fail(FaultSite::Alloc, 1.0));
        for _ in 0..20 {
            assert!(inj.should_fail(FaultSite::Alloc));
        }
    }
}
